//! `cerfix` — command-line front end for the CerFix reproduction.
//!
//! A small operational tool over CSV files (the substitution for the
//! demo's JDBC-connected deployment):
//!
//! ```text
//! cerfix check   --master M.csv --rules R.dsl [--input-header a,b,c]
//! cerfix regions --master M.csv --rules R.dsl [--input-header a,b,c] [--top-k N]
//! cerfix clean   --master M.csv --rules R.dsl --input D.csv --output OUT.csv \
//!                --trust col1,col2[,...]
//! cerfix discover --master M.csv [--input-header a,b,c] [--min-keys N]
//! cerfix serve   --master M.csv --rules R.dsl [--addr 127.0.0.1:7117] \
//!                [--workers N] [--input-header a,b,c] [--session-ttl-secs S] \
//!                [--frontend epoll|threads|auto] \
//!                [--data-dir DIR] [--flush-interval-ms N] [--snapshot-interval-secs N]
//!                [--trace-buffer N] [--slow-ms T] [--diag-buffer N] [--diag-file F]
//!                [--max-lag SECS]
//! cerfix top     [--addr 127.0.0.1:7117] [--spans N] [--prom]
//!                [--watch [--interval-secs S]] [--cluster] [--log [--level L]]
//! cerfix drain   [--addr 127.0.0.1:7117] [--wait-ms N]
//! cerfix promote [--addr 127.0.0.1:7117]
//! cerfix recover --data-dir DIR [--inspect]
//! ```
//!
//! * `check` parses the rules and runs the consistency analysis in both
//!   modes.
//! * `regions` prints the top-k certain regions (certified against the
//!   master rows reinterpreted as truth entities).
//! * `clean` monitors each input row: the columns in `--trust` are taken
//!   as validated (the operator vouches for them — e.g. the entry form's
//!   key fields), rules fix what they can, and the result is written out
//!   with a per-column audit summary.
//! * `discover` mines single-LHS FDs from the master data and prints the
//!   editing rules they compile to.
//! * `serve` runs the concurrent multi-session cleaning service
//!   (`cerfix-server`): line-delimited JSON over TCP, many clerks
//!   against one master database — the demo's deployment shape. With
//!   `--data-dir`, sessions are write-ahead journaled and the audit
//!   log spills to disk: a restarted server resumes every uncommitted
//!   session (see the README's durability section).
//! * `serve` with `--replicate-from ADDR` starts a read-only follower
//!   that tails the named primary's journal; `--quorum N` on a primary
//!   makes commit acknowledgements wait for a majority of the N-node
//!   cluster to hold durable copies.
//! * `top` connects to a running server and prints a one-shot
//!   operations view: uptime, throughput, per-op latency, engine-stat
//!   attribution, replication role/lag and the most recent (and
//!   slowest) request traces. `--prom` dumps the raw Prometheus text
//!   exposition instead. `--watch` redraws a live view every
//!   `--interval-secs`, with per-op request rates computed from the
//!   server's in-process metric time series (`metrics.history`).
//!   `--cluster` asks one node for the federated `cluster.status`
//!   document and renders a per-node role/epoch/health/lag table.
//!   `--log` tails the structured diagnostic ring (`log.read`),
//!   filterable with `--level` and `--subsystem`.
//! * `drain` gracefully drains a running server for a rolling restart:
//!   stop accepting connections, refuse new sessions with `draining`,
//!   finish in-flight work within a bound, final snapshot, clean exit.
//! * `promote` turns a running follower into the primary (epoch bump;
//!   the deposed primary is fenced on its next contact with the new
//!   epoch).
//! * `recover` inspects a data directory without serving: snapshot
//!   epoch, journaled events, live-session reconstruction inputs, audit
//!   archive size, torn bytes cut from crashed writes.
//!
//! Schemas: the master schema comes from the master CSV header; the
//! input schema from `--input-header` (or the input CSV's header for
//! `clean`). All columns are strings, matching the demo's form data.

use cerfix::{
    check_consistency, find_regions, AuditStats, ConsistencyOptions, DataMonitor, MasterData,
    RegionFinderOptions,
};
use cerfix_relation::{
    read_untyped_str, write_relation_file, Relation, Schema, SchemaRef, Tuple, Value,
};
use cerfix_rules::{discover_rules, parse_rules, render_er_dsl, RuleDecl, RuleSet};
use cerfix_server::{CleaningService, Frontend, Server, ServiceConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    command: String,
    options: BTreeMap<String, String>,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let mut options = BTreeMap::new();
    let mut key: Option<String> = None;
    for arg in argv {
        if let Some(stripped) = arg.strip_prefix("--") {
            if let Some((k, v)) = stripped.split_once('=') {
                options.insert(k.to_string(), v.to_string());
            } else {
                key = Some(stripped.to_string());
                options.insert(stripped.to_string(), String::new());
            }
        } else if let Some(k) = key.take() {
            options.insert(k, arg);
        } else {
            eprintln!("unexpected positional argument `{arg}`");
            return None;
        }
    }
    Some(Args { command, options })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cerfix check    --master M.csv --rules R.dsl [--input-header a,b,c]\n  \
         cerfix regions  --master M.csv --rules R.dsl [--input-header a,b,c] [--top-k N]\n  \
         cerfix clean    --master M.csv --rules R.dsl --input D.csv --output OUT.csv --trust cols\n  \
         cerfix discover --master M.csv [--input-header a,b,c] [--min-keys N]\n  \
         cerfix serve    --master M.csv --rules R.dsl [--addr 127.0.0.1:7117] [--workers N]\n  \
                          [--input-header a,b,c] [--session-ttl-secs S] [--max-sessions N]\n  \
                          [--frontend epoll|threads|auto]\n  \
                          [--data-dir DIR] [--flush-interval-ms N] [--snapshot-interval-secs N]\n  \
                          [--min-free-bytes N] [--trace-buffer N] [--slow-ms T] [--diag-buffer N]\n  \
                          [--diag-file F] [--replicate-from ADDR] [--quorum N] [--ack-timeout-ms T]\n  \
                          [--advertise ADDR] [--max-lag SECS] [--shed-watermark N] [--max-connections N]\n  \
         cerfix top      [--addr 127.0.0.1:7117] [--spans N] [--prom] [--cluster]\n  \
                          [--watch [--interval-secs S]] [--log [--level L] [--subsystem S]]\n  \
         cerfix drain    [--addr 127.0.0.1:7117] [--wait-ms N]\n  \
         cerfix promote  [--addr 127.0.0.1:7117]\n  \
         cerfix recover  --data-dir DIR [--inspect]\n  \
         cerfix scrub    --data-dir DIR"
    );
    ExitCode::from(2)
}

fn load_master(args: &Args) -> Result<Relation, String> {
    let path = args.options.get("master").ok_or("missing --master")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    read_untyped_str("master", &text).map_err(|e| format!("parse {path}: {e}"))
}

fn input_schema_from(args: &Args, master: &Relation) -> Result<SchemaRef, String> {
    match args.options.get("input-header") {
        Some(header) => Schema::of_strings("input", header.split(','))
            .map_err(|e| format!("--input-header: {e}")),
        None => {
            // Default: same columns as master (shared-schema deployments).
            let names: Vec<String> = master
                .schema()
                .attributes()
                .iter()
                .map(|a| a.name().to_string())
                .collect();
            Schema::of_strings("input", names).map_err(|e| e.to_string())
        }
    }
}

fn load_rules(args: &Args, input: &SchemaRef, master: &SchemaRef) -> Result<RuleSet, String> {
    let path = args.options.get("rules").ok_or("missing --rules")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut set = RuleSet::new(input.clone(), master.clone());
    for decl in parse_rules(&text, input, master).map_err(|e| e.to_string())? {
        match decl {
            RuleDecl::Er(rule) => {
                set.add(rule).map_err(|e| e.to_string())?;
            }
            other => {
                return Err(format!(
                    "`{}` is not an editing rule; derive CFDs/MDs first (see `cerfix discover`)",
                    other.name()
                ))
            }
        }
    }
    Ok(set)
}

/// Master rows reinterpreted over the input schema (by name) as the truth
/// universe for region certification.
fn universe_from_master(input: &SchemaRef, master: &Relation) -> Vec<Tuple> {
    let mapping: Vec<Option<usize>> = input
        .attributes()
        .iter()
        .map(|a| master.schema().attr_id(a.name()))
        .collect();
    master
        .iter()
        .map(|(_, s)| {
            let values: Vec<Value> = mapping
                .iter()
                .map(|m| m.map(|id| s.get(id).clone()).unwrap_or(Value::Null))
                .collect();
            Tuple::new(input.clone(), values).expect("string schema accepts all values")
        })
        .collect()
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let master_rel = load_master(args)?;
    let input = input_schema_from(args, &master_rel)?;
    let rules = load_rules(args, &input, master_rel.schema())?;
    let master = MasterData::new(master_rel);
    println!("{} rules over {} master rows", rules.len(), master.len());
    for (mode, options) in [
        ("entity-coherent", ConsistencyOptions::entity_coherent()),
        ("strict", ConsistencyOptions::default()),
    ] {
        let report = check_consistency(&rules, &master, &options);
        println!(
            "{mode}: {} ({} conflicts, {} ambiguous keys{})",
            if report.is_consistent() {
                "CONSISTENT"
            } else {
                "INCONSISTENT"
            },
            report.conflicts.len(),
            report.ambiguities.len(),
            if report.budget_exhausted {
                ", budget exhausted"
            } else {
                ""
            }
        );
        for conflict in report.conflicts.iter().take(4) {
            println!("  {conflict:?}");
        }
    }
    Ok(())
}

fn cmd_regions(args: &Args) -> Result<(), String> {
    let master_rel = load_master(args)?;
    let input = input_schema_from(args, &master_rel)?;
    let rules = load_rules(args, &input, master_rel.schema())?;
    let universe = universe_from_master(&input, &master_rel);
    let master = MasterData::new(master_rel);
    let top_k = args
        .options
        .get("top-k")
        .map(|v| v.parse().map_err(|_| "--top-k must be a number"))
        .transpose()?
        .unwrap_or(8);
    let threads = args
        .options
        .get("threads")
        .map(|v| v.parse().map_err(|_| "--threads must be a number"))
        .transpose()?
        .unwrap_or(0); // 0 = one worker per core
    let result = find_regions(
        &rules,
        &master,
        &universe,
        &RegionFinderOptions {
            top_k,
            threads,
            ..Default::default()
        },
    );
    println!(
        "{} regions ({} candidates, {} rejected by certification, {} vacuous; \
         {} truth profiles, {} closure probes, {} fixpoints)",
        result.regions.len(),
        result.stats.candidates,
        result.stats.rejected_by_certification,
        result.stats.vacuous,
        result.stats.truth_profiles,
        result.stats.closure_probes,
        result.stats.engine.fixpoint_runs
    );
    for (i, region) in result.regions.iter().enumerate() {
        println!("{}. {}", i + 1, region.render(&input));
    }
    Ok(())
}

fn cmd_clean(args: &Args) -> Result<(), String> {
    let master_rel = load_master(args)?;
    let input_path = args.options.get("input").ok_or("missing --input")?;
    let text =
        std::fs::read_to_string(input_path).map_err(|e| format!("read {input_path}: {e}"))?;
    let dirty = read_untyped_str("input", &text).map_err(|e| e.to_string())?;
    let input = dirty.schema().clone();
    let rules = load_rules(args, &input, master_rel.schema())?;
    let trust = args
        .options
        .get("trust")
        .ok_or("missing --trust (validated columns)")?;
    let trusted: Vec<usize> = trust
        .split(',')
        .map(|name| {
            input
                .attr_id(name.trim())
                .ok_or_else(|| format!("--trust column `{name}` not in input header"))
        })
        .collect::<Result<_, _>>()?;
    let master = MasterData::new(master_rel);
    master.warm_indexes(rules.iter().map(|(_, r)| r));
    let monitor = DataMonitor::new(&rules, &master);

    let mut cleaned = Vec::with_capacity(dirty.len());
    let mut complete = 0usize;
    for (idx, tuple) in dirty.iter() {
        let mut session = monitor.start(idx, tuple.clone());
        let validations: Vec<(usize, Value)> = trusted
            .iter()
            .filter_map(|&a| {
                let v = tuple.get(a);
                (!v.is_null()).then(|| (a, v.clone()))
            })
            .collect();
        monitor
            .apply_validation(&mut session, &validations)
            .map_err(|e| format!("row {idx}: {e}"))?;
        if session.is_complete() {
            complete += 1;
        }
        cleaned.push(session.tuple);
    }
    let out_path = args.options.get("output").ok_or("missing --output")?;
    let out_rel = Relation::from_tuples(input.clone(), cleaned).map_err(|e| e.to_string())?;
    write_relation_file(&out_rel, out_path).map_err(|e| e.to_string())?;

    println!(
        "cleaned {} rows → {out_path} ({} fully validated, {} partial)",
        dirty.len(),
        complete,
        dirty.len() - complete
    );
    let stats = AuditStats::from_log(monitor.audit());
    print!("{}", stats.render(&input));
    Ok(())
}

fn cmd_discover(args: &Args) -> Result<(), String> {
    let master_rel = load_master(args)?;
    let input = input_schema_from(args, &master_rel)?;
    let min_keys = args
        .options
        .get("min-keys")
        .map(|v| v.parse().map_err(|_| "--min-keys must be a number"))
        .transpose()?
        .unwrap_or(8);
    let master_schema = master_rel.schema().clone();
    let discovered =
        discover_rules(&input, &master_schema, &master_rel, min_keys).map_err(|e| e.to_string())?;
    // Tolerate a closed pipe (`cerfix discover | head`): stop printing
    // instead of panicking.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let _ = writeln!(
        out,
        "# {} rules discovered (min {} distinct keys)",
        discovered.len(),
        min_keys
    );
    for dr in &discovered {
        if writeln!(
            out,
            "{}  # support {}, {} keys",
            render_er_dsl(&dr.rule, &input, &master_schema),
            dr.source.support,
            dr.source.distinct_keys
        )
        .is_err()
        {
            break;
        }
    }
    let _ = out.flush();
    Ok(())
}

fn parse_option<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, String> {
    match args.options.get(key) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key}: cannot parse `{raw}`")),
        None => Ok(default),
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let master_rel = load_master(args)?;
    let input = input_schema_from(args, &master_rel)?;
    let rules = load_rules(args, &input, master_rel.schema())?;
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7117".to_string());
    let defaults = ServiceConfig::default();
    let replicate_from = args.options.get("replicate-from").cloned();
    let cluster_size: usize = parse_option(args, "quorum", defaults.cluster_size)?;
    if (replicate_from.is_some() || cluster_size > 1) && !args.options.contains_key("data-dir") {
        return Err("replication (--replicate-from / --quorum) requires --data-dir".into());
    }
    let config = ServiceConfig {
        workers: parse_option(args, "workers", defaults.workers)?,
        session_ttl: std::time::Duration::from_secs(parse_option(
            args,
            "session-ttl-secs",
            defaults.session_ttl.as_secs(),
        )?),
        max_sessions: parse_option(args, "max-sessions", defaults.max_sessions)?,
        region_top_k: parse_option(args, "top-k", defaults.region_top_k)?,
        precompute_regions: true,
        trace_buffer: parse_option(args, "trace-buffer", defaults.trace_buffer)?,
        slow_ms: parse_option(args, "slow-ms", defaults.slow_ms)?,
        diag_buffer: parse_option(args, "diag-buffer", defaults.diag_buffer)?,
        diag_file: args.options.get("diag-file").map(std::path::PathBuf::from),
        max_lag: std::time::Duration::from_secs_f64(parse_option(
            args,
            "max-lag",
            defaults.max_lag.as_secs_f64(),
        )?),
        replicate_from: replicate_from.clone(),
        cluster_size,
        min_free_bytes: parse_option(args, "min-free-bytes", defaults.min_free_bytes)?,
        ack_timeout: std::time::Duration::from_millis(parse_option(
            args,
            "ack-timeout-ms",
            defaults.ack_timeout.as_millis() as u64,
        )?),
        // The listen address is the natural follower identity: it is
        // what an operator would point `--replicate-from` at next.
        advertise: Some(
            args.options
                .get("advertise")
                .cloned()
                .unwrap_or_else(|| addr.clone()),
        ),
        shed_watermark: parse_option(args, "shed-watermark", defaults.shed_watermark)?,
        max_connections: parse_option(args, "max-connections", defaults.max_connections)?,
    };
    let report = check_consistency(
        &rules,
        &MasterData::new(master_rel.clone()),
        &ConsistencyOptions::entity_coherent(),
    );
    if !report.is_consistent() {
        eprintln!(
            "warning: rule set is not entity-coherent ({} conflicts, {} ambiguous keys) — \
             serving anyway; conflicting fixes surface as session errors",
            report.conflicts.len(),
            report.ambiguities.len()
        );
    }
    let workers = config.workers;
    let n_rules = rules.len();
    let n_master = master_rel.len();
    let master = std::sync::Arc::new(MasterData::new(master_rel));
    let rules = std::sync::Arc::new(rules);
    let service = match args.options.get("data-dir") {
        Some(dir) => {
            let mut storage_config = cerfix_storage::StorageConfig::new(dir);
            storage_config.flush_interval = std::time::Duration::from_millis(parse_option(
                args,
                "flush-interval-ms",
                storage_config.flush_interval.as_millis() as u64,
            )?);
            storage_config.snapshot_interval = std::time::Duration::from_secs(parse_option(
                args,
                "snapshot-interval-secs",
                storage_config.snapshot_interval.as_secs(),
            )?);
            // A follower has a second copy of the truth upstream: a
            // corrupt journal suffix is recoverable by re-sync, so keep
            // the clean prefix and start tailing instead of refusing to
            // boot. A primary stays Strict — silently dropping
            // acknowledged frames on the only copy would lose data.
            if replicate_from.is_some() {
                storage_config.scan_mode = cerfix_storage::ScanMode::Tolerant;
            }
            let service = CleaningService::with_storage(master, rules, config, storage_config)
                .map_err(|e| format!("open data dir {dir}: {e}"))?;
            let recovered = service.metrics().sessions_recovered;
            println!("durability: journaled to {dir} ({recovered} uncommitted sessions recovered)");
            service
        }
        None => CleaningService::new(master, rules, config),
    };
    match &replicate_from {
        Some(primary) => println!(
            "replication: read-only follower tailing {primary} (promote with `cerfix promote`)"
        ),
        None if cluster_size > 1 => println!(
            "replication: primary; commits wait for {} of {cluster_size} durable copies",
            (cluster_size + 2) / 2
        ),
        None => {}
    }
    let frontend_name = args
        .options
        .get("frontend")
        .map(String::as_str)
        .unwrap_or("auto");
    let frontend = Frontend::parse(frontend_name)
        .ok_or_else(|| format!("--frontend `{frontend_name}` (epoll | threads | auto)"))?;
    let server = Server::bind_with(addr.as_str(), service, frontend)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "cerfix-server listening on {} ({n_rules} rules, {n_master} master rows, {workers} workers, {} front end)",
        server.local_addr().map_err(|e| e.to_string())?,
        server.frontend().name(),
    );
    println!("protocol: one JSON object per line; try {{\"op\":\"hello\"}}");
    server.run().map_err(|e| format!("serve: {e}"))
}

/// `cerfix top [--addr A] [--spans N] [--prom]`: one-shot operations
/// view of a running server — uptime and throughput, per-op latency
/// summaries, engine-stat attribution and the most recent (plus the
/// slowest) request traces. `--prom` dumps the raw Prometheus text
/// exposition instead (pipe it into a scrape file or a pushgateway).
fn cmd_top(args: &Args) -> Result<(), String> {
    use cerfix_server::wire::Json;
    use cerfix_server::{Client, Request};
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7117".to_string());
    let spans = parse_option(args, "spans", 12u64)?;
    let mut client = Client::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    if args.options.contains_key("prom") {
        let prom = client
            .request(&Request::MetricsProm)
            .map_err(|e| e.to_string())?;
        print!("{}", prom.get("body").and_then(Json::as_str).unwrap_or(""));
        return Ok(());
    }
    if args.options.contains_key("cluster") {
        return top_cluster(&mut client);
    }
    if args.options.contains_key("log") {
        return top_log(&mut client, args);
    }
    if args.options.contains_key("watch") {
        return top_watch(&mut client, &addr, args);
    }
    let hello = client.hello().map_err(|e| e.to_string())?;
    let stats = client.metrics().map_err(|e| e.to_string())?;
    let trace = client
        .request(&Request::TraceRead { limit: Some(spans) })
        .map_err(|e| e.to_string())?;

    let str_of = |json: &Json, key: &str| -> String {
        json.get(key)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let num_of =
        |json: &Json, key: &str| -> u64 { json.get(key).and_then(Json::as_u64).unwrap_or(0) };
    println!(
        "{} at {addr} — version {}, protocol {}, storage {}",
        str_of(&hello, "service"),
        str_of(&hello, "version"),
        num_of(&hello, "protocol"),
        str_of(&hello, "storage"),
    );
    println!(
        "uptime {}s   workers {}   live sessions {}   requests {} (errors {})",
        num_of(&stats, "uptime_secs"),
        num_of(&stats, "workers"),
        num_of(&stats, "live_sessions"),
        num_of(&stats, "requests"),
        num_of(&stats, "errors"),
    );
    println!(
        "sessions: {} created / {} committed / {} aborted / {} evicted   cells fixed {}",
        num_of(&stats, "sessions_created"),
        num_of(&stats, "sessions_committed"),
        num_of(&stats, "sessions_aborted"),
        num_of(&stats, "sessions_evicted"),
        num_of(&stats, "cells_fixed"),
    );
    if stats.get("journal_bytes").is_some() {
        println!(
            "journal: {} bytes, {} events (epoch {}), {} snapshots",
            num_of(&stats, "journal_bytes"),
            num_of(&stats, "journal_events"),
            num_of(&stats, "journal_epoch"),
            num_of(&stats, "snapshots_written"),
        );
    }
    {
        let role = str_of(&stats, "role");
        let mut line = format!("role: {role}");
        if hello.get("epoch").is_some() {
            line.push_str(&format!(" (epoch {})", num_of(&hello, "epoch")));
        }
        if role == "follower" {
            line.push_str(&format!(", primary {}", str_of(&stats, "primary")));
        } else if num_of(&stats, "cluster_size") > 1 {
            line.push_str(&format!(
                ", quorum {} of {}",
                num_of(&stats, "quorum"),
                num_of(&stats, "cluster_size"),
            ));
        }
        println!("{line}");
        if let Some(Json::Obj(followers)) = stats.get("replication") {
            for (follower, lag) in followers {
                println!(
                    "  follower {follower}: epoch {}, offset {}, lag {} events / {:.3}s \
                     (seen {:.1}s ago)",
                    num_of(lag, "epoch"),
                    num_of(lag, "offset"),
                    num_of(lag, "lag_events"),
                    lag.get("lag_seconds").and_then(Json::as_f64).unwrap_or(0.0),
                    lag.get("last_seen_secs")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0),
                );
            }
        }
    }
    if let Some(Json::Obj(entries)) = stats.get("latency") {
        println!("\n{:<18} {:>10} {:>12} {:>12}", "op", "count", "p50", "p99");
        for (op, summary) in entries {
            println!(
                "{op:<18} {:>10} {:>12} {:>12}",
                num_of(summary, "count"),
                fmt_us(summary.get("p50_us").and_then(Json::as_f64).unwrap_or(0.0)),
                fmt_us(summary.get("p99_us").and_then(Json::as_f64).unwrap_or(0.0)),
            );
        }
    }
    let print_spans = |title: &str, key: &str| {
        let Some(list) = trace.get(key).and_then(Json::as_arr) else {
            return;
        };
        if list.is_empty() {
            return;
        }
        println!(
            "\n{title} (newest first):\n{:<14} {:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}",
            "trace", "op", "total", "parse", "dispatch", "engine", "fsync", "quorum", "fixes"
        );
        for span in list {
            // Synthetic ids are counter noise, not something the
            // operator can correlate — show the request kind instead.
            let trace_col = if span.get("synthetic").and_then(Json::as_bool) == Some(true) {
                "(no id)".to_string()
            } else {
                str_of(span, "trace")
            };
            println!(
                "{:<14} {:<18} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}",
                trace_col,
                str_of(span, "op"),
                fmt_ns(num_of(span, "total_ns")),
                fmt_ns(num_of(span, "parse_ns")),
                fmt_ns(num_of(span, "dispatch_ns")),
                fmt_ns(num_of(span, "engine_ns")),
                fmt_ns(num_of(span, "fsync_ns")),
                fmt_ns(num_of(span, "quorum_ns")),
                num_of(span, "fixpoint_runs"),
            );
        }
    };
    if trace.get("enabled").and_then(Json::as_bool) == Some(true) {
        print_spans("recent spans", "spans");
        print_spans(
            &format!("slow spans (> {} ms)", num_of(&trace, "slow_ms")),
            "slow",
        );
    } else {
        println!("\ntracing disabled on the server (start with --trace-buffer N to enable)");
    }
    Ok(())
}

/// `cerfix top --cluster`: render the federated `cluster.status`
/// document as a per-node table. One request to one node; that node
/// fans out to every peer it knows about and answers for all of them,
/// so this works against any member of the replica group.
fn top_cluster(client: &mut cerfix_server::Client) -> Result<(), String> {
    use cerfix_server::wire::Json;
    use cerfix_server::Request;
    let status = client
        .request(&Request::ClusterStatus { fanout: true })
        .map_err(|e| e.to_string())?;
    println!(
        "cluster: {} configured, quorum {}",
        status
            .get("cluster_size")
            .and_then(Json::as_u64)
            .unwrap_or(1),
        status.get("quorum").and_then(Json::as_u64).unwrap_or(1),
    );
    println!(
        "{:<22} {:<9} {:>6} {:<10} {:>8} {:>10} {:>9}",
        "node", "role", "epoch", "health", "lag", "requests", "req/s"
    );
    let Some(nodes) = status.get("nodes").and_then(Json::as_arr) else {
        return Ok(());
    };
    for node in nodes {
        let addr = node.get("addr").and_then(Json::as_str).unwrap_or("?");
        if node.get("ok").and_then(Json::as_bool) != Some(true) {
            println!(
                "{addr:<22} unreachable: {}",
                node.get("error").and_then(Json::as_str).unwrap_or("?")
            );
            continue;
        }
        let ready = node.get("ready").and_then(Json::as_bool) == Some(true);
        println!(
            "{addr:<22} {:<9} {:>6} {:<10} {:>7.1}s {:>10} {:>9.1}",
            node.get("role").and_then(Json::as_str).unwrap_or("?"),
            node.get("epoch").and_then(Json::as_u64).unwrap_or(0),
            if ready { "ready" } else { "NOT READY" },
            node.get("lag_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            node.get("requests").and_then(Json::as_u64).unwrap_or(0),
            node.get("req_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        );
        if !ready {
            if let Some(causes) = node.get("causes").and_then(Json::as_arr) {
                for cause in causes {
                    if let Some(text) = cause.as_str() {
                        println!("{:<22}   cause: {text}", "");
                    }
                }
            }
        }
    }
    Ok(())
}

/// `cerfix top --log`: dump the server's structured diagnostic ring,
/// newest first, optionally filtered by `--level` and `--subsystem`.
fn top_log(client: &mut cerfix_server::Client, args: &Args) -> Result<(), String> {
    use cerfix_server::wire::Json;
    use cerfix_server::Request;
    let response = client
        .request(&Request::LogRead {
            limit: Some(parse_option(args, "limit", 64u64)?),
            level: args.options.get("level").cloned(),
            subsystem: args.options.get("subsystem").cloned(),
        })
        .map_err(|e| e.to_string())?;
    if response.get("enabled").and_then(Json::as_bool) != Some(true) {
        println!("diagnostic log disabled on the server (start with --diag-buffer N)");
        return Ok(());
    }
    println!(
        "{} recorded, {} emitted, {} rate-limited",
        response.get("recorded").and_then(Json::as_u64).unwrap_or(0),
        response.get("emitted").and_then(Json::as_u64).unwrap_or(0),
        response
            .get("suppressed")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    );
    if let Some(events) = response.get("events").and_then(Json::as_arr) {
        for event in events {
            println!(
                "{} [{:<5} {:<11}] {}",
                event.get("unix_ms").and_then(Json::as_u64).unwrap_or(0),
                event.get("level").and_then(Json::as_str).unwrap_or("?"),
                event.get("subsystem").and_then(Json::as_str).unwrap_or("?"),
                event.get("message").and_then(Json::as_str).unwrap_or(""),
            );
        }
    }
    Ok(())
}

/// `cerfix top --watch`: live operations view, redrawn every
/// `--interval-secs`. Each frame pulls the tail of the server's metric
/// time series and diffs the oldest sample in the window against the
/// newest, so the per-op `req/s` column reflects the interval the
/// operator is actually watching rather than a since-boot average.
/// Runs until interrupted — a server restart (or a rolling-restart
/// drain) renders a "peer down" frame and keeps reconnecting with the
/// redraw cadence as its backoff instead of exiting.
fn top_watch(client: &mut cerfix_server::Client, addr: &str, args: &Args) -> Result<(), String> {
    use cerfix_server::wire::Json;
    use cerfix_server::{Client, Request};
    use std::io::Write;
    let interval = parse_option(args, "interval-secs", 2u64)?.max(1);
    let num_of =
        |json: &Json, key: &str| -> u64 { json.get(key).and_then(Json::as_u64).unwrap_or(0) };
    let f64_of =
        |json: &Json, key: &str| -> f64 { json.get(key).and_then(Json::as_f64).unwrap_or(0.0) };
    loop {
        // The housekeeper samples roughly once a second; ask for one
        // sample more than the redraw interval so the rate window
        // matches the refresh cadence.
        let frame = client.request(&Request::Health).and_then(|health| {
            client
                .request(&Request::MetricsHistory {
                    limit: Some(interval + 1),
                })
                .map(|history| (health, history))
        });
        let (health, history) = match frame {
            Ok(frame) => frame,
            Err(e) => {
                // The server went away mid-watch (restart, drain,
                // crash): show the outage instead of exiting, and try a
                // fresh connection each frame until it is back.
                print!("\x1b[2J\x1b[H");
                println!("{addr} — PEER DOWN ({e})");
                println!("retrying every {interval}s until the server returns (^C to stop)");
                let _ = std::io::stdout().flush();
                std::thread::sleep(std::time::Duration::from_secs(interval));
                if let Ok(fresh) = Client::connect(addr) {
                    *client = fresh;
                }
                continue;
            }
        };
        print!("\x1b[2J\x1b[H"); // clear screen, cursor home
        let ready = health.get("ready").and_then(Json::as_bool) == Some(true);
        let mut head = format!(
            "{addr} — {}, {}",
            health.get("role").and_then(Json::as_str).unwrap_or("?"),
            if ready { "ready" } else { "NOT READY" },
        );
        if let Some(causes) = health.get("causes").and_then(Json::as_arr) {
            for cause in causes {
                if let Some(text) = cause.as_str() {
                    head.push_str(&format!(" ({text})"));
                }
            }
        }
        println!("{head}");
        match history.get("samples").and_then(Json::as_arr) {
            Some(samples) if !samples.is_empty() => {
                let first = &samples[0];
                let last = &samples[samples.len() - 1];
                let window = samples.len() > 1;
                let dt = ((num_of(last, "unix_ms").saturating_sub(num_of(first, "unix_ms")))
                    as f64
                    / 1e3)
                    .max(1e-9);
                let rate = |new: u64, old: u64| -> f64 {
                    if window {
                        new.saturating_sub(old) as f64 / dt
                    } else {
                        0.0
                    }
                };
                println!(
                    "uptime {}s   requests {} ({:.1}/s)   errors {}   committed {}   cells fixed {}",
                    num_of(last, "uptime_secs"),
                    num_of(last, "requests"),
                    rate(num_of(last, "requests"), num_of(first, "requests")),
                    num_of(last, "errors"),
                    num_of(last, "sessions_committed"),
                    num_of(last, "cells_fixed"),
                );
                println!(
                    "\n{:<18} {:>10} {:>9} {:>12} {:>12}",
                    "op", "count", "req/s", "p50", "p99"
                );
                if let Some(Json::Obj(ops)) = last.get("latency") {
                    for (op, summary) in ops {
                        let count = num_of(summary, "count");
                        if count == 0 {
                            continue;
                        }
                        let prev = first
                            .get("latency")
                            .and_then(|l| l.get(op))
                            .map(|s| num_of(s, "count"))
                            .unwrap_or(0);
                        println!(
                            "{op:<18} {count:>10} {:>9.1} {:>12} {:>12}",
                            rate(count, prev),
                            fmt_us(f64_of(summary, "p50_us")),
                            fmt_us(f64_of(summary, "p99_us")),
                        );
                    }
                }
            }
            _ => println!("metrics history is empty (the housekeeper samples once a second)"),
        }
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
}

/// `cerfix drain [--addr A] [--wait-ms N]`: gracefully drain a running
/// server for a rolling restart. The server stops accepting
/// connections, refuses new sessions with a `draining` error, waits up
/// to the bound for in-flight sessions to finish, writes a final
/// snapshot and exits cleanly — zero acknowledged work lost.
fn cmd_drain(args: &Args) -> Result<(), String> {
    use cerfix_server::wire::Json;
    use cerfix_server::{Client, Request};
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7117".to_string());
    let wait_ms = match args.options.get("wait-ms") {
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|e| format!("--wait-ms `{raw}`: {e}"))?,
        ),
        None => None,
    };
    let mut client = Client::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    let response = client
        .request(&Request::Drain { wait_ms })
        .map_err(|e| e.to_string())?;
    println!(
        "{addr} draining: {} live session(s), shutting down within {} ms",
        response.get("sessions").and_then(Json::as_u64).unwrap_or(0),
        response.get("wait_ms").and_then(Json::as_u64).unwrap_or(0),
    );
    Ok(())
}

/// `cerfix promote [--addr A]`: turn a running follower into the
/// primary. The follower stops tailing, bumps its journal epoch (which
/// fences the deposed primary on its next contact) and starts accepting
/// mutations. Idempotent against a node that is already primary.
fn cmd_promote(args: &Args) -> Result<(), String> {
    use cerfix_server::wire::Json;
    use cerfix_server::{Client, Request};
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7117".to_string());
    let mut client = Client::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    let response = client
        .request(&Request::ReplicaPromote)
        .map_err(|e| e.to_string())?;
    let epoch = response.get("epoch").and_then(Json::as_u64).unwrap_or(0);
    if response.get("promoted").and_then(Json::as_bool) == Some(true) {
        println!("{addr} promoted to primary at epoch {epoch}");
    } else {
        println!("{addr} is already primary (epoch {epoch})");
    }
    Ok(())
}

/// Render a nanosecond reading at a human scale.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Render a microsecond reading at a human scale.
fn fmt_us(us: f64) -> String {
    fmt_ns((us * 1e3) as u64)
}

/// `cerfix recover --data-dir DIR [--inspect]`: report what a restarted
/// server would recover, without serving. Storage-only — needs neither
/// master data nor rules, so it works on a box that just has the files.
fn cmd_recover(args: &Args) -> Result<(), String> {
    use cerfix_storage::{scan_journal, JournalEvent};
    let dir = std::path::PathBuf::from(args.options.get("data-dir").ok_or("missing --data-dir")?);
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let inspect = args.options.contains_key("inspect");

    let snapshot = cerfix_storage::load_snapshot(&dir).map_err(|e| e.to_string())?;
    let snapshot_epoch = snapshot.as_ref().map_or(0, |s| s.epoch);
    match &snapshot {
        Some(snapshot) => println!(
            "snapshot: epoch {}, {} live sessions, next session id {}, ruleset {:016x}",
            snapshot.epoch,
            snapshot.sessions.len(),
            snapshot.next_session_id,
            snapshot.fingerprint
        ),
        None => println!("snapshot: none"),
    }

    let journal_path = dir.join(cerfix_storage::JOURNAL_FILE);
    let scan = scan_journal(&journal_path).map_err(|e| e.to_string())?;
    let replayed = scan.epoch == snapshot_epoch;
    println!(
        "journal: epoch {}, {} events, {} torn bytes{}",
        scan.epoch,
        scan.events.len(),
        scan.torn_bytes,
        if replayed {
            ""
        } else {
            " (STALE epoch — snapshot owns this state; events will be discarded)"
        }
    );
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for event in &scan.events {
        *by_kind.entry(event.kind()).or_default() += 1;
    }
    for (kind, count) in &by_kind {
        println!("  {kind}: {count}");
    }

    let audit_path = dir.join(cerfix_storage::AUDIT_FILE);
    match std::fs::metadata(&audit_path) {
        Ok(meta) => println!("audit segment: {} bytes on disk", meta.len()),
        Err(_) => println!("audit segment: none"),
    }

    if inspect {
        if let Some(snapshot) = &snapshot {
            for session in &snapshot.sessions {
                println!(
                    "  session {}: round {}, {}/{} validated ({} by user), tuple [{}]",
                    session.session,
                    session.rounds,
                    session.validated.len(),
                    session.values.len(),
                    session.user_validated.len(),
                    session
                        .values
                        .iter()
                        .map(|v| v.render())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
        if replayed {
            for (i, event) in scan.events.iter().enumerate() {
                match event {
                    JournalEvent::SessionCreated { session, values } => {
                        println!("  [{i}] create session {session} ({} cells)", values.len())
                    }
                    JournalEvent::SessionValidated {
                        session,
                        validations,
                    } => println!(
                        "  [{i}] validate session {session}: {}",
                        validations
                            .iter()
                            .map(|(a, v)| format!("#{a}:={}", v.render()))
                            .collect::<Vec<_>>()
                            .join(" ")
                    ),
                    JournalEvent::SessionCommitted { session } => {
                        println!("  [{i}] commit session {session}")
                    }
                    JournalEvent::SessionAborted { session } => {
                        println!("  [{i}] abort session {session}")
                    }
                    JournalEvent::SessionsEvicted { sessions } => {
                        println!("  [{i}] evict {sessions:?}")
                    }
                    JournalEvent::MasterAppended { rows } => {
                        println!("  [{i}] master append ({} rows)", rows.len())
                    }
                    JournalEvent::RulesReloaded { fingerprint, dsl } => println!(
                        "  [{i}] rules reloaded → {fingerprint:016x} ({} DSL bytes)",
                        dsl.len()
                    ),
                    JournalEvent::ConfigSet { key, value } => {
                        println!("  [{i}] config set {key} = {value}")
                    }
                }
            }
        }
    }
    Ok(())
}

/// `cerfix scrub --data-dir DIR`: verify every checksum in a quiesced
/// data directory and exit nonzero if anything acknowledged is damaged.
/// Torn tails (crash residue that recovery truncates) are reported but
/// are not corruption. Storage-only, like `recover`: works on a box
/// that just has the files.
fn cmd_scrub(args: &Args) -> Result<(), String> {
    let dir = std::path::PathBuf::from(args.options.get("data-dir").ok_or("missing --data-dir")?);
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let report = cerfix_storage::scrub_dir(&dir).map_err(|e| format!("scrub: {e}"))?;
    println!(
        "journal:  {} frames verified, {} torn bytes",
        report.journal_frames, report.journal_torn_bytes
    );
    println!(
        "snapshot: {}",
        if report.snapshot_present {
            if report
                .corruptions
                .iter()
                .any(|c| c.file.contains("snapshot"))
            {
                "present (CORRUPT)"
            } else {
                "present, verified"
            }
        } else {
            "none"
        }
    );
    println!(
        "audit:    {} records verified, {} torn bytes",
        report.audit_records, report.audit_torn_bytes
    );
    if report.clean() {
        println!("scrub: clean");
        Ok(())
    } else {
        for corruption in &report.corruptions {
            eprintln!("corrupt: {corruption}");
        }
        Err(format!(
            "{} corruption(s) found — restore from a replica (`--replicate-from` re-syncs \
             automatically) or from a snapshot backup",
            report.corruptions.len()
        ))
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let result = match args.command.as_str() {
        "check" => cmd_check(&args),
        "regions" => cmd_regions(&args),
        "clean" => cmd_clean(&args),
        "discover" => cmd_discover(&args),
        "serve" => cmd_serve(&args),
        "top" => cmd_top(&args),
        "drain" => cmd_drain(&args),
        "promote" => cmd_promote(&args),
        "recover" => cmd_recover(&args),
        "scrub" => cmd_scrub(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
