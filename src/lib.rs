//! # cerfix-suite — workspace umbrella
//!
//! Re-exports the CerFix reproduction's crates under one roof and hosts
//! the workspace-level integration tests (`tests/`), runnable examples
//! (`examples/`) and the `cerfix` CLI (`src/bin/cerfix.rs`).
//!
//! Start from [`cerfix`] (the system), [`cerfix_gen`] (scenarios and
//! workloads) and [`cerfix_baseline`] (the heuristic comparison).

#![forbid(unsafe_code)]

pub use cerfix;
pub use cerfix_baseline;
pub use cerfix_gen;
pub use cerfix_relation;
pub use cerfix_rules;

#[cfg(test)]
mod tests {
    /// The workspace wiring itself: every crate is reachable and the
    /// flagship types line up across crate boundaries.
    #[test]
    fn crates_interoperate() {
        let input = crate::cerfix_gen::uk::input_schema();
        assert_eq!(input.arity(), 9);
        let rules = crate::cerfix_gen::uk::rules();
        assert_eq!(rules.len(), 9);
        assert_eq!(rules.input_schema().arity(), input.arity());
    }
}
