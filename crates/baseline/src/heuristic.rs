//! Greedy cost-based CFD repair — the baseline the paper argues against.
//!
//! Paper §1: *"previous constraint-based methods use heuristics: they do
//! not guarantee correct fixes in data repairing. Worse still, they may
//! introduce new errors when trying to repair the data. Indeed, all
//! these previous methods may opt to change t[city] to Ldn; this does
//! not fix the erroneous t[AC] and worse, messes up the correct
//! attribute t[city]."*
//!
//! This module implements that style of method faithfully (after the
//! cost-based value-modification framework of Bohannon et al., SIGMOD
//! 2005 — the paper's ref [2]): detect constant-CFD violations on the
//! entering tuple, enumerate candidate single-cell modifications that
//! resolve them (set the RHS to the tableau constant, or move an LHS
//! cell to another active-domain value), and greedily apply the cheapest
//! until no violation remains. Experiment `T1` scores it against certain
//! fixes.

use crate::cost::CostModel;
use cerfix_relation::{AttrId, Tuple, Value};
use cerfix_rules::{Cfd, TableauCell};
use std::collections::HashMap;

/// One candidate repair action.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    attr: AttrId,
    new_value: Value,
    cost: u64,
}

/// A record of one greedy repair step (for diagnostics and the audit
/// comparison in experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairStep {
    /// The modified attribute.
    pub attr: AttrId,
    /// Value before.
    pub old: Value,
    /// Value after.
    pub new: Value,
    /// The cost charged.
    pub cost: u64,
}

/// Outcome of repairing one tuple.
#[derive(Debug, Clone)]
pub struct HeuristicOutcome {
    /// The repaired tuple.
    pub tuple: Tuple,
    /// Steps applied, in order.
    pub steps: Vec<RepairStep>,
    /// True iff no violations remain.
    pub clean: bool,
}

/// The greedy cost-based repairer.
#[derive(Debug)]
pub struct HeuristicRepair {
    cfds: Vec<Cfd>,
    /// Active domain per attribute, for LHS-modification candidates.
    domains: HashMap<AttrId, Vec<Value>>,
    cost: CostModel,
    max_steps: usize,
}

impl HeuristicRepair {
    /// Build a repairer over `cfds` with per-attribute active `domains`
    /// (typically the distinct values of master-data columns).
    pub fn new(cfds: Vec<Cfd>, domains: HashMap<AttrId, Vec<Value>>) -> HeuristicRepair {
        HeuristicRepair {
            cfds,
            domains,
            cost: CostModel::EditDistance,
            max_steps: 32,
        }
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> HeuristicRepair {
        self.cost = cost;
        self
    }

    /// The CFDs in use.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Current number of violations of `tuple`.
    pub fn violation_count(&self, tuple: &Tuple) -> usize {
        self.cfds.iter().map(|c| c.check_tuple(tuple).len()).sum()
    }

    /// Candidate repairs for one violated constant row of one CFD.
    fn candidates_for(&self, cfd: &Cfd, row_idx: usize, tuple: &Tuple) -> Vec<Candidate> {
        let row = &cfd.tableau()[row_idx];
        let mut out = Vec::new();
        // (a) Set the RHS to the tableau constant.
        if let TableauCell::Const(want) = &row.rhs {
            let old = tuple.get(cfd.rhs());
            out.push(Candidate {
                attr: cfd.rhs(),
                new_value: want.clone(),
                cost: self.cost.change_cost(old, want),
            });
        }
        // (b) Move one LHS cell off the pattern constant, to the nearest
        // other active-domain value.
        for (&attr, cell) in cfd.lhs().iter().zip(row.lhs.iter()) {
            let TableauCell::Const(pattern_const) = cell else {
                continue;
            };
            let old = tuple.get(attr);
            if old != pattern_const {
                continue; // this cell is not what matches the pattern
            }
            if let Some(domain) = self.domains.get(&attr) {
                let best = domain
                    .iter()
                    .filter(|v| *v != pattern_const)
                    .map(|v| (self.cost.change_cost(old, v), v))
                    .min_by_key(|(c, v)| (*c, (*v).clone()));
                if let Some((cost, v)) = best {
                    out.push(Candidate {
                        attr,
                        new_value: v.clone(),
                        cost,
                    });
                }
            }
        }
        out
    }

    /// Greedily repair `tuple` until violation-free or the step budget is
    /// exhausted.
    pub fn repair(&self, tuple: &Tuple) -> HeuristicOutcome {
        let mut current = tuple.clone();
        let mut steps = Vec::new();
        for _ in 0..self.max_steps {
            // Gather all candidates across violated rows.
            let mut candidates: Vec<Candidate> = Vec::new();
            for cfd in &self.cfds {
                for row_idx in cfd.check_tuple(&current) {
                    candidates.extend(self.candidates_for(cfd, row_idx, &current));
                }
            }
            if candidates.is_empty() {
                break;
            }
            // Rank by (violations left after the change, cost), with a
            // deterministic tie-break — the standard greedy of cost-based
            // repair: resolve as much as possible as cheaply as possible.
            let best = candidates
                .into_iter()
                .map(|c| {
                    let mut trial = current.clone();
                    trial
                        .set(c.attr, c.new_value.clone())
                        .expect("domain values conform");
                    (self.violation_count(&trial), c)
                })
                .min_by_key(|(left, c)| (*left, c.cost, c.attr, c.new_value.clone()))
                .map(|(_, c)| c)
                .expect("non-empty");
            let old = current.get(best.attr).clone();
            if old == best.new_value {
                break; // no-op candidate: cannot make progress
            }
            current
                .set(best.attr, best.new_value.clone())
                .expect("domain values conform");
            steps.push(RepairStep {
                attr: best.attr,
                old,
                new: best.new_value,
                cost: best.cost,
            });
        }
        let clean = self.violation_count(&current) == 0;
        HeuristicOutcome {
            tuple: current,
            steps,
            clean,
        }
    }

    /// Repair a stream of tuples independently.
    pub fn repair_stream(&self, tuples: &[Tuple]) -> Vec<HeuristicOutcome> {
        tuples.iter().map(|t| self.repair(t)).collect()
    }
}

/// Build per-attribute active domains for `schema` from same-named
/// columns of a reference relation (distinct, first-seen order).
pub fn active_domains(
    schema: &cerfix_relation::SchemaRef,
    reference: &cerfix_relation::Relation,
) -> HashMap<AttrId, Vec<Value>> {
    let mut domains: HashMap<AttrId, Vec<Value>> = HashMap::new();
    for (attr_id, attr) in schema.iter() {
        let Some(ref_attr) = reference.schema().attr_id(attr.name()) else {
            continue;
        };
        let mut seen = std::collections::HashSet::new();
        let mut values = Vec::new();
        for (_, t) in reference.iter() {
            let v = t.get(ref_attr);
            if !v.is_null() && seen.insert(v.clone()) {
                values.push(v.clone());
            }
        }
        domains.insert(attr_id, values);
    }
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};

    /// Example 1's setting: ψ1: AC=020→city=Ldn, ψ2: AC=131→city=Edi.
    fn example1() -> (SchemaRef, HeuristicRepair) {
        let input = Schema::of_strings("customer", ["AC", "city", "zip"]).unwrap();
        let reference = RelationBuilder::new(Schema::of_strings("m", ["AC", "city"]).unwrap())
            .row_strs(["020", "Ldn"])
            .row_strs(["131", "Edi"])
            .build()
            .unwrap();
        let cfd = crate::mine::mine_cfd("psi", &input, &reference, "AC", "city", 10).unwrap();
        let domains = active_domains(&input, &reference);
        (input.clone(), HeuristicRepair::new(vec![cfd], domains))
    }

    #[test]
    fn paper_example_breaks_the_correct_city() {
        // t[AC]=020 (wrong), t[city]=Edi (right). True fix: AC:=131.
        // The greedy repair changes city to Ldn instead — exactly the §1
        // failure the demo motivates certain fixes with.
        let (input, repair) = example1();
        let t = Tuple::of_strings(input.clone(), ["020", "Edi", "EH8 4AH"]).unwrap();
        let out = repair.repair(&t);
        assert!(out.clean);
        assert_eq!(out.steps.len(), 1);
        assert_eq!(out.tuple.get_by_name("city").unwrap(), &Value::str("Ldn"));
        assert_eq!(
            out.tuple.get_by_name("AC").unwrap(),
            &Value::str("020"),
            "error survives"
        );
    }

    #[test]
    fn violation_free_tuple_untouched() {
        let (input, repair) = example1();
        let t = Tuple::of_strings(input.clone(), ["131", "Edi", "EH8"]).unwrap();
        let out = repair.repair(&t);
        assert!(out.clean);
        assert!(out.steps.is_empty());
        assert_eq!(out.tuple, t);
        assert_eq!(repair.violation_count(&t), 0);
    }

    #[test]
    fn rhs_repair_when_cheapest() {
        // city "Ldm" (typo of Ldn) with AC=020: cheapest fix is city:=Ldn
        // (cost 1) — here the heuristic happens to be right.
        let (input, repair) = example1();
        let t = Tuple::of_strings(input.clone(), ["020", "Ldm", "z"]).unwrap();
        let out = repair.repair(&t);
        assert!(out.clean);
        assert_eq!(out.tuple.get_by_name("city").unwrap(), &Value::str("Ldn"));
        assert_eq!(out.steps[0].cost, 1);
    }

    #[test]
    fn violation_reduction_dominates_cost() {
        // city "Morningside" with AC=020: moving AC to 131 is cheap
        // (cost 3) but lands in ψ2's violation (city ≠ Edi); rewriting
        // city to Ldn is expensive (cost ~10) but violation-free. The
        // greedy must prefer the violation-free repair — and thereby
        // erase an entire correct city name.
        let (input, repair) = example1();
        let t = Tuple::of_strings(input.clone(), ["020", "Morningside", "z"]).unwrap();
        let out = repair.repair(&t);
        assert!(out.clean);
        assert_eq!(out.tuple.get_by_name("city").unwrap(), &Value::str("Ldn"));
        assert_eq!(out.tuple.get_by_name("AC").unwrap(), &Value::str("020"));
        assert_eq!(out.steps.len(), 1);
    }

    #[test]
    fn unit_cost_model_changes_choices() {
        // Under unit costs on Example 1's tuple, city:=Ldn and AC:=131
        // both leave zero violations at cost 1; the deterministic
        // tie-break (lowest attr id) picks AC — the heuristic is
        // *accidentally* right, underscoring that its correctness is
        // luck, not guarantee.
        let (input, repair) = example1();
        let repair = repair.with_cost(CostModel::Unit);
        let t = Tuple::of_strings(input.clone(), ["020", "Edi", "z"]).unwrap();
        let out = repair.repair(&t);
        assert!(out.clean);
        assert_eq!(out.steps[0].attr, input.attr_id("AC").unwrap());
        assert_eq!(out.tuple.get_by_name("AC").unwrap(), &Value::str("131"));
    }

    #[test]
    fn stream_repair() {
        let (input, repair) = example1();
        let tuples = vec![
            Tuple::of_strings(input.clone(), ["020", "Edi", "z"]).unwrap(),
            Tuple::of_strings(input.clone(), ["131", "Edi", "z"]).unwrap(),
        ];
        let outs = repair.repair_stream(&tuples);
        assert_eq!(outs.len(), 2);
        assert!(outs[0].clean && outs[1].clean);
        assert!(outs[1].steps.is_empty());
    }

    #[test]
    fn active_domains_built_by_name() {
        let (input, _) = example1();
        let reference = RelationBuilder::new(Schema::of_strings("m", ["AC", "city"]).unwrap())
            .row_strs(["020", "Ldn"])
            .row_strs(["131", "Edi"])
            .row_strs(["131", "Edi"])
            .build()
            .unwrap();
        let domains = active_domains(&input, &reference);
        assert_eq!(domains[&input.attr_id("AC").unwrap()].len(), 2);
        assert_eq!(domains[&input.attr_id("city").unwrap()].len(), 2);
        assert!(
            !domains.contains_key(&input.attr_id("zip").unwrap()),
            "no zip column in reference"
        );
    }

    #[test]
    fn step_budget_terminates_oscillation() {
        // Two contradictory CFDs on the same cells could oscillate; the
        // budget guarantees termination regardless.
        let input = Schema::of_strings("r", ["a", "b"]).unwrap();
        let c1 = Cfd::constant(
            "c1",
            &input,
            vec![0],
            vec![Value::str("x")],
            1,
            Value::str("1"),
        )
        .unwrap();
        let c2 = Cfd::constant(
            "c2",
            &input,
            vec![0],
            vec![Value::str("x")],
            1,
            Value::str("2"),
        )
        .unwrap();
        let repair = HeuristicRepair::new(vec![c1, c2], HashMap::new());
        let t = Tuple::of_strings(input, ["x", "0"]).unwrap();
        let out = repair.repair(&t);
        assert!(!out.clean, "contradictory CFDs cannot be satisfied");
        assert!(out.steps.len() <= 32);
    }
}
