//! # cerfix-baseline — heuristic repair baselines
//!
//! Implements the class of data-repairing methods the CerFix paper
//! positions itself against (§1): cost-based value modification driven by
//! integrity constraints (refs [2, 4] of the paper). Constraints *detect*
//! errors but do not say which cell is wrong; the heuristic picks the
//! cheapest modification — and therefore sometimes "messes up the correct
//! attribute", which experiment `T1` quantifies against certain fixes.
//!
//! * [`mine_cfd`] — discover ψ1/ψ2-style constant CFDs from reference
//!   data;
//! * [`HeuristicRepair`] — greedy cheapest-fix repair over those CFDs;
//! * [`CostModel`] — unit or edit-distance change costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod heuristic;
mod mine;

pub use cost::CostModel;
pub use heuristic::{active_domains, HeuristicOutcome, HeuristicRepair, RepairStep};
pub use mine::{mine_cfd, mine_constant_rows};
