//! Repair cost models.
//!
//! Heuristic constraint repair (the paper's refs [2, 4]) picks the
//! *cheapest* value modification that resolves a violation. The classic
//! cost is the string edit distance between old and new values, so that
//! "small" changes are preferred — which is precisely how such methods
//! end up changing a correct `city = Edi` into `Ldn` instead of fixing
//! the wrong area code (paper §1).

use cerfix_relation::Value;
use cerfix_rules::edit_distance;

/// How to price changing one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Every change costs 1.
    Unit,
    /// Changes cost the Levenshtein distance between renderings (the
    /// standard choice in cost-based repair).
    #[default]
    EditDistance,
}

impl CostModel {
    /// Cost of changing `old` into `new`. Zero iff the values are equal.
    pub fn change_cost(self, old: &Value, new: &Value) -> u64 {
        if old == new {
            return 0;
        }
        match self {
            CostModel::Unit => 1,
            CostModel::EditDistance => {
                let d = edit_distance(&old.render(), &new.render());
                d.max(1) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_costs() {
        let m = CostModel::Unit;
        assert_eq!(m.change_cost(&Value::str("a"), &Value::str("a")), 0);
        assert_eq!(m.change_cost(&Value::str("a"), &Value::str("zzz")), 1);
    }

    #[test]
    fn edit_distance_costs() {
        let m = CostModel::EditDistance;
        assert_eq!(m.change_cost(&Value::str("Edi"), &Value::str("Edi")), 0);
        assert_eq!(m.change_cost(&Value::str("Edi"), &Value::str("Ldn")), 2);
        assert_eq!(m.change_cost(&Value::str("020"), &Value::str("131")), 3);
        // Never zero for distinct values, even if renderings coincide in
        // length or the distance degenerates.
        assert!(m.change_cost(&Value::Null, &Value::str("x")) >= 1);
    }

    #[test]
    fn paper_example_prefers_breaking_city() {
        // §1: the true fix is AC 020→131 (cost 3); the heuristic's
        // cheaper option is city Edi→Ldn (cost 2, as d/i differ... see
        // test above). The cost model itself is what drives the wrong
        // choice.
        let m = CostModel::EditDistance;
        let fix_ac = m.change_cost(&Value::str("020"), &Value::str("131"));
        let break_city = m.change_cost(&Value::str("Edi"), &Value::str("Ldn"));
        assert!(break_city < fix_ac, "{break_city} vs {fix_ac}");
    }
}
