//! Constant-CFD discovery from reference data.
//!
//! The demo notes that editing rules "may either be designed by experts
//! or be discovered from cfds or mds for which discovery algorithms are
//! already in place" (paper §3). The heuristic baseline needs CFDs too;
//! this module mines single-LHS constant CFDs (the ψ1/ψ2 shape of
//! Example 1) from a reference relation: one tableau row per distinct
//! LHS value whose RHS is unanimous.

use cerfix_relation::{AttrId, Relation, SchemaRef, Value};
use cerfix_rules::{Cfd, Result, TableauCell, TableauRow};
use std::collections::HashMap;

/// Mine `(lhs = v → rhs = w)` rows from `reference`, skipping LHS values
/// with disagreeing RHS values. Rows are emitted in first-seen order and
/// capped at `max_rows`.
pub fn mine_constant_rows(
    reference: &Relation,
    lhs: AttrId,
    rhs: AttrId,
    max_rows: usize,
) -> Vec<(Value, Value)> {
    let mut agreed: HashMap<Value, Option<Value>> = HashMap::new();
    let mut order: Vec<Value> = Vec::new();
    for (_, t) in reference.iter() {
        let k = t.get(lhs);
        let v = t.get(rhs);
        if k.is_null() || v.is_null() {
            continue;
        }
        match agreed.get_mut(k) {
            None => {
                agreed.insert(k.clone(), Some(v.clone()));
                order.push(k.clone());
            }
            Some(slot) => {
                if slot.as_ref().is_some_and(|existing| existing != v) {
                    *slot = None;
                }
            }
        }
    }
    order
        .into_iter()
        .filter_map(|k| agreed[&k].clone().map(|v| (k, v)))
        .take(max_rows)
        .collect()
}

/// Mine a constant CFD over `schema` (the *input* schema) using columns
/// of the same names in `reference` (typically master data).
pub fn mine_cfd(
    name: impl Into<String>,
    schema: &SchemaRef,
    reference: &Relation,
    lhs_name: &str,
    rhs_name: &str,
    max_rows: usize,
) -> Result<Cfd> {
    let ref_schema = reference.schema();
    let ref_lhs = ref_schema.require_attr(lhs_name)?;
    let ref_rhs = ref_schema.require_attr(rhs_name)?;
    let rows = mine_constant_rows(reference, ref_lhs, ref_rhs, max_rows);
    let lhs = schema.require_attr(lhs_name)?;
    let rhs = schema.require_attr(rhs_name)?;
    let tableau: Vec<TableauRow> = rows
        .into_iter()
        .map(|(k, v)| TableauRow {
            lhs: vec![TableauCell::Const(k)],
            rhs: TableauCell::Const(v),
        })
        .collect();
    Cfd::new(name, schema, vec![lhs], rhs, tableau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema};

    fn reference() -> Relation {
        let s = Schema::of_strings("m", ["AC", "city"]).unwrap();
        RelationBuilder::new(s)
            .row_strs(["020", "Ldn"])
            .row_strs(["131", "Edi"])
            .row_strs(["131", "Edi"]) // duplicate agrees
            .row_strs(["161", "Mcr"])
            .row_strs(["161", "Manchester"]) // disagreement: drop 161
            .build()
            .unwrap()
    }

    #[test]
    fn mines_agreed_rows_only() {
        let rel = reference();
        let rows = mine_constant_rows(&rel, 0, 1, 100);
        assert_eq!(
            rows,
            vec![
                (Value::str("020"), Value::str("Ldn")),
                (Value::str("131"), Value::str("Edi")),
            ]
        );
    }

    #[test]
    fn caps_rows() {
        let rel = reference();
        let rows = mine_constant_rows(&rel, 0, 1, 1);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn mined_cfd_reproduces_psi1_psi2() {
        // Mining AC→city from the reference yields exactly Example 1's
        // ψ1 and ψ2 as tableau rows, bound to the input schema.
        let input = Schema::of_strings("customer", ["AC", "city", "zip"]).unwrap();
        let cfd = mine_cfd("psi", &input, &reference(), "AC", "city", 10).unwrap();
        assert_eq!(cfd.tableau().len(), 2);
        let t = cerfix_relation::Tuple::of_strings(input, ["020", "Edi", "z"]).unwrap();
        assert_eq!(
            cfd.check_tuple(&t),
            vec![0],
            "detects Example 1's violation"
        );
    }

    #[test]
    fn unknown_column_errors() {
        let input = Schema::of_strings("customer", ["AC", "city"]).unwrap();
        assert!(mine_cfd("x", &input, &reference(), "AC", "postcode", 10).is_err());
        assert!(mine_cfd("x", &input, &reference(), "nope", "city", 10).is_err());
    }
}
