//! # cerfix — cleaning data with certain fixes
//!
//! A from-scratch Rust reproduction of **CerFix** (Fan, Li, Ma, Tang, Yu:
//! *CerFix: A System for Cleaning Data with Certain Fixes*, PVLDB 4(12),
//! 2011), the system packaging of the editing-rules framework of Fan et
//! al., PVLDB 2010. CerFix finds **certain fixes** for input tuples at the
//! point of data entry: fixes guaranteed correct, derived from master data
//! through editing rules, never from heuristics.
//!
//! The crate mirrors the paper's architecture (Fig. 1):
//!
//! | Paper component     | Module |
//! |---------------------|--------|
//! | Master data manager | [`master`]   — `Dm` + per-rule hash indexes |
//! | Rule engine         | [`engine`]   — certain application, correcting-process fixpoint, consistency analysis, inference system |
//! | Region finder       | [`region`]   — top-k certain regions `(Z, Tc)` with data certification |
//! | Data monitor        | [`monitor`]  — the interactive suggest/validate/fix loop |
//! | Data auditing       | [`audit`]    — per-cell provenance and user-vs-CerFix statistics |
//! | Data explorer       | [`explorer`] — rule management facade over the DSL |
//!
//! ## Example: the paper's Example 1 & 2
//!
//! ```
//! use cerfix::{DataMonitor, MasterData, OracleUser};
//! use cerfix_relation::{Schema, Tuple, RelationBuilder, Value};
//! use cerfix_rules::{parse_rules, RuleDecl, RuleSet};
//!
//! // Schemas of the running example.
//! let input = Schema::of_strings("customer",
//!     ["FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item"]).unwrap();
//! let master_schema = Schema::of_strings("master",
//!     ["FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender"]).unwrap();
//!
//! // Master tuple s of Example 2.
//! let master = MasterData::new(RelationBuilder::new(master_schema.clone())
//!     .row_strs(["Robert", "Brady", "131", "6884563", "079172485",
//!                "501 Elm St", "Edi", "EH8 4AH", "11/11/55", "M"])
//!     .build().unwrap());
//!
//! // Editing rule φ1: ((zip, zip) → (AC, AC), tp1 = ()).
//! let mut rules = RuleSet::new(input.clone(), master_schema.clone());
//! for decl in parse_rules("er phi1: match zip=zip fix AC:=AC when ()",
//!                         &input, &master_schema).unwrap() {
//!     if let RuleDecl::Er(r) = decl { rules.add(r).unwrap(); }
//! }
//!
//! // Example 1's tuple t: AC=020 contradicts zip EH8 4AH.
//! let t = Tuple::of_strings(input.clone(),
//!     ["Bob", "Brady", "020", "079172485", "2",
//!      "501 Elm St", "Edi", "EH8 4AH", "CD"]).unwrap();
//!
//! // With t[zip] validated, φ1 gives the certain fix t[AC] := 131.
//! let monitor = DataMonitor::new(&rules, &master);
//! let mut session = monitor.start(0, t);
//! let zip = input.attr_id("zip").unwrap();
//! monitor.apply_validation(&mut session, &[(zip, Value::str("EH8 4AH"))]).unwrap();
//! assert_eq!(session.tuple.get_by_name("AC").unwrap(), &Value::str("131"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod engine;
mod error;
pub mod exec;
pub mod explorer;
mod master;
pub mod monitor;
pub mod region;

pub use audit::{
    explain_cell, explain_tuple, AuditLog, AuditRecord, AuditSink, AuditStats, CellEvent,
};
pub use engine::{
    apply_rule, check_consistency, run_fixpoint, run_fixpoint_delta, ApplyOutcome, CellFix,
    CompiledRules, ConsistencyOptions, ConsistencyReport, EngineStats, FixpointReport,
    Inconsistency,
};
pub use error::{CerfixError, Result};
pub use exec::{ordered_map, WorkerPool};
pub use explorer::Explorer;
pub use master::MasterDelta;
pub use master::{CertainLookup, MasterData};
pub use monitor::{
    clean_stream, clean_stream_parallel, CappedUser, CleanOutcome, DataMonitor, MonitorSession,
    OracleUser, PreferringUser, SessionStatus, SilentUser, StreamReport, UserAgent,
};
pub use region::{
    certifies_for, certifies_for_with_plan, certify_region, certify_region_mode, find_regions,
    find_regions_from_scratch, recheck_regions, search_regions, CertifyMode, CertifyResult, Region,
    RegionFinderOptions, RegionSearch, RegionSearchResult, RegionSearchStats,
};
