//! The rule engine (paper §2): rule application, the correcting process,
//! consistency checking, and the validated-attribute inference system.

mod application;
mod consistency;
mod fixpoint;
mod inference;

pub use application::{apply_rule, ApplyOutcome, CellFix};
pub use consistency::{check_consistency, ConsistencyOptions, ConsistencyReport, Inconsistency};
pub use fixpoint::{run_fixpoint, FixpointReport};
pub use inference::{
    all_rules, attribute_closure, covers_all, minimal_covers, new_suggestion, unfixable_attrs,
    useful_evidence_attrs, RuleFilter,
};
