//! The rule engine (paper §2): rule application, the correcting process
//! (compiled plans + delta-driven fixpoint, with the pass-based loop as
//! the reference oracle), consistency checking, and the
//! validated-attribute inference system.

mod application;
mod compile;
mod consistency;
mod delta;
mod fixpoint;
mod inference;
mod stats;

pub use application::{apply_rule, ApplyOutcome, CellFix};
pub use compile::CompiledRules;
pub use consistency::{check_consistency, ConsistencyOptions, ConsistencyReport, Inconsistency};
pub use delta::run_fixpoint_delta;
pub use fixpoint::{run_fixpoint, FixpointReport};
pub use inference::{
    all_rules, attribute_closure, covers_all, minimal_covers, new_suggestion, unfixable_attrs,
    useful_evidence_attrs, RuleFilter,
};
pub use stats::EngineStats;
