//! The inference system: static reasoning about what *can* be validated.
//!
//! Paper §2 (rule engine): *"provided that some attributes of a tuple are
//! correct, it automatically derives what other attributes can be
//! validated by using editing rules and master data."*
//!
//! This module reasons at the *attribute* level: a rule `(X → B, tp)` is a
//! hyperedge from its evidence set `X ∪ Xp` to `B`. The closure of a seed
//! set under enabled rules over-approximates what the data-level fixpoint
//! can validate (data-level runs can stall on missing or ambiguous master
//! matches — the region *certification* step accounts for that). The
//! closure drives both the region finder's candidate generation and the
//! monitor's new-suggestion computation.

use cerfix_relation::{AttrId, AttrSet};
use cerfix_rules::{EditingRule, RuleId, RuleSet};
use std::collections::BTreeSet;

/// Rule filter: decides whether a rule may be counted on during closure.
/// The monitor passes a filter that drops rules whose patterns are already
/// falsified by validated cells; the region finder passes tableau-context
/// entailment.
pub type RuleFilter<'a> = &'a dyn Fn(RuleId, &EditingRule) -> bool;

/// Accept every rule.
pub fn all_rules(_: RuleId, _: &EditingRule) -> bool {
    true
}

/// Compute the closure of `seed` under the enabled rules: repeatedly add
/// the RHS of every rule whose evidence is contained in the current set.
pub fn attribute_closure(
    rules: &RuleSet,
    seed: &BTreeSet<AttrId>,
    enabled: RuleFilter<'_>,
) -> BTreeSet<AttrId> {
    let mut closed = seed.clone();
    // Materialize evidence/rhs per enabled rule once.
    let mut pending: Vec<(BTreeSet<AttrId>, Vec<AttrId>)> = rules
        .iter()
        .filter(|&(id, r)| enabled(id, r))
        .map(|(_, r)| (r.evidence_attrs(), r.input_rhs()))
        .collect();
    let mut progressed = true;
    while progressed {
        progressed = false;
        pending.retain(|(evidence, rhs)| {
            if evidence.is_subset(&closed) {
                for &b in rhs {
                    if closed.insert(b) {
                        progressed = true;
                    }
                }
                false // rule consumed
            } else {
                true
            }
        });
    }
    closed
}

/// True iff the closure of `seed` covers the whole input schema.
pub fn covers_all(rules: &RuleSet, seed: &BTreeSet<AttrId>, enabled: RuleFilter<'_>) -> bool {
    attribute_closure(rules, seed, enabled).len() == rules.input_schema().arity()
}

/// Attributes that no enabled rule can fix: these must be validated by the
/// user in every certain region (`item`, `phn` and `type` in the paper's
/// UK scenario).
pub fn unfixable_attrs(rules: &RuleSet, enabled: RuleFilter<'_>) -> BTreeSet<AttrId> {
    let fixable: BTreeSet<AttrId> = rules
        .iter()
        .filter(|&(id, r)| enabled(id, r))
        .flat_map(|(_, r)| r.input_rhs())
        .collect();
    rules
        .input_schema()
        .all_attr_ids()
        .filter(|a| !fixable.contains(a))
        .collect()
}

/// Attributes worth considering as extra evidence: anything that appears
/// in some enabled rule's evidence set. Validating an attribute that no
/// rule reads (and that rules can fix) is wasted user effort.
pub fn useful_evidence_attrs(rules: &RuleSet, enabled: RuleFilter<'_>) -> BTreeSet<AttrId> {
    rules
        .iter()
        .filter(|&(id, r)| enabled(id, r))
        .flat_map(|(_, r)| r.evidence_attrs())
        .collect()
}

/// Rule hyperedges in bitset form: `(evidence mask, RHS mask)` per
/// enabled rule — the compiled currency of the cover search, built once
/// and reused across every candidate combination.
fn closure_masks(rules: &RuleSet, enabled: RuleFilter<'_>) -> Vec<(AttrSet, AttrSet)> {
    rules
        .iter()
        .filter(|&(id, r)| enabled(id, r))
        .map(|(_, r)| {
            (
                r.evidence_attrs().iter().copied().collect(),
                r.input_rhs().into_iter().collect(),
            )
        })
        .collect()
}

/// Does the closure of `seed` under `masks` span all `arity` attributes?
/// Pure bitset sweeps — no per-call allocation beyond one consumed mask.
fn closure_spans(masks: &[(AttrSet, AttrSet)], seed: &AttrSet, arity: usize) -> bool {
    let mut closed = seed.clone();
    if closed.len() == arity {
        return true;
    }
    let mut consumed = AttrSet::new();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (pos, (evidence, rhs)) in masks.iter().enumerate() {
            if consumed.contains(pos) || !evidence.is_subset(&closed) {
                continue;
            }
            consumed.insert(pos);
            for b in rhs {
                if closed.insert(b) {
                    progressed = true;
                }
            }
            if closed.len() == arity {
                return true;
            }
        }
    }
    false
}

/// Enumerate **all minimal** extra-evidence sets `S ⊆ candidates` such
/// that `closure(base ∪ S)` covers the whole schema, in ascending size.
///
/// Exhaustive by increasing cardinality with an antichain filter, which is
/// exact for the schema widths of entity data (the search space is
/// `2^|candidates|` where candidates are the useful evidence attributes —
/// at most a dozen in the paper's scenarios). `max_size` bounds the search
/// and `max_results` the output. The enabled rules are compiled to bitset
/// hyperedges once; each combination is then tested in pure word
/// operations (the region finder's static phase runs this per context).
pub fn minimal_covers(
    rules: &RuleSet,
    base: &BTreeSet<AttrId>,
    candidates: &[AttrId],
    enabled: RuleFilter<'_>,
    max_size: usize,
    max_results: usize,
) -> Vec<BTreeSet<AttrId>> {
    let arity = rules.input_schema().arity();
    let masks = closure_masks(rules, enabled);
    let base_mask = AttrSet::from(base);
    let mut results: Vec<BTreeSet<AttrId>> = Vec::new();
    if closure_spans(&masks, &base_mask, arity) {
        results.push(BTreeSet::new());
        return results;
    }
    let n = candidates.len();
    let mut result_masks: Vec<AttrSet> = Vec::new();
    for size in 1..=max_size.min(n) {
        let mut combo: Vec<usize> = (0..size).collect();
        loop {
            let mut extra = AttrSet::new();
            extra.extend(combo.iter().map(|&i| candidates[i]));
            // Antichain: skip supersets of an already-found cover.
            let dominated = result_masks.iter().any(|r| r.is_subset(&extra));
            if !dominated {
                let mut seed = base_mask.clone();
                seed.extend(extra.iter());
                if closure_spans(&masks, &seed, arity) {
                    results.push(extra.iter().collect());
                    result_masks.push(extra);
                    if results.len() >= max_results {
                        return results;
                    }
                }
            }
            if !next_combination(&mut combo, n) {
                break;
            }
        }
    }
    results
}

/// Advance `combo` to the next k-combination of `0..n` in lexicographic
/// order; returns false when exhausted.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] != i + n - k {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// A single small cover for the monitor's *new suggestion* (paper §2,
/// data monitor step 3: "a minimal number of attributes").
///
/// Finds the smallest extra set via [`minimal_covers`] when the candidate
/// space is small, falling back to a greedy closure-gain heuristic for
/// wide schemas. Returns `None` when even validating every candidate
/// cannot cover the schema (the tuple can only be partially fixed).
pub fn new_suggestion(
    rules: &RuleSet,
    validated: &BTreeSet<AttrId>,
    enabled: RuleFilter<'_>,
) -> Option<BTreeSet<AttrId>> {
    let arity = rules.input_schema().arity();
    // Anything unfixable and not yet validated must be user-validated.
    let mut base = validated.clone();
    let mandatory: BTreeSet<AttrId> = unfixable_attrs(rules, enabled)
        .into_iter()
        .filter(|a| !validated.contains(a))
        .collect();
    base.extend(mandatory.iter().copied());

    let useful: Vec<AttrId> = useful_evidence_attrs(rules, enabled)
        .into_iter()
        .filter(|a| !base.contains(a))
        .collect();

    // Feasibility: even with every candidate validated?
    let mut everything = base.clone();
    everything.extend(useful.iter().copied());
    if attribute_closure(rules, &everything, enabled).len() != arity {
        return None;
    }

    const EXACT_LIMIT: usize = 16;
    let extra = if useful.len() <= EXACT_LIMIT {
        minimal_covers(rules, &base, &useful, enabled, useful.len(), 1)
            .into_iter()
            .next()
            .unwrap_or_default()
    } else {
        greedy_cover(rules, &base, &useful, enabled)
    };
    let mut suggestion = mandatory;
    suggestion.extend(extra);
    Some(suggestion)
}

/// Greedy set cover over closure gain, pruned to minimality.
fn greedy_cover(
    rules: &RuleSet,
    base: &BTreeSet<AttrId>,
    candidates: &[AttrId],
    enabled: RuleFilter<'_>,
) -> BTreeSet<AttrId> {
    let arity = rules.input_schema().arity();
    let mut chosen: Vec<AttrId> = Vec::new();
    let mut current = base.clone();
    while attribute_closure(rules, &current, enabled).len() != arity {
        let mut best: Option<(AttrId, usize)> = None;
        for &c in candidates {
            if current.contains(&c) {
                continue;
            }
            let mut trial = current.clone();
            trial.insert(c);
            let gain = attribute_closure(rules, &trial, enabled).len();
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((c, gain));
            }
        }
        match best {
            Some((c, _)) => {
                chosen.push(c);
                current.insert(c);
            }
            None => break, // no candidates left; caller checked feasibility
        }
    }
    // Prune: drop any chosen attr whose removal keeps coverage.
    let mut pruned: BTreeSet<AttrId> = chosen.iter().copied().collect();
    for &c in &chosen {
        let mut trial = base.clone();
        trial.extend(pruned.iter().copied().filter(|&a| a != c));
        if attribute_closure(rules, &trial, enabled).len() == arity {
            pruned.remove(&c);
        }
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{Schema, SchemaRef};
    use cerfix_rules::{EditingRule, PatternTuple};

    /// The paper's UK scenario skeleton: 9 input attrs, rules mirroring
    /// φ1–φ9 at the attribute level.
    fn uk_rules() -> (SchemaRef, RuleSet) {
        let input = Schema::of_strings(
            "customer",
            [
                "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let master = Schema::of_strings(
            "master",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
            ],
        )
        .unwrap();
        let t = |n: &str| input.attr_id(n).unwrap();
        let m = |n: &str| master.attr_id(n).unwrap();
        let mut rules = RuleSet::new(input.clone(), master.clone());
        let mut add =
            |name: &str, lhs: Vec<(&str, &str)>, rhs: Vec<(&str, &str)>, pattern: PatternTuple| {
                rules
                    .add(
                        EditingRule::new(
                            name,
                            &input,
                            &master,
                            lhs.iter().map(|&(a, b)| (t(a), m(b))).collect::<Vec<_>>(),
                            rhs.iter().map(|&(a, b)| (t(a), m(b))).collect::<Vec<_>>(),
                            pattern,
                        )
                        .unwrap(),
                    )
                    .unwrap();
            };
        use cerfix_relation::Value;
        let mobile = PatternTuple::empty().with_eq(t("type"), Value::str("2"));
        let home = PatternTuple::empty().with_eq(t("type"), Value::str("1"));
        let geo = PatternTuple::empty().with_ne(t("AC"), Value::str("0800"));
        add(
            "phi1",
            vec![("zip", "zip")],
            vec![("AC", "AC")],
            PatternTuple::empty(),
        );
        add(
            "phi2",
            vec![("zip", "zip")],
            vec![("str", "str")],
            PatternTuple::empty(),
        );
        add(
            "phi3",
            vec![("zip", "zip")],
            vec![("city", "city")],
            PatternTuple::empty(),
        );
        add(
            "phi4",
            vec![("phn", "Mphn")],
            vec![("FN", "FN")],
            mobile.clone(),
        );
        add("phi5", vec![("phn", "Mphn")], vec![("LN", "LN")], mobile);
        add(
            "phi6",
            vec![("AC", "AC"), ("phn", "Hphn")],
            vec![("str", "str")],
            home.clone(),
        );
        add(
            "phi7",
            vec![("AC", "AC"), ("phn", "Hphn")],
            vec![("city", "city")],
            home.clone(),
        );
        add(
            "phi8",
            vec![("AC", "AC"), ("phn", "Hphn")],
            vec![("zip", "zip")],
            home,
        );
        add("phi9", vec![("AC", "AC")], vec![("city", "city")], geo);
        (input, rules)
    }

    #[test]
    fn closure_from_zip_phn_type_item() {
        // The size-4 certain region of the UK scenario (type=2 context):
        // closure must reach all nine attributes.
        let (input, rules) = uk_rules();
        let t = |n: &str| input.attr_id(n).unwrap();
        let seed: BTreeSet<AttrId> = [t("zip"), t("phn"), t("type"), t("item")].into();
        let closed = attribute_closure(&rules, &seed, &all_rules);
        assert_eq!(closed.len(), 9, "zip→AC,str,city; phn/type→FN,LN");
        assert!(covers_all(&rules, &seed, &all_rules));
    }

    #[test]
    fn closure_from_fig3_suggestion_stalls() {
        // Fig. 3(a)'s suggestion {AC, phn, type, item}: zip and str are
        // unreachable when φ6–φ8 are unavailable (type=2 context) — this
        // is why the demo needs a second round suggesting zip.
        let (input, rules) = uk_rules();
        let t = |n: &str| input.attr_id(n).unwrap();
        let seed: BTreeSet<AttrId> = [t("AC"), t("phn"), t("type"), t("item")].into();
        // Filter out the home-phone rules, as a type=2 tuple can never
        // satisfy their pattern.
        let type2_only = |_: RuleId, r: &EditingRule| !["phi6", "phi7", "phi8"].contains(&r.name());
        let closed = attribute_closure(&rules, &seed, &type2_only);
        assert!(!closed.contains(&t("zip")));
        assert!(!closed.contains(&t("str")));
        assert!(
            closed.contains(&t("FN")) && closed.contains(&t("LN")) && closed.contains(&t("city"))
        );
    }

    #[test]
    fn unfixable_attrs_must_be_user_validated() {
        let (input, rules) = uk_rules();
        let t = |n: &str| input.attr_id(n).unwrap();
        let unfixable = unfixable_attrs(&rules, &all_rules);
        assert_eq!(unfixable, [t("phn"), t("type"), t("item")].into());
    }

    #[test]
    fn useful_evidence_excludes_item() {
        let (input, rules) = uk_rules();
        let t = |n: &str| input.attr_id(n).unwrap();
        let useful = useful_evidence_attrs(&rules, &all_rules);
        assert!(useful.contains(&t("zip")));
        assert!(useful.contains(&t("AC")));
        assert!(useful.contains(&t("phn")));
        assert!(useful.contains(&t("type")));
        assert!(!useful.contains(&t("item")), "no rule reads item");
        assert!(!useful.contains(&t("FN")));
    }

    #[test]
    fn minimal_covers_uk() {
        let (input, rules) = uk_rules();
        let t = |n: &str| input.attr_id(n).unwrap();
        // Base: the mandatory unfixable attributes.
        let base: BTreeSet<AttrId> = [t("phn"), t("type"), t("item")].into();
        let candidates: Vec<AttrId> = useful_evidence_attrs(&rules, &all_rules)
            .into_iter()
            .filter(|a| !base.contains(a))
            .collect();
        let covers = minimal_covers(&rules, &base, &candidates, &all_rules, 5, 10);
        // {zip} alone suffices: closure adds AC,str,city then FN,LN via phn.
        assert!(covers.contains(&[t("zip")].into()), "covers: {covers:?}");
        // No returned cover is a superset of another.
        for (i, a) in covers.iter().enumerate() {
            for (j, b) in covers.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset(b) || a == b, "antichain violated");
                }
            }
        }
    }

    #[test]
    fn minimal_covers_empty_when_base_covers() {
        let (input, rules) = uk_rules();
        let all: BTreeSet<AttrId> = input.all_attr_ids().collect();
        let covers = minimal_covers(&rules, &all, &[], &all_rules, 3, 5);
        assert_eq!(covers, vec![BTreeSet::new()]);
    }

    #[test]
    fn new_suggestion_initial_matches_fig3a() {
        // From nothing validated, the minimal static suggestion is
        // {AC, phn, type, item} — exactly the attributes highlighted in
        // Fig. 3(a) of the paper. ({zip, phn, type, item} is the other
        // size-4 cover; the search returns the lexicographically first.)
        let (input, rules) = uk_rules();
        let t = |n: &str| input.attr_id(n).unwrap();
        let s = new_suggestion(&rules, &BTreeSet::new(), &all_rules).unwrap();
        assert_eq!(s, [t("AC"), t("phn"), t("type"), t("item")].into());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn new_suggestion_after_fig3_round1() {
        // Fig. 3(b): user validated {AC, phn, type, item}; monitor fixed
        // FN, LN, city. The next suggestion must be {zip} (covering str
        // via φ2 and zip itself).
        let (input, rules) = uk_rules();
        let t = |n: &str| input.attr_id(n).unwrap();
        let validated: BTreeSet<AttrId> = [
            t("AC"),
            t("phn"),
            t("type"),
            t("item"),
            t("FN"),
            t("LN"),
            t("city"),
        ]
        .into();
        let type2_only = |_: RuleId, r: &EditingRule| !["phi6", "phi7", "phi8"].contains(&r.name());
        let s = new_suggestion(&rules, &validated, &type2_only).unwrap();
        assert_eq!(s, [t("zip")].into(), "the paper's round-2 suggestion");
    }

    #[test]
    fn new_suggestion_none_when_unreachable() {
        // Remove every rule: a fresh tuple needs all attrs validated, but
        // they're all "mandatory"; suggestion = all attrs. With an
        // *impossible* filter the schema is coverable only by validating
        // everything — which IS feasible, so construct unreachability via
        // an empty candidate set instead: no rules ⇒ mandatory = all ⇒
        // base covers ⇒ suggestion = all attrs.
        let (input, rules) = uk_rules();
        let none = |_: RuleId, _: &EditingRule| false;
        let s = new_suggestion(&rules, &BTreeSet::new(), &none).unwrap();
        assert_eq!(s.len(), input.arity(), "user must validate everything");
    }

    #[test]
    fn greedy_matches_exact_on_uk() {
        let (_, rules) = uk_rules();
        let base: BTreeSet<AttrId> = unfixable_attrs(&rules, &all_rules);
        let candidates: Vec<AttrId> = useful_evidence_attrs(&rules, &all_rules)
            .into_iter()
            .filter(|a| !base.contains(a))
            .collect();
        let exact = minimal_covers(&rules, &base, &candidates, &all_rules, candidates.len(), 1)
            .into_iter()
            .next()
            .unwrap();
        let greedy = greedy_cover(&rules, &base, &candidates, &all_rules);
        assert_eq!(
            exact.len(),
            greedy.len(),
            "greedy finds a same-size cover here"
        );
    }
}
