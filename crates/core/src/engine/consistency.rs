//! Consistency analysis of editing rules w.r.t. master data.
//!
//! Paper §2 (rule engine): *"It checks the consistency of editing rules,
//! i.e., whether the given rules are dirty themselves"*; §3: *"CerFix
//! automatically tests whether the specified eRs make sense w.r.t. master
//! data, i.e., the rules do not contradict each other and will lead to a
//! unique fix for any input tuple."*
//!
//! Deciding consistency is coNP-complete in general ([7]); for the demo's
//! pattern language (constants, negations, wildcards) the following
//! procedure is **exact** w.r.t. this engine's certain-application
//! semantics:
//!
//! Two rules `φi, φj` sharing a target attribute `B` *conflict* iff there
//! exist join keys `k1` (for `φi`) and `k2` (for `φj`) such that
//!
//! 1. each key has a **unique agreed** fix value in master data (keys with
//!    disagreeing matches never fire under certain-application semantics,
//!    so they cannot cause conflicts — they surface as [`Ambiguity`]
//!    warnings instead);
//! 2. the two derived values for `B` differ;
//! 3. the combined constraints on a hypothetical input tuple — `t[Xi] =
//!    k1`, `t[Xj] = k2`, plus both rules' patterns — are satisfiable
//!    (checked per attribute via [`ConstraintSet`]).
//!
//! Such a tuple would receive a different value for `B` depending on which
//! rule fires first: the correcting process would not be Church–Rosser.
//!
//! Keys are deduplicated (distinct `Xm` projections) and joined hash-style
//! on shared LHS attributes, so the typical cost is far below the naive
//! `|Dm|²` per pair; a `pair_budget` caps worst-case blowup (reported via
//! [`ConsistencyReport::budget_exhausted`]).
//!
//! [`Ambiguity`]: Inconsistency::Ambiguity

use crate::master::MasterData;
use cerfix_relation::{AttrId, Value};
use cerfix_rules::{ConstraintSet, EditingRule, RuleId, RuleSet};
use std::collections::HashMap;

/// A problem found by the consistency checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inconsistency {
    /// Two rules can assign different values to the same attribute of some
    /// input tuple: the rule set is inconsistent (order-dependent fixes).
    Conflict {
        /// First rule.
        rule_a: RuleId,
        /// Second rule (may equal `rule_a` when two *different keys* of
        /// the same rule can both match one tuple — impossible for
        /// equality joins, so in practice `rule_a != rule_b`).
        rule_b: RuleId,
        /// The contested input attribute.
        attr: AttrId,
        /// Value derived through `rule_a`.
        value_a: Value,
        /// Value derived through `rule_b`.
        value_b: Value,
        /// Join key of `rule_a` (values of its input LHS attrs).
        key_a: Vec<Value>,
        /// Join key of `rule_b`.
        key_b: Vec<Value>,
    },
    /// A join key of one rule matches master tuples that disagree on a fix
    /// value: not an inconsistency (the rule simply never fires on that
    /// key under certain semantics), but a master-data quality warning.
    Ambiguity {
        /// The rule affected.
        rule: RuleId,
        /// The ambiguous join key.
        key: Vec<Value>,
        /// Number of distinct fix-value combinations observed.
        distinct_values: usize,
    },
}

/// Result of a consistency check.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    /// Hard conflicts (rule set inconsistent if non-empty).
    pub conflicts: Vec<Inconsistency>,
    /// Soft warnings (ambiguous keys).
    pub ambiguities: Vec<Inconsistency>,
    /// Number of rule pairs examined.
    pub pairs_checked: usize,
    /// Number of key-pair constraint checks performed.
    pub key_pairs_checked: usize,
    /// True if a pair's key enumeration was cut short by the budget; the
    /// report is then sound but possibly incomplete.
    pub budget_exhausted: bool,
}

impl ConsistencyReport {
    /// True iff no hard conflicts were found.
    pub fn is_consistent(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Which input tuples the analysis quantifies over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyMode {
    /// **All** possible input tuples, as in the formal definition of [7].
    /// Strict mode can flag rule sets whose conflicts require an input
    /// whose validated evidence belongs to *no* real entity (e.g. the
    /// paper's φ3 `zip→city` vs φ9 `AC→city` conflict only on a tuple
    /// mixing one entity's zip with another entity's area code).
    #[default]
    Strict,
    /// Only input tuples whose validated evidence is jointly realizable
    /// by a single master entity — the demo's operating regime, where
    /// users validate attributes as *correct* for the customer at hand
    /// and master data is the registry of customers (the MDM assumption,
    /// paper §1). The nine paper rules are consistent in this mode.
    EntityCoherent,
}

/// Tuning knobs for [`check_consistency`].
#[derive(Debug, Clone)]
pub struct ConsistencyOptions {
    /// Quantification mode (see [`ConsistencyMode`]).
    pub mode: ConsistencyMode,
    /// Stop after this many conflicts (the first is enough to reject a
    /// rule set; more help diagnostics).
    pub max_conflicts: usize,
    /// Report at most this many ambiguity warnings.
    pub max_ambiguities: usize,
    /// Cap on key-pair checks per rule pair.
    pub pair_budget: usize,
}

impl Default for ConsistencyOptions {
    fn default() -> Self {
        ConsistencyOptions {
            mode: ConsistencyMode::Strict,
            max_conflicts: 16,
            max_ambiguities: 16,
            pair_budget: 4_000_000,
        }
    }
}

impl ConsistencyOptions {
    /// Default options in [`ConsistencyMode::EntityCoherent`].
    pub fn entity_coherent() -> ConsistencyOptions {
        ConsistencyOptions {
            mode: ConsistencyMode::EntityCoherent,
            ..Default::default()
        }
    }
}

/// Per-rule key table: distinct LHS keys with their agreed fix values
/// (`None` when master matches disagree — ambiguous key).
struct KeyTable {
    /// key (Xm projection) → agreed RHS values, or None if ambiguous.
    keys: HashMap<Vec<Value>, Option<Vec<Value>>>,
}

fn build_key_table(rule: &EditingRule, master: &MasterData) -> KeyTable {
    let master_lhs = rule.master_lhs();
    let master_rhs = rule.master_rhs();
    let mut keys: HashMap<Vec<Value>, Option<Vec<Value>>> = HashMap::new();
    for (_, s) in master.relation().iter() {
        let key = s.project(&master_lhs);
        if key.iter().any(Value::is_null) {
            continue; // null keys never match any input tuple
        }
        let values: Vec<Value> = master_rhs.iter().map(|&a| s.get(a).clone()).collect();
        let entry = keys.entry(key).or_insert_with(|| Some(values.clone()));
        if let Some(existing) = entry {
            if *existing != values {
                *entry = None;
            }
        }
    }
    // Null fix values are never applied: treat them as ambiguous keys.
    for v in keys.values_mut() {
        if v.as_ref()
            .is_some_and(|vals| vals.iter().any(Value::is_null))
        {
            *v = None;
        }
    }
    KeyTable { keys }
}

/// Check whether an input tuple can simultaneously carry `t[Xi] = key_a`
/// (plus `pattern_a`) and `t[Xj] = key_b` (plus `pattern_b`).
fn pins_satisfiable(
    rules: &RuleSet,
    rule_a: &EditingRule,
    key_a: &[Value],
    rule_b: &EditingRule,
    key_b: &[Value],
) -> bool {
    let mut constraints: HashMap<AttrId, ConstraintSet> = HashMap::new();
    for (&(t_attr, _), v) in rule_a.lhs().iter().zip(key_a.iter()) {
        constraints.entry(t_attr).or_default().add_eq(v.clone());
    }
    for (&(t_attr, _), v) in rule_b.lhs().iter().zip(key_b.iter()) {
        constraints.entry(t_attr).or_default().add_eq(v.clone());
    }
    for cell in rule_a
        .pattern()
        .cells()
        .iter()
        .chain(rule_b.pattern().cells())
    {
        constraints.entry(cell.attr).or_default().add_op(&cell.op);
    }
    let schema = rules.input_schema();
    constraints.iter().all(|(&attr, cs)| {
        let dtype = schema
            .attribute(attr)
            .expect("validated rule attr")
            .data_type();
        cs.is_satisfiable(dtype)
    })
}

/// Run the consistency analysis over every rule pair.
pub fn check_consistency(
    rules: &RuleSet,
    master: &MasterData,
    options: &ConsistencyOptions,
) -> ConsistencyReport {
    let mut report = ConsistencyReport::default();
    let rule_list: Vec<(RuleId, &EditingRule)> = rules.iter().collect();

    // Key tables once per rule.
    let tables: HashMap<RuleId, KeyTable> = rule_list
        .iter()
        .map(|&(id, r)| (id, build_key_table(r, master)))
        .collect();

    // Ambiguity warnings.
    'amb: for &(id, _) in &rule_list {
        for (key, vals) in &tables[&id].keys {
            if vals.is_none() {
                if report.ambiguities.len() >= options.max_ambiguities {
                    break 'amb;
                }
                report.ambiguities.push(Inconsistency::Ambiguity {
                    rule: id,
                    key: key.clone(),
                    distinct_values: 2, // at least two observed
                });
            }
        }
    }

    // Pairwise conflicts. Key and probe buffers are reused across every
    // row/key pair: values are `Arc`-cheap to clone, but the per-pair
    // vector allocations were not.
    let mut key_a_buf: Vec<Value> = Vec::new();
    let mut key_b_buf: Vec<Value> = Vec::new();
    let mut probe_buf: Vec<Value> = Vec::new();
    for (ia, &(id_a, rule_a)) in rule_list.iter().enumerate() {
        for &(id_b, rule_b) in rule_list.iter().skip(ia + 1) {
            // Shared target attributes.
            let shared_targets: Vec<(usize, usize, AttrId)> = rule_a
                .input_rhs()
                .iter()
                .enumerate()
                .filter_map(|(pa, &b)| {
                    rule_b
                        .input_rhs()
                        .iter()
                        .position(|&b2| b2 == b)
                        .map(|pb| (pa, pb, b))
                })
                .collect();
            if shared_targets.is_empty() {
                continue;
            }
            report.pairs_checked += 1;

            if options.mode == ConsistencyMode::EntityCoherent {
                // Quantify over evidence realizable by one master entity:
                // both keys projected from the same master row.
                let lhs_a = rule_a.master_lhs();
                let lhs_b = rule_b.master_lhs();
                'rows: for (_, s) in master.relation().iter() {
                    if report.key_pairs_checked >= options.pair_budget {
                        report.budget_exhausted = true;
                        break 'rows;
                    }
                    // Borrow first: null checks need no clones at all.
                    if lhs_a
                        .iter()
                        .chain(lhs_b.iter())
                        .any(|&a| s.get(a).is_null())
                    {
                        continue;
                    }
                    key_a_buf.clear();
                    key_a_buf.extend(lhs_a.iter().map(|&a| s.get(a).clone()));
                    key_b_buf.clear();
                    key_b_buf.extend(lhs_b.iter().map(|&a| s.get(a).clone()));
                    let (Some(Some(vals_a)), Some(Some(vals_b))) = (
                        tables[&id_a].keys.get(key_a_buf.as_slice()),
                        tables[&id_b].keys.get(key_b_buf.as_slice()),
                    ) else {
                        continue; // ambiguous or absent key: rule never fires
                    };
                    report.key_pairs_checked += 1;
                    if !shared_targets
                        .iter()
                        .any(|&(pa, pb, _)| vals_a[pa] != vals_b[pb])
                    {
                        continue;
                    }
                    if pins_satisfiable(rules, rule_a, &key_a_buf, rule_b, &key_b_buf) {
                        for &(pa, pb, attr) in &shared_targets {
                            if vals_a[pa] == vals_b[pb] {
                                continue;
                            }
                            report.conflicts.push(Inconsistency::Conflict {
                                rule_a: id_a,
                                rule_b: id_b,
                                attr,
                                value_a: vals_a[pa].clone(),
                                value_b: vals_b[pb].clone(),
                                key_a: key_a_buf.clone(),
                                key_b: key_b_buf.clone(),
                            });
                            if report.conflicts.len() >= options.max_conflicts {
                                return report;
                            }
                        }
                    }
                }
                continue;
            }

            // Strict mode: hash-join keys of rule_b on the shared input LHS attrs.
            let shared_lhs: Vec<(usize, usize)> = rule_a
                .input_lhs()
                .iter()
                .enumerate()
                .filter_map(|(pa, &x)| {
                    rule_b
                        .input_lhs()
                        .iter()
                        .position(|&x2| x2 == x)
                        .map(|pb| (pa, pb))
                })
                .collect();
            #[allow(clippy::type_complexity)]
            let mut b_buckets: HashMap<Vec<Value>, Vec<(&Vec<Value>, &Vec<Value>)>> =
                HashMap::new();
            for (key_b, vals_b) in &tables[&id_b].keys {
                let Some(vals_b) = vals_b else { continue };
                let probe: Vec<Value> = shared_lhs
                    .iter()
                    .map(|&(_, pb)| key_b[pb].clone())
                    .collect();
                b_buckets.entry(probe).or_default().push((key_b, vals_b));
            }

            'keys: for (key_a, vals_a) in &tables[&id_a].keys {
                let Some(vals_a) = vals_a else { continue };
                probe_buf.clear();
                probe_buf.extend(shared_lhs.iter().map(|&(pa, _)| key_a[pa].clone()));
                let Some(bucket) = b_buckets.get(probe_buf.as_slice()) else {
                    continue;
                };
                for &(key_b, vals_b) in bucket {
                    if report.key_pairs_checked >= options.pair_budget {
                        report.budget_exhausted = true;
                        break 'keys;
                    }
                    report.key_pairs_checked += 1;
                    // Any shared target with differing derived values?
                    if !shared_targets
                        .iter()
                        .any(|&(pa, pb, _)| vals_a[pa] != vals_b[pb])
                    {
                        continue;
                    }
                    if pins_satisfiable(rules, rule_a, key_a, rule_b, key_b) {
                        for &(pa, pb, attr) in &shared_targets {
                            if vals_a[pa] == vals_b[pb] {
                                continue;
                            }
                            report.conflicts.push(Inconsistency::Conflict {
                                rule_a: id_a,
                                rule_b: id_b,
                                attr,
                                value_a: vals_a[pa].clone(),
                                value_b: vals_b[pb].clone(),
                                key_a: key_a.clone(),
                                key_b: key_b.clone(),
                            });
                            if report.conflicts.len() >= options.max_conflicts {
                                return report;
                            }
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};
    use cerfix_rules::{PatternTuple, RuleSet};

    fn schemas() -> (SchemaRef, SchemaRef) {
        (
            Schema::of_strings("in", ["AC", "zip", "city", "type"]).unwrap(),
            Schema::of_strings("m", ["AC", "zip", "city"]).unwrap(),
        )
    }

    fn rule(
        name: &str,
        input: &SchemaRef,
        master: &SchemaRef,
        lhs: &str,
        rhs: &str,
        pattern: PatternTuple,
    ) -> EditingRule {
        EditingRule::new(
            name,
            input,
            master,
            vec![(input.attr_id(lhs).unwrap(), master.attr_id(lhs).unwrap())],
            vec![(input.attr_id(rhs).unwrap(), master.attr_id(rhs).unwrap())],
            pattern,
        )
        .unwrap()
    }

    #[test]
    fn consistent_rules_pass() {
        // zip→city and AC→city over master data where every key derives
        // the same city, so no cross pairing can disagree.
        let (input, ms) = schemas();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi"])
                .row_strs(["141", "EH9", "Edi"])
                .build()
                .unwrap(),
        );
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        let report = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert!(report.is_consistent(), "{:?}", report.conflicts);
        assert_eq!(report.pairs_checked, 1);
        assert!(report.ambiguities.is_empty());
        assert!(!report.budget_exhausted);
    }

    #[test]
    fn conflicting_rules_detected() {
        // Master where zip EH8 ↦ city Edi but AC 020 ↦ city Ldn: a tuple
        // with (AC=020, zip=EH8) gets different cities depending on rule
        // order ⇒ conflict.
        let (input, ms) = schemas();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi"])
                .row_strs(["020", "SW1", "Ldn"])
                .build()
                .unwrap(),
        );
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        // This master is the same as the consistent one — the conflict
        // exists exactly because zip=EH8 pins Edi while AC=020 pins Ldn
        // and nothing stops a tuple having both.
        let report = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert!(!report.is_consistent());
        let c = &report.conflicts[0];
        match c {
            Inconsistency::Conflict {
                attr,
                value_a,
                value_b,
                ..
            } => {
                assert_eq!(*attr, input.attr_id("city").unwrap());
                let pair = [value_a.clone(), value_b.clone()];
                assert!(pair.contains(&Value::str("Edi")) && pair.contains(&Value::str("Ldn")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn consistent_rules_pass_when_master_is_functional() {
        // If every AC maps to the same city as every zip it co-occurs
        // with, no cross assignment conflicts… but with multiple rows a
        // cross pairing (zip from row 1, AC from row 2) conflicts unless
        // the derived values coincide. Single-row master: trivially
        // consistent.
        let (input, ms) = schemas();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi"])
                .build()
                .unwrap(),
        );
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        let report = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert!(report.is_consistent());
    }

    #[test]
    fn patterns_can_rescue_consistency() {
        // Same conflicting master as above, but the AC rule is gated on
        // type='1' and the zip rule on type='2': no tuple satisfies both
        // patterns, so the pair is consistent.
        let (input, ms) = schemas();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi"])
                .row_strs(["020", "SW1", "Ldn"])
                .build()
                .unwrap(),
        );
        let ty = input.attr_id("type").unwrap();
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty().with_eq(ty, Value::str("2")),
            ))
            .unwrap();
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty().with_eq(ty, Value::str("1")),
            ))
            .unwrap();
        let report = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert!(report.is_consistent(), "{:?}", report.conflicts);
    }

    #[test]
    fn negation_pattern_interacts_with_pins() {
        // φ9-style rule AC→city with pattern AC≠'020', against zip→city.
        // The only conflicting pin requires AC=020 — excluded by the
        // pattern, so consistent.
        let (input, ms) = schemas();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi"])
                .row_strs(["020", "SW1", "Ldn"])
                .build()
                .unwrap(),
        );
        let ac = input.attr_id("AC").unwrap();
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty().with_ne(ac, Value::str("020")),
            ))
            .unwrap();
        // Conflicts would need (zip=EH8 ⇒ Edi) vs (AC=020 ⇒ Ldn), but the
        // pattern kills AC=020; (zip=SW1 ⇒ Ldn) vs (AC=131 ⇒ Edi) remains!
        let report = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert!(!report.is_consistent(), "SW1+131 pairing still conflicts");
        // Now also gate the zip rule on AC='020' — every surviving pairing
        // is then unsatisfiable (zip rule needs AC=020, AC rule forbids it;
        // AC=020 key of the AC rule is pattern-dead too).
        let mut rules2 = RuleSet::new(input.clone(), ms.clone());
        rules2
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty().with_eq(ac, Value::str("020")),
            ))
            .unwrap();
        rules2
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty().with_ne(ac, Value::str("020")),
            ))
            .unwrap();
        let report2 = check_consistency(&rules2, &master, &ConsistencyOptions::default());
        // zip rule pins AC=020 via pattern; AC rule forbids 020 via
        // pattern and pins AC=key. For key=131: {AC=020} ∧ {AC=131} unsat.
        // For key=020: pattern ≠020 unsat. So consistent.
        assert!(report2.is_consistent(), "{:?}", report2.conflicts);
    }

    #[test]
    fn ambiguous_keys_warn_but_do_not_conflict() {
        // AC 131 maps to two cities in master: the AC→city rule never
        // fires on 131 (certain semantics), so only a warning results.
        let (input, ms) = schemas();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi"])
                .row_strs(["131", "EH9", "Leith"])
                .build()
                .unwrap(),
        );
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        let report = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert!(report.is_consistent());
        assert_eq!(report.ambiguities.len(), 1);
        match &report.ambiguities[0] {
            Inconsistency::Ambiguity { key, .. } => assert_eq!(key[0], Value::str("131")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_rhs_different_semantics_no_shared_target_no_check() {
        let (input, ms) = schemas();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi"])
                .build()
                .unwrap(),
        );
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "zip_ac",
                &input,
                &ms,
                "zip",
                "AC",
                PatternTuple::empty(),
            ))
            .unwrap();
        let report = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert_eq!(
            report.pairs_checked, 0,
            "disjoint targets are never in conflict"
        );
        assert!(report.is_consistent());
    }

    #[test]
    fn shared_lhs_attr_prunes_cross_pairs() {
        // Both rules key on zip: keys must be equal to co-occur, and equal
        // keys derive equal values, so no conflicts — and the hash join
        // must examine only diagonal pairs.
        let (input, ms) = schemas();
        let mut b = RelationBuilder::new(ms.clone());
        for i in 0..50 {
            b = b.row_strs([format!("ac{i}"), format!("z{i}"), format!("c{i}")]);
        }
        let master = MasterData::new(b.build().unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city_a",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "zip_city_b",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        let report = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert!(report.is_consistent());
        assert_eq!(report.key_pairs_checked, 50, "diagonal only, not 50×50");
    }

    #[test]
    fn budget_caps_work() {
        // Two rules with disjoint LHS ⇒ full cross product of keys; a tiny
        // budget must stop early and flag it.
        let (input, ms) = schemas();
        let mut b = RelationBuilder::new(ms.clone());
        for i in 0..30 {
            // All same city ⇒ no conflicts, but still lots of pairs.
            b = b.row_strs([format!("ac{i}"), format!("z{i}"), "Edi".to_string()]);
        }
        let master = MasterData::new(b.build().unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        let opts = ConsistencyOptions {
            pair_budget: 10,
            ..Default::default()
        };
        let report = check_consistency(&rules, &master, &opts);
        assert!(report.budget_exhausted);
        assert_eq!(report.key_pairs_checked, 10);
    }

    #[test]
    fn entity_coherent_mode_accepts_the_paper_rules_shape() {
        // φ3-style zip→city and φ9-style AC→city over a two-city master:
        // strictly inconsistent (mixing one entity's zip with another's
        // AC), but consistent over entity-coherent inputs because each
        // master row's zip and AC derive the same city.
        let (input, ms) = schemas();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi"])
                .row_strs(["020", "SW1", "Ldn"])
                .build()
                .unwrap(),
        );
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        let strict = check_consistency(&rules, &master, &ConsistencyOptions::default());
        assert!(!strict.is_consistent());
        let coherent = check_consistency(&rules, &master, &ConsistencyOptions::entity_coherent());
        assert!(coherent.is_consistent(), "{:?}", coherent.conflicts);
        assert_eq!(coherent.key_pairs_checked, 2, "one check per master row");
    }

    #[test]
    fn entity_coherent_catches_intra_row_disagreement() {
        // Two rules fix the same input attribute from *different* master
        // columns: `city` from `city` (keyed on zip) and `city` from
        // `mail_city` (keyed on AC). A master row whose own two columns
        // disagree yields an entity-coherent conflict - a single real
        // entity's validated evidence derives two different fixes.
        let input = Schema::of_strings("in", ["AC", "zip", "city", "type"]).unwrap();
        let ms = Schema::of_strings("m", ["AC", "zip", "city", "mail_city"]).unwrap();
        let pair = |l: &str, r: &str| (input.attr_id(l).unwrap(), ms.attr_id(r).unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "zip_city",
                    &input,
                    &ms,
                    vec![pair("zip", "zip")],
                    vec![pair("city", "city")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        rules
            .add(
                EditingRule::new(
                    "ac_mailcity",
                    &input,
                    &ms,
                    vec![pair("AC", "AC")],
                    vec![pair("city", "mail_city")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        // Row 0 is internally consistent; row 1's residential and mail
        // cities disagree.
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi", "Edi"])
                .row_strs(["141", "G12", "Gla", "Paisley"])
                .build()
                .unwrap(),
        );
        let coherent = check_consistency(&rules, &master, &ConsistencyOptions::entity_coherent());
        assert!(!coherent.is_consistent());
        match &coherent.conflicts[0] {
            Inconsistency::Conflict {
                value_a, value_b, ..
            } => {
                let pair = [value_a.clone(), value_b.clone()];
                assert!(pair.contains(&Value::str("Gla")) && pair.contains(&Value::str("Paisley")));
            }
            other => panic!("{other:?}"),
        }
        // Ambiguous keys are skipped in this mode too: duplicating AC 141
        // with a different mail_city kills the AC rule on that key.
        let master2 = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "EH8", "Edi", "Edi"])
                .row_strs(["141", "G12", "Gla", "Paisley"])
                .row_strs(["141", "G13", "Gla", "Renfrew"])
                .build()
                .unwrap(),
        );
        let coherent2 = check_consistency(&rules, &master2, &ConsistencyOptions::entity_coherent());
        assert!(coherent2.is_consistent(), "{:?}", coherent2.conflicts);
        assert!(!coherent2.ambiguities.is_empty());
    }

    #[test]
    fn max_conflicts_truncates() {
        let (input, ms) = schemas();
        let mut b = RelationBuilder::new(ms.clone());
        for i in 0..10 {
            b = b.row_strs([format!("ac{i}"), format!("z{i}"), format!("city{i}")]);
        }
        let master = MasterData::new(b.build().unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(rule(
                "zip_city",
                &input,
                &ms,
                "zip",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        rules
            .add(rule(
                "ac_city",
                &input,
                &ms,
                "AC",
                "city",
                PatternTuple::empty(),
            ))
            .unwrap();
        let opts = ConsistencyOptions {
            max_conflicts: 3,
            ..Default::default()
        };
        let report = check_consistency(&rules, &master, &opts);
        assert_eq!(report.conflicts.len(), 3);
    }
}
