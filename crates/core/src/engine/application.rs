//! Single-rule application: the atomic step of the correcting process.
//!
//! Applying `φ: ((X, Xm) → (B, Bm), tp)` to a tuple `t` with validated set
//! `V` (paper §2, data monitor step 2):
//!
//! 1. the evidence `X ∪ Xp` must be validated (`⊆ V`) — only assured
//!    attributes may justify a fix;
//! 2. `t[Xp]` must match `tp`;
//! 3. all master tuples with `s[Xm] = t[X]` must agree on `s[Bm]`
//!    (otherwise the fix would not be *certain*);
//! 4. then `t[B] := s[Bm]` and `B` joins `V`.
//!
//! A fired rule never overwrites a validated cell: if `B ∈ V` already and
//! the derived value differs, the rule set is inconsistent and the engine
//! surfaces [`CerfixError::ValidatedCellConflict`] instead of silently
//! producing an order-dependent result.

use crate::error::{CerfixError, Result};
use crate::master::{CertainLookup, MasterData};
use cerfix_relation::{AttrId, AttrSet, RowId, Tuple, Value};
use cerfix_rules::{EditingRule, RuleId};

/// One cell changed by a rule application, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFix {
    /// The fixed input attribute.
    pub attr: AttrId,
    /// The value before the fix.
    pub old: Value,
    /// The value copied from master data.
    pub new: Value,
    /// The rule that produced the fix.
    pub rule: RuleId,
    /// The master row the value came from.
    pub master_row: RowId,
}

/// Outcome of attempting one rule on one tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Every RHS attribute is already validated; nothing to do.
    AlreadyCovered,
    /// The rule's evidence (`X ∪ Xp`) is not fully validated.
    NotEligible,
    /// The (validated) pattern attributes do not satisfy `tp`.
    PatternMismatch,
    /// No master tuple matches `t[X]`.
    NoMatch,
    /// Matching master tuples disagree on the fix values: no certain fix
    /// through this rule for this tuple.
    Ambiguous {
        /// How many master tuples matched.
        matches: usize,
    },
    /// The rule fired: cells changed (possibly none, if the tuple already
    /// carried the correct values) and attributes newly validated.
    Applied {
        /// Cells whose value actually changed.
        fixes: Vec<CellFix>,
        /// RHS attributes that became validated (changed or confirmed).
        newly_validated: Vec<AttrId>,
    },
}

impl ApplyOutcome {
    /// True iff the application validated at least one new attribute.
    pub fn made_progress(&self) -> bool {
        matches!(self, ApplyOutcome::Applied { newly_validated, .. } if !newly_validated.is_empty())
    }
}

/// Copy agreed fix values onto `tuple` under certain-application
/// semantics: validated cells are immutable (agreement confirms,
/// disagreement is a [`CerfixError::ValidatedCellConflict`]), changed
/// cells are recorded as [`CellFix`]es with `witness` provenance, and
/// every non-validated RHS attribute joins `validated`. `pairs` yields
/// `(B, s[Bm])` position-wise. Shared by both engines — the pass-based
/// [`apply_rule`] and the compiled delta engine — so the firing
/// semantics cannot drift between the oracle and the production path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_fix_values<'v>(
    rule_id: RuleId,
    rule_name: &str,
    witness: RowId,
    pairs: impl Iterator<Item = (AttrId, &'v Value)>,
    tuple: &mut Tuple,
    validated: &mut AttrSet,
    fixes: &mut Vec<CellFix>,
    newly_validated: &mut Vec<AttrId>,
) -> Result<()> {
    for (b, value) in pairs {
        if validated.contains(b) {
            // Validated cells are immutable. Agreement is fine (the rule
            // confirms what is known); disagreement is an inconsistency.
            if tuple.get(b) != value {
                let schema = tuple.schema().clone();
                return Err(CerfixError::ValidatedCellConflict {
                    rule: rule_name.into(),
                    attribute: schema.attr_name(b).into(),
                    current: tuple.get(b).to_string(),
                    incoming: value.to_string(),
                });
            }
            continue;
        }
        let old = tuple.get(b).clone();
        if old != *value {
            tuple.set(b, value.clone())?;
            fixes.push(CellFix {
                attr: b,
                old,
                new: value.clone(),
                rule: rule_id,
                master_row: witness,
            });
        }
        validated.insert(b);
        newly_validated.push(b);
    }
    Ok(())
}

/// Attempt to apply `rule` (with id `rule_id`) to `tuple` under the
/// validated set `validated`, mutating both on success.
pub fn apply_rule(
    rule_id: RuleId,
    rule: &EditingRule,
    master: &MasterData,
    tuple: &mut Tuple,
    validated: &mut AttrSet,
) -> Result<ApplyOutcome> {
    if rule.input_rhs().iter().all(|&b| validated.contains(b)) {
        return Ok(ApplyOutcome::AlreadyCovered);
    }
    if !rule.evidence_attrs().iter().all(|&a| validated.contains(a)) {
        return Ok(ApplyOutcome::NotEligible);
    }
    if !rule.pattern().matches(tuple) {
        return Ok(ApplyOutcome::PatternMismatch);
    }
    let lookup = master.certain_lookup(rule, tuple);
    let (values, witness) = match lookup {
        CertainLookup::NoMatch => return Ok(ApplyOutcome::NoMatch),
        CertainLookup::Ambiguous { matches } => return Ok(ApplyOutcome::Ambiguous { matches }),
        CertainLookup::Unique {
            values, witness, ..
        } => (values, witness),
    };
    let mut fixes = Vec::new();
    let mut newly_validated = Vec::new();
    apply_fix_values(
        rule_id,
        rule.name(),
        witness,
        rule.rhs().iter().map(|&(b, _)| b).zip(values.iter()),
        tuple,
        validated,
        &mut fixes,
        &mut newly_validated,
    )?;
    Ok(ApplyOutcome::Applied {
        fixes,
        newly_validated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};
    use cerfix_rules::PatternTuple;

    fn fixture() -> (SchemaRef, SchemaRef, MasterData) {
        let input = Schema::of_strings("customer", ["AC", "phn", "city", "zip", "type"]).unwrap();
        let master = Schema::of_strings("master", ["AC", "Mphn", "city", "zip"]).unwrap();
        let md = MasterData::new(
            RelationBuilder::new(master.clone())
                .row_strs(["131", "079172485", "Edi", "EH8 4AH"])
                .row_strs(["020", "079555555", "Ldn", "SW1A 1AA"])
                .build()
                .unwrap(),
        );
        (input, master, md)
    }

    fn zip_rule(input: &SchemaRef, master: &SchemaRef) -> EditingRule {
        // zip → (AC, city), the φ1+φ3 combination.
        EditingRule::new(
            "zip_fixes",
            input,
            master,
            vec![(
                input.attr_id("zip").unwrap(),
                master.attr_id("zip").unwrap(),
            )],
            vec![
                (input.attr_id("AC").unwrap(), master.attr_id("AC").unwrap()),
                (
                    input.attr_id("city").unwrap(),
                    master.attr_id("city").unwrap(),
                ),
            ],
            PatternTuple::empty(),
        )
        .unwrap()
    }

    #[test]
    fn example2_certain_fix() {
        // Example 2 of the paper: with zip validated, t[AC] is corrected
        // 020 → 131 from the master tuple.
        let (input, ms, md) = fixture();
        let rule = zip_rule(&input, &ms);
        let mut t = Tuple::of_strings(input.clone(), ["020", "p", "Edi", "EH8 4AH", "2"]).unwrap();
        let mut v: AttrSet = [input.attr_id("zip").unwrap()].into();
        let out = apply_rule(7, &rule, &md, &mut t, &mut v).unwrap();
        match out {
            ApplyOutcome::Applied {
                fixes,
                newly_validated,
            } => {
                assert_eq!(fixes.len(), 1, "AC changed; city already correct");
                assert_eq!(fixes[0].attr, input.attr_id("AC").unwrap());
                assert_eq!(fixes[0].old, Value::str("020"));
                assert_eq!(fixes[0].new, Value::str("131"));
                assert_eq!(fixes[0].rule, 7);
                assert_eq!(fixes[0].master_row, 0);
                assert_eq!(newly_validated.len(), 2, "both AC and city validated");
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        assert_eq!(t.get_by_name("AC").unwrap(), &Value::str("131"));
        assert!(v.contains(input.attr_id("AC").unwrap()));
        assert!(v.contains(input.attr_id("city").unwrap()));
    }

    #[test]
    fn not_eligible_without_evidence() {
        let (input, ms, md) = fixture();
        let rule = zip_rule(&input, &ms);
        let mut t = Tuple::of_strings(input.clone(), ["020", "p", "Edi", "EH8 4AH", "2"]).unwrap();
        let mut v = AttrSet::new();
        assert_eq!(
            apply_rule(0, &rule, &md, &mut t, &mut v).unwrap(),
            ApplyOutcome::NotEligible
        );
        assert!(v.is_empty(), "no side effects");
        assert_eq!(t.get_by_name("AC").unwrap(), &Value::str("020"));
    }

    #[test]
    fn pattern_mismatch_blocks() {
        let (input, ms, md) = fixture();
        let ty = input.attr_id("type").unwrap();
        let rule = EditingRule::new(
            "mobile_only",
            &input,
            &ms,
            vec![(input.attr_id("phn").unwrap(), ms.attr_id("Mphn").unwrap())],
            vec![(input.attr_id("AC").unwrap(), ms.attr_id("AC").unwrap())],
            PatternTuple::empty().with_eq(ty, Value::str("2")),
        )
        .unwrap();
        let mut t = Tuple::of_strings(input.clone(), ["?", "079172485", "c", "z", "1"]).unwrap();
        let mut v: AttrSet = [input.attr_id("phn").unwrap(), ty].into();
        assert_eq!(
            apply_rule(0, &rule, &md, &mut t, &mut v).unwrap(),
            ApplyOutcome::PatternMismatch
        );
    }

    #[test]
    fn no_match_and_ambiguous() {
        let (input, ms, _) = fixture();
        // Master where AC 131 maps to two different cities.
        let md = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "a", "Edi", "z1"])
                .row_strs(["131", "b", "Leith", "z2"])
                .build()
                .unwrap(),
        );
        let rule = EditingRule::new(
            "ac_city",
            &input,
            &ms,
            vec![(input.attr_id("AC").unwrap(), ms.attr_id("AC").unwrap())],
            vec![(input.attr_id("city").unwrap(), ms.attr_id("city").unwrap())],
            PatternTuple::empty(),
        )
        .unwrap();
        let ac = input.attr_id("AC").unwrap();
        let mut t = Tuple::of_strings(input.clone(), ["999", "p", "?", "z", "1"]).unwrap();
        let mut v: AttrSet = [ac].into();
        assert_eq!(
            apply_rule(0, &rule, &md, &mut t, &mut v).unwrap(),
            ApplyOutcome::NoMatch
        );
        let mut t2 = Tuple::of_strings(input.clone(), ["131", "p", "?", "z", "1"]).unwrap();
        let mut v2: AttrSet = [ac].into();
        assert_eq!(
            apply_rule(0, &rule, &md, &mut t2, &mut v2).unwrap(),
            ApplyOutcome::Ambiguous { matches: 2 }
        );
        assert_eq!(
            t2.get_by_name("city").unwrap(),
            &Value::str("?"),
            "no partial writes"
        );
    }

    #[test]
    fn already_covered_short_circuits() {
        let (input, ms, md) = fixture();
        let rule = zip_rule(&input, &ms);
        let mut t = Tuple::of_strings(input.clone(), ["131", "p", "Edi", "EH8 4AH", "2"]).unwrap();
        let mut v: AttrSet = [
            input.attr_id("zip").unwrap(),
            input.attr_id("AC").unwrap(),
            input.attr_id("city").unwrap(),
        ]
        .into();
        assert_eq!(
            apply_rule(0, &rule, &md, &mut t, &mut v).unwrap(),
            ApplyOutcome::AlreadyCovered
        );
    }

    #[test]
    fn confirming_correct_value_still_validates() {
        // The tuple already has the right city: no CellFix, but city
        // becomes validated — exactly how CerFix "expands the set of
        // attributes validated" (paper §3 step 2).
        let (input, ms, md) = fixture();
        let rule = zip_rule(&input, &ms);
        let mut t = Tuple::of_strings(input.clone(), ["131", "p", "Edi", "EH8 4AH", "2"]).unwrap();
        let mut v: AttrSet = [input.attr_id("zip").unwrap()].into();
        match apply_rule(0, &rule, &md, &mut t, &mut v).unwrap() {
            ApplyOutcome::Applied {
                fixes,
                newly_validated,
            } => {
                assert!(fixes.is_empty());
                assert_eq!(newly_validated.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn validated_cells_never_overwritten() {
        let (input, ms, md) = fixture();
        let rule = zip_rule(&input, &ms);
        // User validated city as "Edi"; rule would derive "Edi" too — fine.
        let mut t = Tuple::of_strings(input.clone(), ["020", "p", "Edi", "EH8 4AH", "2"]).unwrap();
        let city = input.attr_id("city").unwrap();
        let mut v: AttrSet = [input.attr_id("zip").unwrap(), city].into();
        let out = apply_rule(0, &rule, &md, &mut t, &mut v).unwrap();
        assert!(out.made_progress(), "AC still gets validated");

        // But a *conflicting* validated value is an inconsistency error.
        let mut t2 =
            Tuple::of_strings(input.clone(), ["020", "p", "Leith", "EH8 4AH", "2"]).unwrap();
        let mut v2: AttrSet = [input.attr_id("zip").unwrap(), city].into();
        let err = apply_rule(0, &rule, &md, &mut t2, &mut v2).unwrap_err();
        assert!(matches!(err, CerfixError::ValidatedCellConflict { .. }));
    }

    #[test]
    fn made_progress_flag() {
        assert!(!ApplyOutcome::NotEligible.made_progress());
        assert!(!ApplyOutcome::Applied {
            fixes: vec![],
            newly_validated: vec![]
        }
        .made_progress());
        assert!(ApplyOutcome::Applied {
            fixes: vec![],
            newly_validated: vec![3]
        }
        .made_progress());
    }
}
