//! The delta-driven correcting process.
//!
//! The pass-based reference engine ([`run_fixpoint`]) sweeps the whole
//! rule set until quiescence: O(passes × |rules|) attempts, most of
//! which re-discover that nothing changed. This engine exploits the two
//! monotonicity facts that make re-attempts pointless:
//!
//! 1. **Validated evidence is frozen.** Once a rule's full evidence
//!    `X ∪ Xp` is validated, its pattern verdict and its master lookup
//!    can never change for the rest of the run — whatever the first
//!    attempt concludes (fire, no match, ambiguous, pattern dead) is
//!    final. So every rule needs **at most one attempt**, taken at the
//!    moment its evidence completes.
//! 2. **Eligibility only ever grows**, and it grows exactly when an
//!    attribute becomes validated — so the plan's per-attribute watch
//!    lists identify precisely which rules a firing can unblock.
//!
//! The worklist is swept in ascending rule order with a wrap-around
//! cursor, which reproduces the pass-based engine's *effectful* attempt
//! sequence exactly (a rule unblocked by an earlier-positioned firing
//! runs in the same sweep; one unblocked by a later-positioned firing
//! waits for the next sweep, just as the pass loop would). Identical
//! attempt order means identical fixes, identical fix *order*, identical
//! validated sets, and identical errors — the equivalence property test
//! in `tests/engine_equivalence.rs` asserts all four — while total work
//! drops to O(rule firings + |rules|).
//!
//! On the allocation side, the plan supplies resolved index snapshots
//! and flat key layouts, so the per-attempt path clones `Arc`'d values
//! into two reused buffers and allocates nothing once they are warm.
//!
//! [`run_fixpoint`]: crate::engine::run_fixpoint

use crate::engine::application::apply_fix_values;
use crate::engine::compile::CompiledRules;
use crate::engine::fixpoint::FixpointReport;
use crate::error::Result;
use crate::master::MasterData;
use cerfix_relation::{AttrSet, RowId, Tuple, Value};

/// Run the correcting process on `tuple` using a compiled plan.
///
/// Semantically identical to [`run_fixpoint`](crate::engine::run_fixpoint)
/// over the plan's source rule set (equivalence-tested), with work
/// O(firings + |rules|) instead of O(passes × |rules|). `passes` in the
/// returned report counts worklist sweeps (≥ 1, never more than the
/// pass-based engine's pass count).
pub fn run_fixpoint_delta(
    plan: &CompiledRules,
    master: &MasterData,
    tuple: &mut Tuple,
    validated: &mut AttrSet,
) -> Result<FixpointReport> {
    debug_assert_eq!(
        plan.master_generation(),
        master.generation(),
        "compiled plan is stale: master data was appended to after compile"
    );
    debug_assert_eq!(plan.input_schema().arity(), tuple.arity());
    let mut report = FixpointReport {
        passes: 1,
        ..Default::default()
    };
    report.stats.fixpoint_runs = 1;

    // Rule positions awaiting their single attempt, and positions ever
    // enqueued (an attempted rule is never re-attempted).
    let mut pending = AttrSet::new();
    let mut enqueued = AttrSet::new();
    for (pos, rule) in plan.rules.iter().enumerate() {
        if rule.evidence.is_subset(validated) {
            pending.insert(pos);
            enqueued.insert(pos);
        }
    }

    // Reused buffers: the projected join key and (scan fallback only)
    // the matching row ids. Nothing else on the attempt path allocates.
    let mut key_buf: Vec<Value> = Vec::new();
    let mut scan_rows: Vec<RowId> = Vec::new();

    let mut cursor = 0usize;
    loop {
        let Some(pos) = pending.next_at_or_after(cursor) else {
            if pending.is_empty() {
                break;
            }
            // Rules enqueued behind the cursor: start the next sweep,
            // mirroring the pass-based engine's next pass.
            cursor = 0;
            report.passes += 1;
            continue;
        };
        pending.remove(pos);
        cursor = pos + 1;
        let rule = &plan.rules[pos];
        report.stats.rule_attempts += 1;

        // Another rule validated the whole RHS in the meantime: nothing
        // left to derive (the pass-based engine's AlreadyCovered).
        if rule.rhs_set.is_subset(validated) {
            continue;
        }
        // The pattern reads evidence cells only, and those are validated
        // and frozen: a mismatch now is permanent — the rule is dead.
        if !rule.pattern.matches(tuple) {
            continue;
        }

        // Certain lookup against the plan's index snapshot (or a scan on
        // the unindexed ablation arm).
        report.stats.master_lookups += 1;
        key_buf.clear();
        for &a in rule.input_lhs.iter() {
            key_buf.push(tuple.get(a).clone());
        }
        let rows: &[RowId] = match &rule.index {
            Some(index) => {
                report.stats.index_probes += 1;
                index.lookup(&key_buf)
            }
            None => {
                scan_rows.clear();
                master.for_each_matching_row(&rule.master_lhs, &key_buf, |id| scan_rows.push(id));
                &scan_rows
            }
        };
        // No match, disagreement, or a null fix value: with frozen
        // evidence the lookup can never improve — the rule is dead. The
        // agreement/null fold is shared with the pass-based path
        // (`MasterData::certain_witness`), so the semantics cannot drift.
        let (_, Some(witness)) = master.certain_witness(rows.iter().copied(), &rule.master_rhs)
        else {
            continue;
        };
        let first = master.tuple(witness).expect("index row in range");

        // Fire: copy the agreed master values and expand the validated
        // set through the application routine shared with `apply_rule`,
        // then wake exactly the rules watching a newly validated
        // attribute.
        let before = report.newly_validated.len();
        apply_fix_values(
            rule.id,
            &rule.name,
            witness,
            rule.input_rhs
                .iter()
                .copied()
                .zip(rule.master_rhs.iter().map(|&bm| first.get(bm))),
            tuple,
            validated,
            &mut report.fixes,
            &mut report.newly_validated,
        )?;
        if report.newly_validated.len() > before {
            report.rule_firings += 1;
        }
        for i in before..report.newly_validated.len() {
            let b = report.newly_validated[i];
            for &w in plan.watchers(b) {
                let w = w as usize;
                if !enqueued.contains(w) && plan.rules[w].evidence.is_subset(validated) {
                    enqueued.insert(w);
                    pending.insert(w);
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fixpoint;
    use crate::error::CerfixError;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};
    use cerfix_rules::{EditingRule, PatternTuple, RuleSet};

    /// A 3-stage chain added in *reverse* order, so the pass-based engine
    /// needs multiple passes and the delta engine's worklist has to wrap.
    fn reverse_chain() -> (SchemaRef, RuleSet, MasterData) {
        let input = Schema::of_strings("in", ["zip", "AC", "city", "str"]).unwrap();
        let ms = Schema::of_strings("m", ["zip", "AC", "city", "str"]).unwrap();
        let md = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["EH8", "131", "Edi", "Elm St"])
                .row_strs(["SW1", "020", "Ldn", "Oak Rd"])
                .build()
                .unwrap(),
        );
        let pair = |n: &str| (input.attr_id(n).unwrap(), ms.attr_id(n).unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        for (name, l, r) in [
            ("city_str", "city", "str"),
            ("ac_city", "AC", "city"),
            ("zip_ac", "zip", "AC"),
        ] {
            rules
                .add(
                    EditingRule::new(
                        name,
                        &input,
                        &ms,
                        vec![pair(l)],
                        vec![pair(r)],
                        PatternTuple::empty(),
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        (input, rules, md)
    }

    #[test]
    fn matches_pass_based_engine_on_reverse_chain() {
        let (input, rules, md) = reverse_chain();
        let plan = CompiledRules::compile(&rules, &md);
        let seed: AttrSet = [input.attr_id("zip").unwrap()].into();

        let mut t_ref = Tuple::of_strings(input.clone(), ["EH8", "x", "y", "z"]).unwrap();
        let mut v_ref = seed.clone();
        let ref_report = run_fixpoint(&rules, &md, &mut t_ref, &mut v_ref).unwrap();

        let mut t = Tuple::of_strings(input.clone(), ["EH8", "x", "y", "z"]).unwrap();
        let mut v = seed;
        let report = run_fixpoint_delta(&plan, &md, &mut t, &mut v).unwrap();

        assert_eq!(t, t_ref);
        assert_eq!(v, v_ref);
        assert_eq!(report.fixes, ref_report.fixes, "identical fixes, in order");
        assert_eq!(report.newly_validated, ref_report.newly_validated);
        assert_eq!(report.rule_firings, 3);
        // The whole point: strictly fewer attempts than passes × rules.
        assert!(
            report.stats.rule_attempts < ref_report.stats.rule_attempts,
            "delta {} vs pass-based {}",
            report.stats.rule_attempts,
            ref_report.stats.rule_attempts
        );
        assert_eq!(report.stats.rule_attempts, 3, "each rule attempted once");
        assert!(report.passes <= ref_report.passes);
    }

    #[test]
    fn dead_rules_are_attempted_once_and_dropped() {
        let (input, rules, md) = reverse_chain();
        let plan = CompiledRules::compile(&rules, &md);
        // zip absent from master: zip_ac is eligible but can never fire.
        let mut t = Tuple::of_strings(input.clone(), ["ZZ9", "x", "y", "z"]).unwrap();
        let mut v: AttrSet = [input.attr_id("zip").unwrap()].into();
        let report = run_fixpoint_delta(&plan, &md, &mut t, &mut v).unwrap();
        assert_eq!(v.len(), 1);
        assert!(report.fixes.is_empty());
        assert_eq!(report.stats.rule_attempts, 1, "only the eligible rule");
        assert_eq!(report.stats.master_lookups, 1);
    }

    #[test]
    fn nothing_eligible_attempts_nothing() {
        let (input, rules, md) = reverse_chain();
        let plan = CompiledRules::compile(&rules, &md);
        let mut t = Tuple::of_strings(input.clone(), ["EH8", "x", "y", "z"]).unwrap();
        let mut v = AttrSet::new();
        let report = run_fixpoint_delta(&plan, &md, &mut t, &mut v).unwrap();
        assert!(v.is_empty());
        assert_eq!(report.stats.rule_attempts, 0);
        assert_eq!(report.passes, 1);
    }

    #[test]
    fn scan_fallback_matches_indexed_plan() {
        let (input, rules, md) = reverse_chain();
        let unindexed = MasterData::new_unindexed(md.relation().clone());
        let plan_idx = CompiledRules::compile(&rules, &md);
        let plan_scan = CompiledRules::compile(&rules, &unindexed);
        for zip in ["EH8", "SW1", "nope"] {
            let seed: AttrSet = [input.attr_id("zip").unwrap()].into();
            let mut t1 = Tuple::of_strings(input.clone(), [zip, "x", "y", "z"]).unwrap();
            let mut v1 = seed.clone();
            let r1 = run_fixpoint_delta(&plan_idx, &md, &mut t1, &mut v1).unwrap();
            let mut t2 = Tuple::of_strings(input.clone(), [zip, "x", "y", "z"]).unwrap();
            let mut v2 = seed;
            let r2 = run_fixpoint_delta(&plan_scan, &unindexed, &mut t2, &mut v2).unwrap();
            assert_eq!(t1, t2, "zip={zip}");
            assert_eq!(v1, v2);
            assert_eq!(r1.fixes, r2.fixes);
            assert_eq!(r1.stats.master_lookups, r2.stats.master_lookups);
            assert_eq!(r2.stats.index_probes, 0, "scan arm never probes");
            assert!(r1.stats.index_probes > 0 || zip == "nope");
        }
    }

    #[test]
    fn validated_cell_conflict_is_surfaced() {
        // A multi-RHS rule whose `AC` target is already validated with a
        // value that contradicts master data: the rule still fires (its
        // `city` target is open) and must error on `AC` rather than
        // overwrite the validated cell.
        let input = Schema::of_strings("in", ["zip", "AC", "city"]).unwrap();
        let ms = Schema::of_strings("m", ["zip", "AC", "city"]).unwrap();
        let md = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["EH8", "131", "Edi"])
                .build()
                .unwrap(),
        );
        let pair = |n: &str| (input.attr_id(n).unwrap(), ms.attr_id(n).unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "zip_ac_city",
                    &input,
                    &ms,
                    vec![pair("zip")],
                    vec![pair("AC"), pair("city")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        let plan = CompiledRules::compile(&rules, &md);
        // zip pins AC=131, but the user validated AC=020.
        let seed: AttrSet = [input.attr_id("zip").unwrap(), input.attr_id("AC").unwrap()].into();
        let mut t = Tuple::of_strings(input.clone(), ["EH8", "020", "?"]).unwrap();
        let mut v = seed.clone();
        let err = run_fixpoint_delta(&plan, &md, &mut t, &mut v).unwrap_err();
        assert!(matches!(err, CerfixError::ValidatedCellConflict { .. }));
        // The pass-based engine errors identically.
        let mut t2 = Tuple::of_strings(input.clone(), ["EH8", "020", "?"]).unwrap();
        let mut v2 = seed;
        let err2 = run_fixpoint(&rules, &md, &mut t2, &mut v2).unwrap_err();
        assert_eq!(err.to_string(), err2.to_string());
    }
}
