//! The correcting process: iterate rule applications to a fixpoint.
//!
//! Paper §2 (data monitor, step 2): *"Data monitor iteratively employs
//! editing rules and master data to fix as many attributes in t as
//! possible, and expands the correct attribute set S by including those
//! attributes that are validated via the inference system of the rule
//! engine."*
//!
//! The process is monotone (the validated set only grows, validated cells
//! never change), hence terminates in at most `arity` productive passes.
//! For consistent rule sets it is also Church–Rosser: the final tuple and
//! validated set are independent of rule application order — asserted by
//! the `order_independence` tests here and property tests in the
//! integration suite.

use crate::engine::application::{apply_rule, ApplyOutcome, CellFix};
use crate::engine::stats::EngineStats;
use crate::error::Result;
use crate::master::MasterData;
use cerfix_relation::{AttrId, AttrSet, Tuple};
use cerfix_rules::RuleSet;

/// Outcome of running the correcting process on one tuple.
#[derive(Debug, Clone, Default)]
pub struct FixpointReport {
    /// Every cell change, in application order.
    pub fixes: Vec<CellFix>,
    /// Attributes validated by rules during this run (excludes the seed).
    pub newly_validated: Vec<AttrId>,
    /// Full passes over the rule set (≥ 1). The delta engine reports its
    /// sweep count here, which is never larger.
    pub passes: usize,
    /// Rules that fired productively.
    pub rule_firings: usize,
    /// Deterministic work counters (attempts, lookups, index probes).
    pub stats: EngineStats,
}

impl FixpointReport {
    /// Merge a later report into this one (used by the monitor across
    /// interaction rounds).
    pub fn absorb(&mut self, later: FixpointReport) {
        self.fixes.extend(later.fixes);
        self.newly_validated.extend(later.newly_validated);
        self.passes += later.passes;
        self.rule_firings += later.rule_firings;
        self.stats += later.stats;
    }
}

/// Run rules over `tuple` until no rule makes progress.
///
/// Rules are attempted in rule-id order within each pass; passes repeat
/// until quiescence. Deterministic by construction, and order-independent
/// for consistent rule sets.
///
/// This is the pass-based **reference engine**: it re-interprets the
/// whole rule set every pass, so its work is O(passes × |rules|). The
/// production paths run the delta-driven engine
/// ([`run_fixpoint_delta`](crate::engine::run_fixpoint_delta)), which is
/// equivalence-tested against this one; the pass-based loop is kept as
/// the oracle and as the `T6`-style ablation arm.
pub fn run_fixpoint(
    rules: &RuleSet,
    master: &MasterData,
    tuple: &mut Tuple,
    validated: &mut AttrSet,
) -> Result<FixpointReport> {
    let mut report = FixpointReport::default();
    report.stats.fixpoint_runs = 1;
    let indexed = master.uses_indexes();
    loop {
        report.passes += 1;
        let mut progressed = false;
        for (rule_id, rule) in rules.iter() {
            report.stats.rule_attempts += 1;
            let outcome = apply_rule(rule_id, rule, master, tuple, validated)?;
            // Everything past the eligibility and pattern gates performed
            // one certain-lookup against master data.
            if !matches!(
                outcome,
                ApplyOutcome::AlreadyCovered
                    | ApplyOutcome::NotEligible
                    | ApplyOutcome::PatternMismatch
            ) {
                report.stats.master_lookups += 1;
                if indexed {
                    report.stats.index_probes += 1;
                }
            }
            if let ApplyOutcome::Applied {
                fixes,
                newly_validated,
            } = outcome
            {
                if !newly_validated.is_empty() {
                    progressed = true;
                    report.rule_firings += 1;
                }
                report.fixes.extend(fixes);
                report.newly_validated.extend(newly_validated);
            }
        }
        if !progressed {
            break;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef, Value};
    use cerfix_rules::{EditingRule, PatternTuple};

    /// A 3-stage chain: zip → AC (φ1-like), AC → city (φ9-like),
    /// city → str (synthetic), exercising multi-pass propagation.
    fn chain_fixture() -> (SchemaRef, RuleSet, MasterData) {
        let input = Schema::of_strings("in", ["zip", "AC", "city", "str"]).unwrap();
        let ms = Schema::of_strings("m", ["zip", "AC", "city", "str"]).unwrap();
        let md = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["EH8", "131", "Edi", "Elm St"])
                .row_strs(["SW1", "020", "Ldn", "Oak Rd"])
                .build()
                .unwrap(),
        );
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        let pair = |n: &str| (input.attr_id(n).unwrap(), ms.attr_id(n).unwrap());
        rules
            .add(
                EditingRule::new(
                    "zip_ac",
                    &input,
                    &ms,
                    vec![pair("zip")],
                    vec![pair("AC")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        rules
            .add(
                EditingRule::new(
                    "ac_city",
                    &input,
                    &ms,
                    vec![pair("AC")],
                    vec![pair("city")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        rules
            .add(
                EditingRule::new(
                    "city_str",
                    &input,
                    &ms,
                    vec![pair("city")],
                    vec![pair("str")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        (input, rules, md)
    }

    #[test]
    fn chain_propagates_to_fixpoint() {
        let (input, rules, md) = chain_fixture();
        let mut t = Tuple::of_strings(input.clone(), ["EH8", "999", "Nowhere", "???"]).unwrap();
        let mut v: AttrSet = [input.attr_id("zip").unwrap()].into();
        let report = run_fixpoint(&rules, &md, &mut t, &mut v).unwrap();
        assert_eq!(v.len(), 4, "every attribute validated");
        assert_eq!(t.get_by_name("AC").unwrap(), &Value::str("131"));
        assert_eq!(t.get_by_name("city").unwrap(), &Value::str("Edi"));
        assert_eq!(t.get_by_name("str").unwrap(), &Value::str("Elm St"));
        assert_eq!(report.fixes.len(), 3);
        assert_eq!(report.rule_firings, 3);
        // Rule order equals chain order here, so a single productive pass
        // suffices plus one quiescent pass.
        assert_eq!(report.passes, 2);
    }

    #[test]
    fn reversed_rule_order_needs_more_passes_same_result() {
        // Add rules in reverse chain order: the fixpoint must still reach
        // the same final state (Church–Rosser), just in more passes.
        let input = Schema::of_strings("in", ["zip", "AC", "city", "str"]).unwrap();
        let ms = Schema::of_strings("m", ["zip", "AC", "city", "str"]).unwrap();
        let md = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["EH8", "131", "Edi", "Elm St"])
                .build()
                .unwrap(),
        );
        let pair = |n: &str| (input.attr_id(n).unwrap(), ms.attr_id(n).unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "city_str",
                    &input,
                    &ms,
                    vec![pair("city")],
                    vec![pair("str")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        rules
            .add(
                EditingRule::new(
                    "ac_city",
                    &input,
                    &ms,
                    vec![pair("AC")],
                    vec![pair("city")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        rules
            .add(
                EditingRule::new(
                    "zip_ac",
                    &input,
                    &ms,
                    vec![pair("zip")],
                    vec![pair("AC")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        let mut t = Tuple::of_strings(input.clone(), ["EH8", "x", "y", "z"]).unwrap();
        let mut v: AttrSet = [input.attr_id("zip").unwrap()].into();
        let report = run_fixpoint(&rules, &md, &mut t, &mut v).unwrap();
        assert_eq!(v.len(), 4);
        assert_eq!(t.get_by_name("str").unwrap(), &Value::str("Elm St"));
        assert!(report.passes > 2, "reverse order forces multiple passes");
    }

    #[test]
    fn order_independence_on_chain() {
        // Run the chain under both orderings and compare final states.
        let (input, rules_fwd, md) = chain_fixture();
        let dirty = ["EH8", "bad", "bad", "bad"];
        let mut t1 = Tuple::of_strings(input.clone(), dirty).unwrap();
        let mut v1: AttrSet = [input.attr_id("zip").unwrap()].into();
        run_fixpoint(&rules_fwd, &md, &mut t1, &mut v1).unwrap();

        // Reversed insertion order.
        let ms = rules_fwd.master_schema().clone();
        let pair = |n: &str| (input.attr_id(n).unwrap(), ms.attr_id(n).unwrap());
        let mut rules_rev = RuleSet::new(input.clone(), ms.clone());
        for (name, l, r) in [
            ("city_str", "city", "str"),
            ("ac_city", "AC", "city"),
            ("zip_ac", "zip", "AC"),
        ] {
            rules_rev
                .add(
                    EditingRule::new(
                        name,
                        &input,
                        &ms,
                        vec![pair(l)],
                        vec![pair(r)],
                        PatternTuple::empty(),
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        let mut t2 = Tuple::of_strings(input.clone(), dirty).unwrap();
        let mut v2: AttrSet = [input.attr_id("zip").unwrap()].into();
        run_fixpoint(&rules_rev, &md, &mut t2, &mut v2).unwrap();

        assert_eq!(t1, t2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn stalls_without_evidence() {
        let (input, rules, md) = chain_fixture();
        let mut t = Tuple::of_strings(input.clone(), ["EH8", "x", "y", "z"]).unwrap();
        let mut v = AttrSet::new(); // nothing validated
        let report = run_fixpoint(&rules, &md, &mut t, &mut v).unwrap();
        assert!(v.is_empty());
        assert!(report.fixes.is_empty());
        assert_eq!(report.passes, 1, "single quiescent pass");
    }

    #[test]
    fn idempotent_after_fixpoint() {
        let (input, rules, md) = chain_fixture();
        let mut t = Tuple::of_strings(input.clone(), ["EH8", "x", "y", "z"]).unwrap();
        let mut v: AttrSet = [input.attr_id("zip").unwrap()].into();
        run_fixpoint(&rules, &md, &mut t, &mut v).unwrap();
        let snapshot = (t.clone(), v.clone());
        let second = run_fixpoint(&rules, &md, &mut t, &mut v).unwrap();
        assert_eq!((t, v), snapshot, "fixpoint is idempotent");
        assert!(second.fixes.is_empty());
        assert_eq!(second.rule_firings, 0);
    }

    #[test]
    fn unknown_master_key_leaves_tuple_partially_fixed() {
        let (input, rules, md) = chain_fixture();
        let mut t = Tuple::of_strings(input.clone(), ["ZZ9", "x", "y", "z"]).unwrap();
        let mut v: AttrSet = [input.attr_id("zip").unwrap()].into();
        let report = run_fixpoint(&rules, &md, &mut t, &mut v).unwrap();
        assert_eq!(v.len(), 1, "zip validated but chain never starts");
        assert!(report.fixes.is_empty());
    }

    #[test]
    fn absorb_merges_reports() {
        let mut a = FixpointReport {
            fixes: vec![],
            newly_validated: vec![1],
            passes: 2,
            rule_firings: 1,
            stats: EngineStats {
                rule_attempts: 4,
                ..Default::default()
            },
        };
        let b = FixpointReport {
            fixes: vec![],
            newly_validated: vec![2, 3],
            passes: 1,
            rule_firings: 2,
            stats: EngineStats {
                rule_attempts: 2,
                ..Default::default()
            },
        };
        a.absorb(b);
        assert_eq!(a.newly_validated, vec![1, 2, 3]);
        assert_eq!(a.passes, 3);
        assert_eq!(a.rule_firings, 3);
        assert_eq!(a.stats.rule_attempts, 6);
    }
}
