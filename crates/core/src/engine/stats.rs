//! Deterministic work counters for the correcting process.
//!
//! Wall-clock benchmarks flake; attempt counts do not. Both fixpoint
//! engines (the pass-based reference in [`fixpoint`] and the
//! delta-driven engine in [`delta`]) fill an [`EngineStats`] so tests
//! and the `bench_fixpoint` smoke guard can assert — exactly, on every
//! machine — that the delta engine performs strictly less work.
//!
//! [`fixpoint`]: crate::engine::run_fixpoint
//! [`delta`]: crate::engine::run_fixpoint_delta

use std::ops::AddAssign;

/// Work performed by one fixpoint run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Complete fixpoint runs (1 per engine invocation; aggregated
    /// counters use this to report how many correcting processes were
    /// simulated — the region finder's certification cost unit).
    pub fixpoint_runs: usize,
    /// Rules attempted (eligibility checked / popped from the worklist).
    /// The pass-based engine attempts every rule every pass; the delta
    /// engine attempts each rule at most once, when its evidence
    /// completes.
    pub rule_attempts: usize,
    /// Master-data certain-lookups performed (attempts that got past
    /// eligibility and pattern gates).
    pub master_lookups: usize,
    /// Lookups served by a hash index (equals `master_lookups` on an
    /// indexed master, 0 on the `T6` scan-ablation arm).
    pub index_probes: usize,
}

impl AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: EngineStats) {
        self.fixpoint_runs += rhs.fixpoint_runs;
        self.rule_attempts += rhs.rule_attempts;
        self.master_lookups += rhs.master_lookups;
        self.index_probes += rhs.index_probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = EngineStats {
            fixpoint_runs: 1,
            rule_attempts: 1,
            master_lookups: 2,
            index_probes: 3,
        };
        a += EngineStats {
            fixpoint_runs: 1,
            rule_attempts: 10,
            master_lookups: 20,
            index_probes: 30,
        };
        assert_eq!(
            a,
            EngineStats {
                fixpoint_runs: 2,
                rule_attempts: 11,
                master_lookups: 22,
                index_probes: 33,
            }
        );
    }
}
