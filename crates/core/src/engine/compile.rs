//! Compiled rule plans: the execution form of a [`RuleSet`].
//!
//! The pass-based engine re-interprets rules from scratch on every pass:
//! per attempt it materializes the evidence set (`BTreeSet`), the LHS /
//! RHS attribute vectors, and a projected key vector, then takes the
//! master index cache's `RwLock` and copies the posting list. A
//! [`CompiledRules`] plan does all of that **once per rule set**:
//!
//! * per-rule evidence and RHS **bitmasks** ([`AttrSet`]) — eligibility
//!   and coverage tests become word operations;
//! * LHS/RHS key layouts resolved to flat attribute arrays — key
//!   projection writes into a reused buffer, no per-lookup vectors;
//! * a resolved `Arc<HashIndex>` **snapshot** per rule — the serving
//!   path probes master data lock-free (`None` on the unindexed `T6`
//!   ablation arm, which falls back to scans);
//! * per-attribute **watch lists** mapping each evidence attribute to
//!   the rules it can unblock — the delta engine
//!   ([`run_fixpoint_delta`](crate::engine::run_fixpoint_delta)) wakes
//!   only the rules watching a newly validated attribute instead of
//!   re-attempting the whole rule set.
//!
//! Plans are immutable and `Send + Sync`: build one per `Arc<RuleSet>`
//! (the server caches them per rule-set fingerprint) and share it across
//! every monitor, stream worker, and certification probe.

use crate::master::MasterData;
use cerfix_relation::{AttrId, AttrSet, HashIndex, SchemaRef};
use cerfix_rules::{PatternTuple, RuleId, RuleSet};
use std::sync::Arc;

/// One rule in execution form: masks, flat layouts, resolved index.
#[derive(Debug, Clone)]
pub(crate) struct CompiledRule {
    /// The rule's id in the source [`RuleSet`] (for fix provenance).
    pub(crate) id: RuleId,
    /// The rule's name (for error messages).
    pub(crate) name: String,
    /// Evidence mask `X ∪ Xp`: every bit must be validated to fire.
    pub(crate) evidence: AttrSet,
    /// RHS mask `B`: all bits validated ⇒ nothing left to do.
    pub(crate) rhs_set: AttrSet,
    /// Input-side LHS attributes `X`, flat, in rule order.
    pub(crate) input_lhs: Box<[AttrId]>,
    /// Master-side LHS attributes `Xm`, flat, in rule order.
    pub(crate) master_lhs: Box<[AttrId]>,
    /// Input-side RHS attributes `B`, flat.
    pub(crate) input_rhs: Box<[AttrId]>,
    /// Master-side RHS attributes `Bm`, flat, position-wise with `B`.
    pub(crate) master_rhs: Box<[AttrId]>,
    /// The pattern `tp[Xp]` over the input tuple.
    pub(crate) pattern: PatternTuple,
    /// Snapshot of the master index on `Xm` (`None` ⇒ scan fallback).
    pub(crate) index: Option<Arc<HashIndex>>,
}

/// A compiled execution plan for one `(RuleSet, MasterData)` pair.
#[derive(Debug)]
pub struct CompiledRules {
    /// Rules in rule-id order (positions are dense even when the source
    /// set has deleted-rule gaps).
    pub(crate) rules: Vec<CompiledRule>,
    /// `watchers[attr]` = positions (into `rules`) of the rules whose
    /// evidence contains `attr`.
    watchers: Vec<Vec<u32>>,
    input_schema: SchemaRef,
    /// Master generation the index snapshots were resolved against.
    master_generation: u64,
}

impl CompiledRules {
    /// Compile `rules` against `master`, warming (and snapshotting) the
    /// master index for every distinct rule LHS.
    pub fn compile(rules: &RuleSet, master: &MasterData) -> CompiledRules {
        let input_schema = rules.input_schema().clone();
        let mut compiled: Vec<CompiledRule> = Vec::with_capacity(rules.len());
        let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); input_schema.arity()];
        for (id, rule) in rules.iter() {
            let pos = compiled.len() as u32;
            let evidence: AttrSet = rule.evidence_attrs().into_iter().collect();
            for attr in &evidence {
                watchers[attr].push(pos);
            }
            let master_lhs = rule.master_lhs();
            let index = master.warmed_index(&master_lhs);
            compiled.push(CompiledRule {
                id,
                name: rule.name().to_string(),
                evidence,
                rhs_set: rule.input_rhs().into_iter().collect(),
                input_lhs: rule.input_lhs().into_boxed_slice(),
                master_lhs: master_lhs.into_boxed_slice(),
                input_rhs: rule.input_rhs().into_boxed_slice(),
                master_rhs: rule.master_rhs().into_boxed_slice(),
                pattern: rule.pattern().clone(),
                index,
            });
        }
        CompiledRules {
            rules: compiled,
            watchers,
            input_schema,
            master_generation: master.generation(),
        }
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff the plan contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The input schema the plan was compiled over.
    pub fn input_schema(&self) -> &SchemaRef {
        &self.input_schema
    }

    /// The [`MasterData::generation`] the index snapshots belong to. A
    /// plan must not serve a master with a newer generation — recompile
    /// after appends (the delta engine debug-asserts this).
    pub fn master_generation(&self) -> u64 {
        self.master_generation
    }

    /// Positions of the rules whose evidence contains `attr`.
    pub(crate) fn watchers(&self, attr: AttrId) -> &[u32] {
        self.watchers.get(attr).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, Value};
    use cerfix_rules::EditingRule;

    fn fixture() -> (RuleSet, MasterData) {
        let input = Schema::of_strings("in", ["zip", "AC", "city", "type"]).unwrap();
        let ms = Schema::of_strings("m", ["zip", "AC", "city"]).unwrap();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["EH8", "131", "Edi"])
                .build()
                .unwrap(),
        );
        let pair = |n: &str| (input.attr_id(n).unwrap(), ms.attr_id(n).unwrap());
        let ty = input.attr_id("type").unwrap();
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "zip_ac",
                    &input,
                    &ms,
                    vec![pair("zip")],
                    vec![pair("AC")],
                    PatternTuple::empty().with_eq(ty, Value::str("2")),
                )
                .unwrap(),
            )
            .unwrap();
        rules
            .add(
                EditingRule::new(
                    "ac_city",
                    &input,
                    &ms,
                    vec![pair("AC")],
                    vec![pair("city")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        (rules, master)
    }

    #[test]
    fn compile_resolves_masks_watchers_and_indexes() {
        let (rules, master) = fixture();
        let plan = CompiledRules::compile(&rules, &master);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        let input = rules.input_schema();
        let zip = input.attr_id("zip").unwrap();
        let ac = input.attr_id("AC").unwrap();
        let ty = input.attr_id("type").unwrap();
        // zip_ac watches {zip, type} (LHS + pattern), ac_city watches {AC}.
        assert_eq!(plan.watchers(zip), &[0]);
        assert_eq!(plan.watchers(ty), &[0]);
        assert_eq!(plan.watchers(ac), &[1]);
        assert!(
            plan.rules[0].evidence.contains(ty),
            "pattern attr is evidence"
        );
        assert!(plan.rules[1]
            .rhs_set
            .contains(input.attr_id("city").unwrap()));
        // Index snapshots resolved (indexed master).
        assert!(plan.rules.iter().all(|r| r.index.is_some()));
        assert_eq!(master.index_count(), 2, "compile warmed both LHS indexes");
        assert_eq!(plan.master_generation(), master.generation());
    }

    #[test]
    fn unindexed_master_compiles_to_scan_fallback() {
        let (rules, master) = fixture();
        let unindexed = MasterData::new_unindexed(master.relation().clone());
        let plan = CompiledRules::compile(&rules, &unindexed);
        assert!(plan.rules.iter().all(|r| r.index.is_none()));
        assert_eq!(unindexed.index_count(), 0);
    }

    #[test]
    fn rule_deletion_keeps_source_ids() {
        let (mut rules, master) = fixture();
        rules.remove("zip_ac").unwrap();
        let plan = CompiledRules::compile(&rules, &master);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.rules[0].id, 1, "provenance keeps the RuleSet id");
    }
}
