//! Error types for the CerFix core system.

use std::fmt;

/// Errors raised by the rule engine, region finder, monitor and auditing.
#[derive(Debug)]
pub enum CerfixError {
    /// An underlying relational-substrate failure.
    Relation(cerfix_relation::RelationError),
    /// An underlying rule-layer failure.
    Rule(cerfix_rules::RuleError),
    /// A fix attempted to overwrite an already-validated cell with a
    /// different value — the run-time symptom of an inconsistent rule set.
    ValidatedCellConflict {
        /// Name of the rule that attempted the overwrite.
        rule: String,
        /// Attribute name of the conflicted cell.
        attribute: String,
        /// The validated value already in place.
        current: String,
        /// The conflicting value the rule derived.
        incoming: String,
    },
    /// The user supplied a validation for an attribute id outside the
    /// input schema.
    InvalidValidation {
        /// The offending attribute id.
        attr: usize,
        /// Why it was rejected.
        message: String,
    },
    /// A monitor session operation was invoked in the wrong state
    /// (e.g. validating a completed session).
    SessionState {
        /// Description of the misuse.
        message: String,
    },
}

impl fmt::Display for CerfixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CerfixError::Relation(e) => write!(f, "{e}"),
            CerfixError::Rule(e) => write!(f, "{e}"),
            CerfixError::ValidatedCellConflict {
                rule,
                attribute,
                current,
                incoming,
            } => write!(
                f,
                "rule `{rule}` attempted to overwrite validated cell `{attribute}` \
                 (current `{current}`, incoming `{incoming}`); the rule set is inconsistent"
            ),
            CerfixError::InvalidValidation { attr, message } => {
                write!(f, "invalid validation of attribute {attr}: {message}")
            }
            CerfixError::SessionState { message } => write!(f, "session state error: {message}"),
        }
    }
}

impl std::error::Error for CerfixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CerfixError::Relation(e) => Some(e),
            CerfixError::Rule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cerfix_relation::RelationError> for CerfixError {
    fn from(e: cerfix_relation::RelationError) -> Self {
        CerfixError::Relation(e)
    }
}

impl From<cerfix_rules::RuleError> for CerfixError {
    fn from(e: cerfix_rules::RuleError) -> Self {
        CerfixError::Rule(e)
    }
}

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CerfixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_display_names_rule_and_cell() {
        let e = CerfixError::ValidatedCellConflict {
            rule: "phi3".into(),
            attribute: "city".into(),
            current: "Edi".into(),
            incoming: "Ldn".into(),
        };
        let s = e.to_string();
        assert!(s.contains("phi3") && s.contains("city") && s.contains("inconsistent"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = CerfixError::from(cerfix_relation::RelationError::EmptySchema);
        assert!(e.source().is_some());
        let e = CerfixError::from(cerfix_rules::RuleError::UnknownRule { name: "x".into() });
        assert!(e.source().is_some());
    }
}
