//! Certain regions and the region finder (paper §2).

mod certify;
mod finder;
mod tableau;

pub use certify::{certifies_for, certify_region, masked_input, CertifyResult};
pub use finder::{find_regions, RegionFinderOptions, RegionSearchResult, RegionSearchStats};
pub use tableau::Region;
