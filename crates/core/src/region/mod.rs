//! Certain regions and the region finder (paper §2).

mod certify;
mod finder;
pub(crate) mod lattice;
mod recheck;
mod tableau;

pub use certify::{
    certifies_for, certifies_for_with_plan, certify_region, certify_region_mode, masked_input,
    CertifyMode, CertifyResult,
};
pub use finder::{
    find_regions, find_regions_from_scratch, search_regions, RegionFinderOptions, RegionSearch,
    RegionSearchResult, RegionSearchState, RegionSearchStats,
};
pub use recheck::recheck_regions;
pub use tableau::Region;
