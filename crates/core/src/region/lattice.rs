//! The memoized certification lattice: incremental data-phase probes.
//!
//! The naive data phase simulates one full correcting process per
//! `(candidate, truth)` pair — `universe × candidates` fixpoints, each
//! O(firings) master lookups. This module collapses almost all of that
//! work using one observation: **within a truth-clean run, every rule's
//! behaviour is a function of the truth alone.**
//!
//! A certification fixpoint seeds `t[Z] = u[Z]` with `Z` validated. Call
//! a state *truth-clean* when every validated cell equals the truth `u`.
//! In a truth-clean state a rule's evidence values are `u`'s values, so
//! its pattern verdict is `pattern.matches(u)` and its certain lookup
//! probes `u`'s key — both independent of `Z` and of firing order. A
//! [`TruthProfile`] classifies each compiled rule once per truth:
//!
//! * **fireable** — pattern matches `u`, the lookup is unique, and the
//!   witness agrees with `u` on every RHS attribute. Firing keeps the
//!   state truth-clean.
//! * **dead** — pattern mismatch, no match, ambiguous key, or a null fix
//!   value. The rule can never fire in a truth-clean run.
//! * **poisoned** — the lookup is unique but *disagrees* with `u`. Such
//!   a rule can fire a wrong value, after which the run leaves the
//!   truth-clean regime and genuinely depends on attempt order.
//!
//! For an unpoisoned truth, every fixpoint from every seed stays
//! truth-clean, so the run is confluent and its outcome is a pure
//! *closure*: `certified(Z, u) ⟺ closure of Z under fireable rules
//! spans the schema`. That closure is a handful of bitset operations —
//! no tuple allocation, no lookups — and it is monotone, so candidates
//! sharing a `Z`-prefix share [`ClosureNode`] snapshots (the lattice):
//! the node for `Z ∪ {a}` extends the node for `Z`.
//!
//! For the (rare) poisoned truths the module falls back to the real
//! fixpoint, preserving **exact** equivalence with the from-scratch
//! oracle ([`find_regions_from_scratch`]) on every input, including
//! adversarial universes and inconsistent rule sets — property-tested in
//! `tests/region_incremental.rs`.
//!
//! [`find_regions_from_scratch`]: crate::region::find_regions_from_scratch

use crate::engine::{run_fixpoint_delta, CompiledRules, EngineStats};
use crate::master::MasterData;
use cerfix_relation::{AttrId, AttrSet, RowId, Tuple, Value};

/// Per-truth classification of every compiled rule (see module docs).
#[derive(Debug, Clone)]
pub(crate) struct TruthProfile {
    /// Rule positions (into the plan) that fire truth values.
    fireable: AttrSet,
    /// True iff some rule would fire a non-truth value: closure-based
    /// certification is unsound for this truth, use the fixpoint.
    poisoned: bool,
}

impl TruthProfile {
    /// True iff certification for this truth must run the real fixpoint.
    pub(crate) fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Classify every rule of `plan` against `truth`: at most one
    /// certain lookup per *distinct join* — rules sharing `(X, Xm)`
    /// (common when many rules hang off the same key) share the posting
    /// list — reused by every candidate probing this truth.
    pub(crate) fn build(plan: &CompiledRules, master: &MasterData, truth: &Tuple) -> TruthProfile {
        let mut fireable = AttrSet::new();
        let mut poisoned = false;
        let mut key_buf: Vec<Value> = Vec::new();
        // Posting lists already fetched for this truth, by join layout.
        // Linear scan: distinct joins are few (one per rule LHS shape).
        let mut fetched: Vec<(&[AttrId], &[AttrId], Vec<RowId>)> = Vec::new();
        for (pos, rule) in plan.rules.iter().enumerate() {
            // In a truth-clean state the pattern reads truth values.
            if !rule.pattern.matches(truth) {
                continue;
            }
            let rows: &[RowId] = match fetched.iter().position(|(input_lhs, master_lhs, _)| {
                *input_lhs == &rule.input_lhs[..] && *master_lhs == &rule.master_lhs[..]
            }) {
                Some(i) => &fetched[i].2,
                None => {
                    key_buf.clear();
                    for &a in rule.input_lhs.iter() {
                        key_buf.push(truth.get(a).clone());
                    }
                    let mut rows: Vec<RowId> = Vec::new();
                    if !key_buf.iter().any(Value::is_null) {
                        match &rule.index {
                            Some(index) => rows.extend_from_slice(index.lookup(&key_buf)),
                            None => {
                                master.for_each_matching_row(&rule.master_lhs, &key_buf, |id| {
                                    rows.push(id)
                                })
                            }
                        }
                    } // null keys match nothing: empty posting list
                    fetched.push((&rule.input_lhs, &rule.master_lhs, rows));
                    &fetched.last().expect("just pushed").2
                }
            };
            let (_, Some(witness)) = master.certain_witness(rows.iter().copied(), &rule.master_rhs)
            else {
                continue; // no match / ambiguous / null fix: dead
            };
            let s = master.tuple(witness).expect("index row in range");
            let agrees = rule
                .input_rhs
                .iter()
                .zip(rule.master_rhs.iter())
                .all(|(&b, &bm)| s.get(bm) == truth.get(b));
            if agrees {
                fireable.insert(pos);
            } else {
                poisoned = true;
            }
        }
        TruthProfile { fireable, poisoned }
    }
}

/// One node of the certification lattice: the closure of some seed under
/// a truth's fireable rules, plus the rules consumed reaching it.
/// Extending a node with one more attribute reuses both — the memoized
/// `(context, truth, Z-prefix)` snapshot of the incremental data phase.
#[derive(Debug, Clone)]
pub(crate) struct ClosureNode {
    /// Attributes validated by the closure (the "validated `AttrSet`").
    validated: AttrSet,
    /// Rule positions already fired on the path to this node.
    consumed: AttrSet,
}

impl ClosureNode {
    /// The root node: closure of `seed` from scratch (full rule scan)
    /// under a fireable mask (profile classes share one mask across many
    /// truths).
    pub(crate) fn root_of(plan: &CompiledRules, fireable: &AttrSet, seed: &AttrSet) -> ClosureNode {
        let mut node = ClosureNode {
            validated: seed.clone(),
            consumed: AttrSet::new(),
        };
        let arity = plan.input_schema().arity();
        // Initial sweep: every fireable rule whose evidence is already in
        // the seed; later additions wake watchers only.
        let mut newly: Vec<AttrId> = Vec::new();
        for pos in fireable {
            if node.validated.len() == arity {
                break;
            }
            if plan.rules[pos].evidence.is_subset(&node.validated) {
                node.consumed.insert(pos);
                for b in &plan.rules[pos].rhs_set {
                    if node.validated.insert(b) {
                        newly.push(b);
                    }
                }
            }
        }
        node.propagate(plan, fireable, newly, arity);
        node
    }

    /// Extend this node with `extra` attributes, returning the closure of
    /// `validated ∪ extra` — the lattice step `closure(Z ∪ {a})` from
    /// `closure(Z)`. Only rules watching a newly validated attribute are
    /// examined.
    pub(crate) fn extend_with(
        &self,
        plan: &CompiledRules,
        fireable: &AttrSet,
        extra: impl IntoIterator<Item = AttrId>,
    ) -> ClosureNode {
        let mut node = self.clone();
        let newly: Vec<AttrId> = extra
            .into_iter()
            .filter(|&a| node.validated.insert(a))
            .collect();
        node.propagate(plan, fireable, newly, plan.input_schema().arity());
        node
    }

    fn propagate(
        &mut self,
        plan: &CompiledRules,
        fireable: &AttrSet,
        mut newly: Vec<AttrId>,
        arity: usize,
    ) {
        while let Some(a) = newly.pop() {
            if self.validated.len() == arity {
                // Complete: supersets are complete too, nothing to gain.
                return;
            }
            for &w in plan.watchers(a) {
                let w = w as usize;
                if self.consumed.contains(w)
                    || !fireable.contains(w)
                    || !plan.rules[w].evidence.is_subset(&self.validated)
                {
                    continue;
                }
                self.consumed.insert(w);
                for b in &plan.rules[w].rhs_set {
                    if self.validated.insert(b) {
                        newly.push(b);
                    }
                }
            }
        }
    }

    /// True iff the closure spans the whole input schema — for an
    /// unpoisoned truth, exactly "the fixpoint certifies".
    pub(crate) fn complete(&self, arity: usize) -> bool {
        self.validated.len() == arity
    }
}

/// Counters for the incremental data phase, merged into
/// [`RegionSearchStats`](crate::region::RegionSearchStats).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ProbeStats {
    pub(crate) closure_probes: usize,
    pub(crate) lattice_hits: usize,
    pub(crate) engine: EngineStats,
}

/// Run the real correcting process for one `(Z, truth)` pair and check
/// full, correct validation — the unit the from-scratch oracle and the
/// poisoned-truth fallback share, so the two paths cannot drift.
pub(crate) fn certify_truth_fixpoint(
    plan: &CompiledRules,
    master: &MasterData,
    attrs: &AttrSet,
    truth: &Tuple,
    engine: &mut EngineStats,
) -> bool {
    let arity = plan.input_schema().arity();
    let mut t = Tuple::all_null(plan.input_schema().clone());
    for a in attrs {
        t.set(a, truth.get(a).clone()).expect("attr in schema");
    }
    let mut validated = attrs.clone();
    match run_fixpoint_delta(plan, master, &mut t, &mut validated) {
        Err(_) => {
            *engine += EngineStats {
                fixpoint_runs: 1,
                ..Default::default()
            };
            false // validated-cell conflict: inconsistent rules
        }
        Ok(report) => {
            *engine += report.stats;
            validated.len() == arity
                && (0..arity).all(|a| {
                    let fixed = t.get(a);
                    !fixed.is_null() && fixed == truth.get(a)
                })
        }
    }
}

/// The per-context certification driver.
///
/// Unpoisoned truths are grouped into **profile classes**: truths with
/// the same fireable set have identical closure verdicts for every
/// candidate, so one class probe answers all of them (on master-derived
/// universes a context often collapses to a single class). Each class
/// memoizes the base snapshot (closure of the context's mandatory
/// attributes) plus a prefix stack of lattice nodes, so consecutive
/// candidates also reuse the longest shared `Z`-prefix. Poisoned truths
/// are certified individually by the real fixpoint.
pub(crate) struct ContextCertifier<'a> {
    plan: &'a CompiledRules,
    master: &'a MasterData,
    universe: &'a [Tuple],
    /// In-scope universe indices for this context.
    truths: &'a [usize],
    arity: usize,
    /// Distinct fireable sets of the unpoisoned in-scope truths.
    classes: Vec<AttrSet>,
    /// Per class: a representative slot (for failure reporting).
    class_rep: Vec<usize>,
    /// Per in-scope truth slot: its class, or `None` when poisoned.
    slot_class: Vec<Option<usize>>,
    /// Slots whose truths need the fixpoint fallback.
    poisoned_slots: Vec<usize>,
    /// Per class: the memoized closure of the mandatory set.
    bases: Vec<Option<ClosureNode>>,
    /// Per class: the prefix stack `[(attr, node)]` above the base,
    /// shared by candidates in cover order.
    stacks: Vec<Vec<(AttrId, ClosureNode)>>,
    mandatory: AttrSet,
    pub(crate) stats: ProbeStats,
}

/// Outcome of probing one candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbeOutcome {
    pub(crate) certified: bool,
    /// Universe index of a failing truth (probe order), if any.
    pub(crate) failing: Option<usize>,
}

impl<'a> ContextCertifier<'a> {
    pub(crate) fn new(
        plan: &'a CompiledRules,
        master: &'a MasterData,
        universe: &'a [Tuple],
        truths: &'a [usize],
        profiles: &'a [Option<TruthProfile>],
        mandatory: AttrSet,
    ) -> ContextCertifier<'a> {
        let mut classes: Vec<AttrSet> = Vec::new();
        let mut class_rep: Vec<usize> = Vec::new();
        let mut slot_class: Vec<Option<usize>> = Vec::with_capacity(truths.len());
        let mut poisoned_slots: Vec<usize> = Vec::new();
        for (slot, &idx) in truths.iter().enumerate() {
            let profile = profiles[idx]
                .as_ref()
                .expect("profile built for every in-scope truth");
            if profile.poisoned {
                poisoned_slots.push(slot);
                slot_class.push(None);
                continue;
            }
            let class = match classes.iter().position(|f| *f == profile.fireable) {
                Some(c) => c,
                None => {
                    classes.push(profile.fireable.clone());
                    class_rep.push(slot);
                    classes.len() - 1
                }
            };
            slot_class.push(Some(class));
        }
        let n_classes = classes.len();
        ContextCertifier {
            plan,
            master,
            universe,
            truths,
            arity: plan.input_schema().arity(),
            classes,
            class_rep,
            slot_class,
            poisoned_slots,
            bases: vec![None; n_classes],
            stacks: vec![Vec::new(); n_classes],
            mandatory,
            stats: ProbeStats::default(),
        }
    }

    /// Probe one candidate `Z = mandatory ∪ cover` against every in-scope
    /// truth — one closure per profile class plus one fixpoint per
    /// poisoned truth — early-exiting at the first failure. `cover` must
    /// be sorted ascending (the lattice's sibling-prefix order).
    /// `failing_first` biases the order so a previously-failing truth's
    /// class is probed first — re-searches reject in O(1) probes.
    pub(crate) fn probe(
        &mut self,
        attrs: &AttrSet,
        cover: &[AttrId],
        failing_first: Option<usize>,
    ) -> ProbeOutcome {
        let first_class = failing_first
            .and_then(|f| self.truths.iter().position(|&u| u == f))
            .and_then(|slot| self.slot_class[slot]);
        if let Some(c) = first_class {
            if !self.probe_class(c, cover) {
                return ProbeOutcome {
                    certified: false,
                    failing: failing_first,
                };
            }
        }
        for c in 0..self.classes.len() {
            if first_class == Some(c) {
                continue; // already probed
            }
            if !self.probe_class(c, cover) {
                return ProbeOutcome {
                    certified: false,
                    failing: Some(self.truths[self.class_rep[c]]),
                };
            }
        }
        // Poisoned truths: the failing-first bias applies here too.
        let first_poisoned = failing_first
            .and_then(|f| self.truths.iter().position(|&u| u == f))
            .filter(|&slot| self.slot_class[slot].is_none());
        for i in 0..=self.poisoned_slots.len() {
            let slot = match (i, first_poisoned) {
                (0, Some(slot)) => slot,
                (0, None) => continue,
                (i, first) => {
                    let slot = self.poisoned_slots[i - 1];
                    if Some(slot) == first {
                        continue; // already probed first
                    }
                    slot
                }
            };
            let idx = self.truths[slot];
            if !certify_truth_fixpoint(
                self.plan,
                self.master,
                attrs,
                &self.universe[idx],
                &mut self.stats.engine,
            ) {
                return ProbeOutcome {
                    certified: false,
                    failing: Some(idx),
                };
            }
        }
        ProbeOutcome {
            certified: true,
            failing: None,
        }
    }

    /// Probe one profile class; true iff the candidate certifies for its
    /// truths.
    fn probe_class(&mut self, class: usize, cover: &[AttrId]) -> bool {
        let fireable = &self.classes[class];
        self.stats.closure_probes += 1;
        let base = self.bases[class]
            .get_or_insert_with(|| ClosureNode::root_of(self.plan, fireable, &self.mandatory));
        if base.complete(self.arity) {
            // The mandatory set alone certifies: every cover does too.
            self.stats.lattice_hits += 1;
            return true;
        }
        // Reuse the longest prefix of `cover` already on the stack.
        let stack = &mut self.stacks[class];
        let mut shared = 0;
        while shared < stack.len() && shared < cover.len() && stack[shared].0 == cover[shared] {
            shared += 1;
        }
        stack.truncate(shared);
        if shared > 0 {
            self.stats.lattice_hits += 1;
        }
        for &a in &cover[shared..] {
            let node = match stack.last() {
                Some((_, prev)) => prev.extend_with(self.plan, fireable, std::iter::once(a)),
                None => base.extend_with(self.plan, fireable, std::iter::once(a)),
            };
            stack.push((a, node));
        }
        match stack.last() {
            Some((_, node)) => node.complete(self.arity),
            None => base.complete(self.arity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};
    use cerfix_rules::{EditingRule, PatternTuple, RuleSet};

    /// zip→{AC,city}, AC→str chain with one ambiguous zip (G12) and one
    /// row whose AC disagrees with the truth we probe (poison source).
    fn fixture() -> (SchemaRef, RuleSet, MasterData) {
        let input = Schema::of_strings("in", ["zip", "AC", "city", "str"]).unwrap();
        let ms = Schema::of_strings("m", ["zip", "AC", "city", "str"]).unwrap();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["EH8", "131", "Edi", "Elm"])
                .row_strs(["SW1", "020", "Ldn", "Oak"])
                .row_strs(["G12", "0141", "Gla", "Clyde"])
                .row_strs(["G12", "0141", "Partick", "Clyde"]) // ambiguous city
                .build()
                .unwrap(),
        );
        let pair = |n: &str| (input.attr_id(n).unwrap(), ms.attr_id(n).unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        for (name, l, r) in [
            ("zip_ac", "zip", "AC"),
            ("zip_city", "zip", "city"),
            ("ac_str", "AC", "str"),
        ] {
            rules
                .add(
                    EditingRule::new(
                        name,
                        &input,
                        &ms,
                        vec![pair(l)],
                        vec![pair(r)],
                        PatternTuple::empty(),
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        (input, rules, master)
    }

    #[test]
    fn profile_classifies_rules() {
        let (input, rules, master) = fixture();
        let plan = CompiledRules::compile(&rules, &master);
        let truth = Tuple::of_strings(input.clone(), ["EH8", "131", "Edi", "Elm"]).unwrap();
        let p = TruthProfile::build(&plan, &master, &truth);
        assert!(!p.poisoned);
        assert!(p.fireable.contains(0) && p.fireable.contains(1) && p.fireable.contains(2));

        // G12's city is ambiguous: zip_city dead, the others fire.
        let g12 = Tuple::of_strings(input.clone(), ["G12", "0141", "Gla", "Clyde"]).unwrap();
        let p = TruthProfile::build(&plan, &master, &g12);
        assert!(!p.poisoned);
        assert!(p.fireable.contains(0) && !p.fireable.contains(1) && p.fireable.contains(2));

        // A truth disagreeing with its own master row: zip_ac would fire
        // the master's 131 over the truth's 999 — poisoned.
        let wrong = Tuple::of_strings(input, ["EH8", "999", "Edi", "Elm"]).unwrap();
        let p = TruthProfile::build(&plan, &master, &wrong);
        assert!(p.poisoned);
    }

    #[test]
    fn closure_matches_fixpoint_on_unpoisoned_truths() {
        let (input, rules, master) = fixture();
        let plan = CompiledRules::compile(&rules, &master);
        let arity = input.arity();
        let truths = [
            Tuple::of_strings(input.clone(), ["EH8", "131", "Edi", "Elm"]).unwrap(),
            Tuple::of_strings(input.clone(), ["G12", "0141", "Gla", "Clyde"]).unwrap(),
            Tuple::of_strings(input.clone(), ["ZZ9", "999", "No", "Where"]).unwrap(),
        ];
        for truth in &truths {
            let profile = TruthProfile::build(&plan, &master, truth);
            assert!(!profile.poisoned);
            for mask in 0u32..16 {
                let seed: AttrSet = (0..arity).filter(|a| mask & (1 << a) != 0).collect();
                let node = ClosureNode::root_of(&plan, &profile.fireable, &seed);
                let mut engine = EngineStats::default();
                let oracle = certify_truth_fixpoint(&plan, &master, &seed, truth, &mut engine);
                assert_eq!(
                    node.complete(arity),
                    oracle,
                    "truth {truth:?} seed {seed:?}"
                );
            }
        }
    }

    #[test]
    fn extend_equals_root_of_union() {
        let (input, rules, master) = fixture();
        let plan = CompiledRules::compile(&rules, &master);
        let truth = Tuple::of_strings(input.clone(), ["EH8", "131", "Edi", "Elm"]).unwrap();
        let profile = TruthProfile::build(&plan, &master, &truth);
        let zip = input.attr_id("zip").unwrap();
        let strr = input.attr_id("str").unwrap();
        let base = ClosureNode::root_of(&plan, &profile.fireable, &[strr].into());
        let extended = base.extend_with(&plan, &profile.fireable, std::iter::once(zip));
        let scratch = ClosureNode::root_of(&plan, &profile.fireable, &[strr, zip].into());
        assert_eq!(extended.validated, scratch.validated);
        assert!(extended.complete(input.arity()));
    }
}
