//! Certain regions: attribute sets plus pattern tableaux.
//!
//! Paper §2 (region finder): *"A region is a pair (Z, Tc), where Z is a
//! list of attributes of an input tuple and Tc is a pattern tableau… A
//! region (Z, Tc) is a certain region w.r.t. a set of editing rules and
//! master data if for any input tuple t, as long as t[Z] is correct and
//! t[Z] matches a pattern in Tc, the editing rules warrant to find a
//! certain fix for t."*

use cerfix_relation::{AttrId, SchemaRef, Tuple};
use cerfix_rules::PatternTuple;

/// A (certain) region `(Z, Tc)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// `Z`: the attributes to validate, sorted ascending.
    attrs: Vec<AttrId>,
    /// `Tc`: tableau rows; a tuple is covered if it matches *any* row.
    tableau: Vec<PatternTuple>,
}

impl Region {
    /// Build a region; attributes are sorted and deduplicated.
    pub fn new(attrs: impl Into<Vec<AttrId>>, tableau: impl Into<Vec<PatternTuple>>) -> Region {
        let mut attrs: Vec<AttrId> = attrs.into();
        attrs.sort_unstable();
        attrs.dedup();
        Region {
            attrs,
            tableau: tableau.into(),
        }
    }

    /// The attribute list `Z`.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// The pattern tableau `Tc`.
    pub fn tableau(&self) -> &[PatternTuple] {
        &self.tableau
    }

    /// Number of attributes (the ranking key: the paper ranks regions
    /// "ascendingly by the number of attributes").
    pub fn size(&self) -> usize {
        self.attrs.len()
    }

    /// True iff `tuple` matches at least one tableau row. (Callers ensure
    /// `tuple[Z]` is validated before trusting the match.)
    pub fn covers(&self, tuple: &Tuple) -> bool {
        self.tableau.iter().any(|p| p.matches(tuple))
    }

    /// Merge another tableau row into this region.
    pub fn add_pattern(&mut self, pattern: PatternTuple) {
        if !self.tableau.contains(&pattern) {
            self.tableau.push(pattern);
        }
    }

    /// Render as `(Z, Tc)` with attribute names.
    pub fn render(&self, schema: &SchemaRef) -> String {
        let names: Vec<&str> = self.attrs.iter().map(|&a| schema.attr_name(a)).collect();
        let rows: Vec<String> = self.tableau.iter().map(|p| p.render(schema)).collect();
        format!("({{{}}}, [{}])", names.join(", "), rows.join(" | "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{Schema, Value};

    fn schema() -> SchemaRef {
        Schema::of_strings("customer", ["AC", "phn", "type", "zip", "item"]).unwrap()
    }

    #[test]
    fn attrs_sorted_and_deduped() {
        let r = Region::new(vec![3, 1, 3, 0], vec![PatternTuple::empty()]);
        assert_eq!(r.attrs(), &[0, 1, 3]);
        assert_eq!(r.size(), 3);
    }

    #[test]
    fn covers_any_row() {
        let s = schema();
        let ty = s.attr_id("type").unwrap();
        let r = Region::new(
            vec![ty],
            vec![
                PatternTuple::empty().with_eq(ty, Value::str("1")),
                PatternTuple::empty().with_eq(ty, Value::str("2")),
            ],
        );
        let t1 = Tuple::of_strings(s.clone(), ["131", "p", "1", "z", "i"]).unwrap();
        let t2 = Tuple::of_strings(s.clone(), ["131", "p", "2", "z", "i"]).unwrap();
        let t3 = Tuple::of_strings(s.clone(), ["131", "p", "9", "z", "i"]).unwrap();
        assert!(r.covers(&t1));
        assert!(r.covers(&t2));
        assert!(!r.covers(&t3));
    }

    #[test]
    fn empty_tableau_covers_nothing() {
        let s = schema();
        let r = Region::new(vec![0], Vec::<PatternTuple>::new());
        let t = Tuple::of_strings(s, ["131", "p", "1", "z", "i"]).unwrap();
        assert!(!r.covers(&t));
    }

    #[test]
    fn add_pattern_dedupes() {
        let s = schema();
        let ty = s.attr_id("type").unwrap();
        let mut r = Region::new(vec![ty], vec![]);
        let p = PatternTuple::empty().with_eq(ty, Value::str("1"));
        r.add_pattern(p.clone());
        r.add_pattern(p);
        assert_eq!(r.tableau().len(), 1);
    }

    #[test]
    fn render_is_readable() {
        let s = schema();
        let ty = s.attr_id("type").unwrap();
        let zip = s.attr_id("zip").unwrap();
        let r = Region::new(
            vec![zip, ty],
            vec![PatternTuple::empty().with_eq(ty, Value::str("2"))],
        );
        assert_eq!(r.render(&s), "({type, zip}, [(type = '2')])");
    }
}
