//! The region finder: compute top-k certain regions (paper §2).
//!
//! *"Based on the algorithms in [7], top-k certain regions are
//! pre-computed that are ranked ascendingly by the number of attributes,
//! and are recommended to users as (initial) suggestions."*
//!
//! Finding minimal certain regions is intractable in general ([7]); for
//! the demo's pattern language the search decomposes cleanly:
//!
//! 1. **Context enumeration.** The attributes constrained by any rule
//!    pattern (`type` and `AC` in the UK scenario) partition the input
//!    space. Each *context* picks, per gate attribute, either one of the
//!    constants appearing in patterns or the "anything else" choice. A
//!    rule can be counted on within a context iff the context *entails*
//!    its pattern (every tuple in the context satisfies it).
//! 2. **Static phase.** Within a context, attributes unfixable by the
//!    entailed rules are mandatory; [`minimal_covers`] enumerates the
//!    minimal extra evidence sets whose closure spans the schema.
//! 3. **Data phase.** Each candidate `(Z, context)` is certified against
//!    the scenario's truth universe ([`certify_region`]): the closure can
//!    overshoot when master keys are missing or ambiguous.
//!
//! Certified candidates with the same `Z` merge their contexts into one
//! tableau; regions are ranked ascending by `|Z|` and cut to `top_k`.
//!
//! The data phase is **incremental and parallel** (see
//! [`lattice`](crate::region::lattice)): per in-scope truth a
//! [`TruthProfile`] classifies every rule once, after which each
//! candidate's certification is a memoized bitset closure; candidates
//! fan out across worker threads ([`ordered_map`]) with a deterministic
//! in-order merge. [`find_regions_from_scratch`] keeps the pre-lattice
//! `universe × candidates` fixpoint loop as the equivalence oracle, and
//! [`recheck_regions`](crate::region::recheck_regions) patches a prior
//! [`RegionSearch`] after a master-data append instead of re-searching.
//!
//! [`TruthProfile`]: crate::region::lattice::TruthProfile
//! [`ordered_map`]: crate::exec::ordered_map

use crate::engine::{minimal_covers, unfixable_attrs, useful_evidence_attrs, CompiledRules};
use crate::exec::ordered_map;
use crate::master::MasterData;
use crate::region::certify::certify_region;
use crate::region::lattice::{ContextCertifier, TruthProfile};
use crate::region::tableau::Region;
use cerfix_relation::{AttrId, AttrSet, Tuple, Value};
use cerfix_rules::{EditingRule, PatternOp, PatternTuple, RuleId, RuleSet};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Configuration for the region search.
#[derive(Debug, Clone)]
pub struct RegionFinderOptions {
    /// Number of regions to return (the paper's "top-k").
    pub top_k: usize,
    /// Maximum extra evidence attributes per cover (search depth bound).
    pub max_cover_size: usize,
    /// Maximum minimal covers enumerated per context.
    pub max_covers_per_context: usize,
    /// Require certification to be non-vacuous (at least one truth tuple
    /// in scope). Vacuous contexts produce no region.
    pub require_nonvacuous: bool,
    /// Worker threads for the data phase (`0` = one per available core).
    /// Results are identical at any thread count — candidates fan out
    /// with an order-stable merge.
    pub threads: usize,
}

impl Default for RegionFinderOptions {
    fn default() -> Self {
        RegionFinderOptions {
            top_k: 8,
            max_cover_size: 6,
            max_covers_per_context: 16,
            require_nonvacuous: true,
            threads: 0,
        }
    }
}

pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
}

/// One pattern context: a total choice over the gate attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Context {
    pattern: PatternTuple,
}

impl Context {
    /// Does this context entail `op` on `attr` (i.e. every tuple matching
    /// the context satisfies the cell)?
    fn entails(&self, attr: AttrId, op: &PatternOp) -> bool {
        // Find this context's constraint on the attribute.
        let own = self
            .pattern
            .cells()
            .iter()
            .find(|c| c.attr == attr)
            .map(|c| &c.op);
        match (own, op) {
            (_, PatternOp::Any) => true,
            (Some(PatternOp::Eq(c)), PatternOp::Eq(c2)) => c == c2,
            (Some(PatternOp::Eq(c)), PatternOp::Ne(set)) => !set.contains(c),
            (Some(PatternOp::Ne(excluded)), PatternOp::Ne(set)) => {
                set.iter().all(|v| excluded.contains(v))
            }
            // Unconstrained or Ne-context cannot entail an equality.
            _ => false,
        }
    }

    /// True iff every cell of `rule`'s pattern is entailed.
    fn entails_rule(&self, rule: &EditingRule) -> bool {
        rule.pattern()
            .cells()
            .iter()
            .all(|c| self.entails(c.attr, &c.op))
    }
}

/// Enumerate contexts from the rule patterns: per gate attribute, each
/// equality constant seen in any pattern plus the "else" choice excluding
/// all seen constants.
fn enumerate_contexts(rules: &RuleSet) -> Vec<Context> {
    // Gate attr → constants mentioned in any pattern cell on it.
    let mut gates: BTreeMap<AttrId, BTreeSet<Value>> = BTreeMap::new();
    for (_, rule) in rules.iter() {
        for cell in rule.pattern().cells() {
            let entry = gates.entry(cell.attr).or_default();
            match &cell.op {
                PatternOp::Any => {}
                PatternOp::Eq(v) => {
                    entry.insert(v.clone());
                }
                PatternOp::Ne(vs) => {
                    entry.extend(vs.iter().cloned());
                }
            }
        }
    }
    let mut contexts = vec![Context {
        pattern: PatternTuple::empty(),
    }];
    for (attr, constants) in &gates {
        let mut expanded = Vec::with_capacity(contexts.len() * (constants.len() + 1));
        for ctx in &contexts {
            for c in constants {
                let p = PatternTuple::new(
                    ctx.pattern
                        .cells()
                        .iter()
                        .cloned()
                        .chain(std::iter::once(cerfix_rules::PatternCell {
                            attr: *attr,
                            op: PatternOp::Eq(c.clone()),
                        }))
                        .collect::<Vec<_>>(),
                );
                expanded.push(Context { pattern: p });
            }
            // The "anything else" choice.
            let p = PatternTuple::new(
                ctx.pattern
                    .cells()
                    .iter()
                    .cloned()
                    .chain(std::iter::once(cerfix_rules::PatternCell {
                        attr: *attr,
                        op: PatternOp::Ne(constants.iter().cloned().collect()),
                    }))
                    .collect::<Vec<_>>(),
            );
            expanded.push(Context { pattern: p });
        }
        contexts = expanded;
    }
    contexts
}

/// Diagnostics from a region search.
#[derive(Debug, Clone, Default)]
pub struct RegionSearchStats {
    /// Pattern contexts enumerated.
    pub contexts: usize,
    /// `(Z, context)` candidates produced by the static phase.
    pub candidates: usize,
    /// Candidates rejected by data certification.
    pub rejected_by_certification: usize,
    /// Candidates rejected as vacuous (no truth tuple in scope).
    pub vacuous: usize,
    /// Per-truth rule profiles built (each is one certain-lookup per
    /// rule; the memoized currency of the incremental data phase).
    pub truth_profiles: usize,
    /// `(candidate, truth)` lattice closure evaluations — probes answered
    /// without running a fixpoint.
    pub closure_probes: usize,
    /// Closure probes that reused a memoized prefix snapshot (the base
    /// node or a shared sibling prefix) instead of closing from scratch.
    pub lattice_hits: usize,
    /// Re-search only: candidates whose prior verdict was reused because
    /// no rule they count on watches a changed master key.
    pub candidates_reused: usize,
    /// Re-search only: candidates actually re-certified.
    pub recertified: usize,
    /// Full correcting-process fixpoints executed (`engine.fixpoint_runs`)
    /// and their work — the poisoned-truth fallback on the incremental
    /// path, every probe on the from-scratch oracle.
    pub engine: crate::engine::EngineStats,
}

/// Result of [`find_regions`]: ranked regions plus search diagnostics.
#[derive(Debug, Clone, Default)]
pub struct RegionSearchResult {
    /// Certified regions, ranked ascending by size, at most `top_k`.
    pub regions: Vec<Region>,
    /// Search statistics.
    pub stats: RegionSearchStats,
}

/// One pattern context retained by a [`RegionSearch`] for delta
/// re-certification.
#[derive(Debug, Clone)]
pub(crate) struct ContextRecord {
    pub(crate) pattern: PatternTuple,
    pub(crate) mandatory: AttrSet,
    /// In-scope universe indices (populated only for contexts that
    /// produced candidates).
    pub(crate) truths: Vec<usize>,
}

/// One `(Z, context)` candidate with its certification verdict.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CandidateRecord {
    pub(crate) context: usize,
    pub(crate) attrs: AttrSet,
    /// Extra evidence beyond the mandatory set, sorted ascending (the
    /// lattice's sibling-prefix order).
    pub(crate) cover: Vec<AttrId>,
    pub(crate) certified: bool,
    /// A known-failing truth (universe index) for rejected candidates —
    /// probed first on re-search so rejects die in O(1).
    pub(crate) failing: Option<usize>,
}

/// Everything [`recheck_regions`](crate::region::recheck_regions) needs
/// to patch a search after a master append instead of redoing it.
#[derive(Debug)]
pub struct RegionSearchState {
    pub(crate) contexts: Vec<ContextRecord>,
    pub(crate) candidates: Vec<CandidateRecord>,
    /// Per universe index: was the truth's profile poisoned (some rule
    /// fires a non-truth value)? Poisoned truths are always re-probed on
    /// a master delta — their fixpoints explore non-truth keys.
    pub(crate) poisoned: Vec<bool>,
    pub(crate) universe_len: usize,
    pub(crate) master_rows: usize,
    pub(crate) master_generation: u64,
    /// Every certified region, ranked, *untruncated* — any `top_k` view
    /// is a prefix of this.
    pub(crate) ranked: Vec<Region>,
}

/// A region search whose full candidate lattice is retained, so a master
/// append can be served by [`recheck_regions`] and any `top_k` can be
/// answered without re-searching.
///
/// [`recheck_regions`]: crate::region::recheck_regions
#[derive(Debug)]
pub struct RegionSearch {
    /// The ranked, truncated result (what [`find_regions`] returns).
    pub result: RegionSearchResult,
    pub(crate) state: RegionSearchState,
}

impl RegionSearch {
    /// Every certified region, ranked ascending by size, untruncated.
    pub fn ranked(&self) -> &[Region] {
        &self.state.ranked
    }

    /// The first `k` ranked regions.
    pub fn top(&self, k: usize) -> Vec<Region> {
        self.state.ranked.iter().take(k).cloned().collect()
    }

    /// The master generation this search was certified against.
    pub fn master_generation(&self) -> u64 {
        self.state.master_generation
    }

    /// The universe length this search was certified against.
    pub fn universe_len(&self) -> usize {
        self.state.universe_len
    }
}

/// The static phase, shared by the search, the oracle, and the
/// re-certifier: enumerate contexts, their mandatory sets, and the
/// minimal-cover candidates.
pub(crate) fn static_phase(
    rules: &RuleSet,
    options: &RegionFinderOptions,
) -> (Vec<ContextRecord>, Vec<CandidateRecord>) {
    let contexts = enumerate_contexts(rules);
    let mut records = Vec::with_capacity(contexts.len());
    let mut candidates = Vec::new();
    for (ci, ctx) in contexts.iter().enumerate() {
        let enabled = |_: RuleId, r: &EditingRule| ctx.entails_rule(r);
        let mandatory = unfixable_attrs(rules, &enabled);
        let useful: Vec<AttrId> = useful_evidence_attrs(rules, &enabled)
            .into_iter()
            .filter(|a| !mandatory.contains(a))
            .collect();
        let covers = minimal_covers(
            rules,
            &mandatory,
            &useful,
            &enabled,
            options.max_cover_size,
            options.max_covers_per_context,
        );
        let mandatory_set = AttrSet::from(&mandatory);
        for cover in covers {
            let cover: Vec<AttrId> = cover.into_iter().collect(); // ascending
            let mut attrs = mandatory_set.clone();
            attrs.extend(cover.iter().copied());
            candidates.push(CandidateRecord {
                context: ci,
                attrs,
                cover,
                certified: false,
                failing: None,
            });
        }
        records.push(ContextRecord {
            pattern: ctx.pattern.clone(),
            mandatory: mandatory_set,
            truths: Vec::new(),
        });
    }
    (records, candidates)
}

/// Merge candidate verdicts into ranked regions (identical to the
/// original sequential loop: candidates in static-phase order, regions
/// ranked ascending by `(size, attrs)`). Returns the untruncated ranking
/// and fills the verdict counters of `stats`.
pub(crate) fn build_regions(
    contexts: &[ContextRecord],
    candidates: &[CandidateRecord],
    options: &RegionFinderOptions,
    stats: &mut RegionSearchStats,
) -> Vec<Region> {
    let mut by_attrs: BTreeMap<Vec<AttrId>, Region> = BTreeMap::new();
    for cand in candidates {
        if !cand.certified {
            stats.rejected_by_certification += 1;
            continue;
        }
        if options.require_nonvacuous && contexts[cand.context].truths.is_empty() {
            stats.vacuous += 1;
            continue;
        }
        let key: Vec<AttrId> = cand.attrs.iter().collect();
        by_attrs
            .entry(key.clone())
            .or_insert_with(|| Region::new(key, Vec::new()))
            .add_pattern(contexts[cand.context].pattern.clone());
    }
    let mut regions: Vec<Region> = by_attrs.into_values().collect();
    regions.sort_by(|a, b| {
        a.size()
            .cmp(&b.size())
            .then_with(|| a.attrs().cmp(b.attrs()))
    });
    regions
}

/// Split candidates into contiguous chunks that never cross a context
/// boundary: each chunk is certified sequentially by one worker with a
/// shared prefix lattice; chunks fan out across threads.
pub(crate) fn chunk_candidates(
    candidates: &[CandidateRecord],
    threads: usize,
) -> Vec<Range<usize>> {
    let total = candidates.len();
    let mut chunks = Vec::new();
    if total == 0 {
        return chunks;
    }
    // One chunk per context when sequential (maximal prefix sharing);
    // otherwise bound chunk size so every worker gets work.
    let target = if threads <= 1 {
        total
    } else {
        total.div_ceil(threads * 3)
    };
    let mut start = 0;
    while start < total {
        let ctx = candidates[start].context;
        let mut end = start + 1;
        while end < total && candidates[end].context == ctx && end - start < target {
            end += 1;
        }
        chunks.push(start..end);
        start = end;
    }
    chunks
}

/// Build [`TruthProfile`]s for `needed` universe indices, fanned across
/// the worker threads, and record which truths are poisoned.
pub(crate) fn build_profiles(
    plan: &CompiledRules,
    master: &MasterData,
    universe: &[Tuple],
    needed: &[usize],
    threads: usize,
    profiles: &mut [Option<TruthProfile>],
    poisoned: &mut [bool],
) {
    let built: Vec<TruthProfile> =
        ordered_map::<_, _, std::convert::Infallible, _>(threads, needed.to_vec(), |_, idx| {
            Ok(TruthProfile::build(plan, master, &universe[idx]))
        })
        .expect("profile building is infallible");
    for (&idx, profile) in needed.iter().zip(built) {
        poisoned[idx] = profile.poisoned();
        profiles[idx] = Some(profile);
    }
}

/// Compute top-k certain regions for `rules` against `master`, certified
/// over the `universe` of possible ground-truth input tuples.
///
/// Thin wrapper over [`search_regions`] for callers that only need the
/// ranked result; long-lived services keep the [`RegionSearch`] so
/// master appends can be served by
/// [`recheck_regions`](crate::region::recheck_regions).
pub fn find_regions(
    rules: &RuleSet,
    master: &MasterData,
    universe: &[Tuple],
    options: &RegionFinderOptions,
) -> RegionSearchResult {
    search_regions(rules, master, universe, options).result
}

/// The incremental, parallel region search (see module docs): memoized
/// per-truth rule profiles + lattice closures replace per-candidate
/// fixpoints, candidates fan out across `options.threads` workers, and
/// the returned [`RegionSearch`] retains the candidate verdicts needed
/// for master-delta re-certification.
pub fn search_regions(
    rules: &RuleSet,
    master: &MasterData,
    universe: &[Tuple],
    options: &RegionFinderOptions,
) -> RegionSearch {
    let mut stats = RegionSearchStats::default();
    let plan = CompiledRules::compile(rules, master);
    let (mut contexts, mut candidates) = static_phase(rules, options);
    stats.contexts = contexts.len();
    stats.candidates = candidates.len();

    // In-scope truths, once per candidate-bearing context (the old loop
    // re-matched the pattern per candidate × truth).
    let mut has_candidates = vec![false; contexts.len()];
    for cand in &candidates {
        has_candidates[cand.context] = true;
    }
    for (idx, truth) in universe.iter().enumerate() {
        for (ci, record) in contexts.iter_mut().enumerate() {
            if has_candidates[ci] && record.pattern.matches(truth) {
                record.truths.push(idx);
            }
        }
    }

    let threads = resolve_threads(options.threads);

    // Profile every in-scope truth (contexts partition the universe, but
    // dedup defensively — overlapping patterns cost nothing extra).
    let mut profiles: Vec<Option<TruthProfile>> = vec![None; universe.len()];
    let mut poisoned = vec![false; universe.len()];
    let mut seen = vec![false; universe.len()];
    let mut needed: Vec<usize> = Vec::new();
    for record in &contexts {
        for &idx in &record.truths {
            if !seen[idx] {
                seen[idx] = true;
                needed.push(idx);
            }
        }
    }
    build_profiles(
        &plan,
        master,
        universe,
        &needed,
        threads,
        &mut profiles,
        &mut poisoned,
    );
    stats.truth_profiles = needed.len();

    // Data phase: chunks of sibling candidates, certified in parallel,
    // merged in input order (deterministic at any thread count).
    let chunks = chunk_candidates(&candidates, threads);
    let outcomes = ordered_map::<_, _, std::convert::Infallible, _>(
        threads,
        chunks.clone(),
        |_, range: Range<usize>| {
            let record = &contexts[candidates[range.start].context];
            let mut certifier = ContextCertifier::new(
                &plan,
                master,
                universe,
                &record.truths,
                &profiles,
                record.mandatory.clone(),
            );
            // Probe in cover-lexicographic order for maximal prefix
            // sharing, but report outcomes in candidate order.
            let mut order: Vec<usize> = range.clone().collect();
            order.sort_by(|&a, &b| candidates[a].cover.cmp(&candidates[b].cover));
            let mut out = vec![None; range.len()];
            for i in order {
                let cand = &candidates[i];
                out[i - range.start] = Some(certifier.probe(&cand.attrs, &cand.cover, None));
            }
            let outcomes: Vec<_> = out
                .into_iter()
                .map(|o| o.expect("every slot probed"))
                .collect();
            Ok((outcomes, certifier.stats))
        },
    )
    .expect("certification is infallible");

    for (range, (chunk_outcomes, probe_stats)) in chunks.into_iter().zip(outcomes) {
        stats.closure_probes += probe_stats.closure_probes;
        stats.lattice_hits += probe_stats.lattice_hits;
        stats.engine += probe_stats.engine;
        for (i, outcome) in range.zip(chunk_outcomes) {
            candidates[i].certified = outcome.certified;
            candidates[i].failing = outcome.failing;
        }
    }

    let ranked = build_regions(&contexts, &candidates, options, &mut stats);
    let mut regions = ranked.clone();
    regions.truncate(options.top_k);
    RegionSearch {
        result: RegionSearchResult { regions, stats },
        state: RegionSearchState {
            contexts,
            candidates,
            poisoned,
            universe_len: universe.len(),
            master_rows: master.len(),
            master_generation: master.generation(),
            ranked,
        },
    }
}

/// The pre-lattice data phase: one full diagnostic [`certify_region`]
/// (universe × candidates fixpoints) per candidate, single-threaded.
/// Kept as the equivalence **oracle** and the ablation/baseline arm of
/// `bench_regions` — property tests assert it produces exactly the same
/// regions as [`search_regions`] on every input.
pub fn find_regions_from_scratch(
    rules: &RuleSet,
    master: &MasterData,
    universe: &[Tuple],
    options: &RegionFinderOptions,
) -> RegionSearchResult {
    let mut stats = RegionSearchStats::default();
    let contexts = enumerate_contexts(rules);
    stats.contexts = contexts.len();
    // One compiled plan serves every certification probe of the data
    // phase (universe × candidates fixpoints) — the search's hot loop.
    let plan = CompiledRules::compile(rules, master);

    // Z (sorted attrs) → region under construction.
    let mut by_attrs: BTreeMap<Vec<AttrId>, Region> = BTreeMap::new();

    for ctx in &contexts {
        let enabled = |_: RuleId, r: &EditingRule| ctx.entails_rule(r);
        let mandatory = unfixable_attrs(rules, &enabled);
        let candidates: Vec<AttrId> = useful_evidence_attrs(rules, &enabled)
            .into_iter()
            .filter(|a| !mandatory.contains(a))
            .collect();
        let covers = minimal_covers(
            rules,
            &mandatory,
            &candidates,
            &enabled,
            options.max_cover_size,
            options.max_covers_per_context,
        );
        for cover in covers {
            stats.candidates += 1;
            let mut attrs: AttrSet = AttrSet::from(&mandatory);
            attrs.extend(cover.iter().copied());
            let result = certify_region(&plan, master, &attrs, &ctx.pattern, universe);
            stats.engine += result.engine;
            if !result.certified {
                stats.rejected_by_certification += 1;
                continue;
            }
            if options.require_nonvacuous && result.checked == 0 {
                stats.vacuous += 1;
                continue;
            }
            let key: Vec<AttrId> = attrs.iter().collect();
            by_attrs
                .entry(key.clone())
                .or_insert_with(|| Region::new(key, Vec::new()))
                .add_pattern(ctx.pattern.clone());
        }
    }

    // Drop regions dominated by a certified subset region whose tableau
    // covers at least the same contexts, then rank ascending by size.
    let mut regions: Vec<Region> = by_attrs.into_values().collect();
    regions.sort_by(|a, b| {
        a.size()
            .cmp(&b.size())
            .then_with(|| a.attrs().cmp(b.attrs()))
    });
    regions.truncate(options.top_k);
    RegionSearchResult { regions, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};

    /// The full UK scenario of the paper: 9 rules φ1–φ9, master data with
    /// the two figures' tuples plus extras, and a truth universe derived
    /// from the master rows.
    fn uk_fixture() -> (SchemaRef, RuleSet, MasterData, Vec<Tuple>) {
        let input = Schema::of_strings(
            "customer",
            [
                "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let ms = Schema::of_strings(
            "master",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
            ],
        )
        .unwrap();
        let master_rows: Vec<[&str; 10]> = vec![
            [
                "Robert",
                "Brady",
                "131",
                "6884563",
                "079172485",
                "501 Elm St",
                "Edi",
                "EH8 4AH",
                "11/11/55",
                "M",
            ],
            [
                "Mark",
                "Smith",
                "020",
                "6884564",
                "075568485",
                "20 Baker St",
                "Ldn",
                "NW1 6XE",
                "25/12/67",
                "M",
            ],
            [
                "Nina",
                "Patel",
                "0141",
                "5550101",
                "077001122",
                "3 Clyde Way",
                "Gla",
                "G12 8QQ",
                "01/02/80",
                "F",
            ],
        ];
        let mut b = RelationBuilder::new(ms.clone());
        for row in &master_rows {
            b = b.row_strs(row.iter().copied());
        }
        let master = MasterData::new(b.build().unwrap());

        let t = |n: &str| input.attr_id(n).unwrap();
        let m = |n: &str| ms.attr_id(n).unwrap();
        let mobile = PatternTuple::empty().with_eq(t("type"), Value::str("2"));
        let home = PatternTuple::empty().with_eq(t("type"), Value::str("1"));
        let geo = PatternTuple::empty().with_ne(t("AC"), Value::str("0800"));
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        #[allow(clippy::type_complexity)]
        let specs: Vec<(&str, Vec<(&str, &str)>, Vec<(&str, &str)>, PatternTuple)> = vec![
            (
                "phi1",
                vec![("zip", "zip")],
                vec![("AC", "AC")],
                PatternTuple::empty(),
            ),
            (
                "phi2",
                vec![("zip", "zip")],
                vec![("str", "str")],
                PatternTuple::empty(),
            ),
            (
                "phi3",
                vec![("zip", "zip")],
                vec![("city", "city")],
                PatternTuple::empty(),
            ),
            (
                "phi4",
                vec![("phn", "Mphn")],
                vec![("FN", "FN")],
                mobile.clone(),
            ),
            ("phi5", vec![("phn", "Mphn")], vec![("LN", "LN")], mobile),
            (
                "phi6",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("str", "str")],
                home.clone(),
            ),
            (
                "phi7",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("city", "city")],
                home.clone(),
            ),
            (
                "phi8",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("zip", "zip")],
                home,
            ),
            ("phi9", vec![("AC", "AC")], vec![("city", "city")], geo),
        ];
        for (name, lhs, rhs, pattern) in specs {
            rules
                .add(
                    EditingRule::new(
                        name,
                        &input,
                        &ms,
                        lhs.iter().map(|&(a, b)| (t(a), m(b))).collect::<Vec<_>>(),
                        rhs.iter().map(|&(a, b)| (t(a), m(b))).collect::<Vec<_>>(),
                        pattern,
                    )
                    .unwrap(),
                )
                .unwrap();
        }

        // Truth universe: each master row as a type=1 and a type=2 entity.
        let mut universe = Vec::new();
        for row in &master_rows {
            let [fn_, ln, ac, hphn, mphn, st, city, zip, _dob, _g] = row;
            universe.push(
                Tuple::of_strings(input.clone(), [fn_, ln, ac, hphn, "1", st, city, zip, "CD"])
                    .unwrap(),
            );
            universe.push(
                Tuple::of_strings(
                    input.clone(),
                    [fn_, ln, ac, mphn, "2", st, city, zip, "DVD"],
                )
                .unwrap(),
            );
        }
        (input, rules, master, universe)
    }

    #[test]
    fn contexts_enumerated_over_gates() {
        let (_, rules, _, _) = uk_fixture();
        let contexts = enumerate_contexts(&rules);
        // Gates: type ∈ {1, 2, else} × AC ∈ {0800, else} = 6 contexts.
        assert_eq!(contexts.len(), 6);
    }

    #[test]
    fn context_entailment() {
        let (input, rules, _, _) = uk_fixture();
        let ty = input.attr_id("type").unwrap();
        let ac = input.attr_id("AC").unwrap();
        let ctx = Context {
            pattern: PatternTuple::empty()
                .with_eq(ty, Value::str("2"))
                .with_ne(ac, Value::str("0800")),
        };
        let phi4 = rules.get_by_name("phi4").unwrap().1;
        let phi6 = rules.get_by_name("phi6").unwrap().1;
        let phi9 = rules.get_by_name("phi9").unwrap().1;
        let phi1 = rules.get_by_name("phi1").unwrap().1;
        assert!(ctx.entails_rule(phi4), "type=2 entailed");
        assert!(!ctx.entails_rule(phi6), "type=1 not entailed");
        assert!(ctx.entails_rule(phi9), "AC≠0800 entailed");
        assert!(ctx.entails_rule(phi1), "empty pattern always entailed");
    }

    #[test]
    fn uk_minimal_region_is_the_size4_mobile_region() {
        let (input, rules, master, universe) = uk_fixture();
        let result = find_regions(&rules, &master, &universe, &RegionFinderOptions::default());
        assert!(!result.regions.is_empty(), "stats: {:?}", result.stats);
        let t = |n: &str| input.attr_id(n).unwrap();
        let first = &result.regions[0];
        assert_eq!(
            first.attrs(),
            &[t("phn"), t("type"), t("zip"), t("item")]
                .iter()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()[..],
            "the paper's size-4 region {{zip, phn, type, item}}"
        );
        assert_eq!(first.size(), 4);
        // Its tableau must require type=2 (mobile): under type=1 FN/LN
        // are unfixable.
        let type2_truth = &universe[1];
        assert!(first.covers(type2_truth));
        let type1_truth = &universe[0];
        assert!(!first.covers(type1_truth));
        // Ranking is ascending by size.
        for w in result.regions.windows(2) {
            assert!(w[0].size() <= w[1].size());
        }
    }

    #[test]
    fn uk_type1_regions_include_fn_ln() {
        let (input, rules, master, universe) = uk_fixture();
        let options = RegionFinderOptions {
            top_k: 32,
            ..Default::default()
        };
        let result = find_regions(&rules, &master, &universe, &options);
        let t = |n: &str| input.attr_id(n).unwrap();
        // Some region must cover type=1 truths; any such region contains
        // FN and LN (unfixable without mobile-phone rules).
        let type1_truth = &universe[0];
        let covering: Vec<&Region> = result
            .regions
            .iter()
            .filter(|r| r.covers(type1_truth))
            .collect();
        assert!(!covering.is_empty(), "no region covers type=1 truths");
        for r in covering {
            assert!(r.attrs().contains(&t("FN")), "{:?}", r.attrs());
            assert!(r.attrs().contains(&t("LN")));
        }
    }

    #[test]
    fn certification_rejects_ambiguous_master() {
        // Duplicate a zip with a different street: {zip,…} candidates must
        // fail certification for entities in that zip.
        let (input, rules, _, universe) = uk_fixture();
        let ms = rules.master_schema().clone();
        let mut b = RelationBuilder::new(ms.clone());
        b = b.row_strs([
            "Robert",
            "Brady",
            "131",
            "6884563",
            "079172485",
            "501 Elm St",
            "Edi",
            "EH8 4AH",
            "11/11/55",
            "M",
        ]);
        b = b.row_strs([
            "Jane",
            "Doe",
            "131",
            "1112223",
            "070000001",
            "7 Oak Ave",
            "Edi",
            "EH8 4AH",
            "02/03/90",
            "F",
        ]);
        let master = MasterData::new(b.build().unwrap());
        let zip_only: AttrSet = [
            input.attr_id("zip").unwrap(),
            input.attr_id("phn").unwrap(),
            input.attr_id("type").unwrap(),
            input.attr_id("item").unwrap(),
        ]
        .into();
        let res = certify_region(
            &CompiledRules::compile(&rules, &master),
            &master,
            &zip_only,
            &PatternTuple::empty().with_eq(input.attr_id("type").unwrap(), Value::str("2")),
            &universe[..2],
        );
        assert!(!res.certified, "shared zip with conflicting str must fail");
    }

    #[test]
    fn stats_are_populated() {
        let (_, rules, master, universe) = uk_fixture();
        let result = find_regions(&rules, &master, &universe, &RegionFinderOptions::default());
        assert_eq!(result.stats.contexts, 6);
        assert!(result.stats.candidates > 0);
    }

    #[test]
    fn top_k_truncates() {
        let (_, rules, master, universe) = uk_fixture();
        let options = RegionFinderOptions {
            top_k: 1,
            ..Default::default()
        };
        let result = find_regions(&rules, &master, &universe, &options);
        assert_eq!(result.regions.len(), 1);
    }

    #[test]
    fn no_rules_yields_all_attr_region() {
        let (input, _, master, universe) = uk_fixture();
        let rules = RuleSet::new(input.clone(), master.relation().schema().clone());
        let result = find_regions(&rules, &master, &universe, &RegionFinderOptions::default());
        assert_eq!(result.regions.len(), 1);
        assert_eq!(
            result.regions[0].size(),
            input.arity(),
            "validate everything"
        );
    }
}
