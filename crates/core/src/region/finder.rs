//! The region finder: compute top-k certain regions (paper §2).
//!
//! *"Based on the algorithms in [7], top-k certain regions are
//! pre-computed that are ranked ascendingly by the number of attributes,
//! and are recommended to users as (initial) suggestions."*
//!
//! Finding minimal certain regions is intractable in general ([7]); for
//! the demo's pattern language the search decomposes cleanly:
//!
//! 1. **Context enumeration.** The attributes constrained by any rule
//!    pattern (`type` and `AC` in the UK scenario) partition the input
//!    space. Each *context* picks, per gate attribute, either one of the
//!    constants appearing in patterns or the "anything else" choice. A
//!    rule can be counted on within a context iff the context *entails*
//!    its pattern (every tuple in the context satisfies it).
//! 2. **Static phase.** Within a context, attributes unfixable by the
//!    entailed rules are mandatory; [`minimal_covers`] enumerates the
//!    minimal extra evidence sets whose closure spans the schema.
//! 3. **Data phase.** Each candidate `(Z, context)` is certified against
//!    the scenario's truth universe ([`certify_region`]): the closure can
//!    overshoot when master keys are missing or ambiguous.
//!
//! Certified candidates with the same `Z` merge their contexts into one
//! tableau; regions are ranked ascending by `|Z|` and cut to `top_k`.

use crate::engine::{minimal_covers, unfixable_attrs, useful_evidence_attrs, CompiledRules};
use crate::master::MasterData;
use crate::region::certify::certify_region;
use crate::region::tableau::Region;
use cerfix_relation::{AttrId, AttrSet, Tuple, Value};
use cerfix_rules::{EditingRule, PatternOp, PatternTuple, RuleId, RuleSet};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for the region search.
#[derive(Debug, Clone)]
pub struct RegionFinderOptions {
    /// Number of regions to return (the paper's "top-k").
    pub top_k: usize,
    /// Maximum extra evidence attributes per cover (search depth bound).
    pub max_cover_size: usize,
    /// Maximum minimal covers enumerated per context.
    pub max_covers_per_context: usize,
    /// Require certification to be non-vacuous (at least one truth tuple
    /// in scope). Vacuous contexts produce no region.
    pub require_nonvacuous: bool,
}

impl Default for RegionFinderOptions {
    fn default() -> Self {
        RegionFinderOptions {
            top_k: 8,
            max_cover_size: 6,
            max_covers_per_context: 16,
            require_nonvacuous: true,
        }
    }
}

/// One pattern context: a total choice over the gate attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Context {
    pattern: PatternTuple,
}

impl Context {
    /// Does this context entail `op` on `attr` (i.e. every tuple matching
    /// the context satisfies the cell)?
    fn entails(&self, attr: AttrId, op: &PatternOp) -> bool {
        // Find this context's constraint on the attribute.
        let own = self
            .pattern
            .cells()
            .iter()
            .find(|c| c.attr == attr)
            .map(|c| &c.op);
        match (own, op) {
            (_, PatternOp::Any) => true,
            (Some(PatternOp::Eq(c)), PatternOp::Eq(c2)) => c == c2,
            (Some(PatternOp::Eq(c)), PatternOp::Ne(set)) => !set.contains(c),
            (Some(PatternOp::Ne(excluded)), PatternOp::Ne(set)) => {
                set.iter().all(|v| excluded.contains(v))
            }
            // Unconstrained or Ne-context cannot entail an equality.
            _ => false,
        }
    }

    /// True iff every cell of `rule`'s pattern is entailed.
    fn entails_rule(&self, rule: &EditingRule) -> bool {
        rule.pattern()
            .cells()
            .iter()
            .all(|c| self.entails(c.attr, &c.op))
    }
}

/// Enumerate contexts from the rule patterns: per gate attribute, each
/// equality constant seen in any pattern plus the "else" choice excluding
/// all seen constants.
fn enumerate_contexts(rules: &RuleSet) -> Vec<Context> {
    // Gate attr → constants mentioned in any pattern cell on it.
    let mut gates: BTreeMap<AttrId, BTreeSet<Value>> = BTreeMap::new();
    for (_, rule) in rules.iter() {
        for cell in rule.pattern().cells() {
            let entry = gates.entry(cell.attr).or_default();
            match &cell.op {
                PatternOp::Any => {}
                PatternOp::Eq(v) => {
                    entry.insert(v.clone());
                }
                PatternOp::Ne(vs) => {
                    entry.extend(vs.iter().cloned());
                }
            }
        }
    }
    let mut contexts = vec![Context {
        pattern: PatternTuple::empty(),
    }];
    for (attr, constants) in &gates {
        let mut expanded = Vec::with_capacity(contexts.len() * (constants.len() + 1));
        for ctx in &contexts {
            for c in constants {
                let p = PatternTuple::new(
                    ctx.pattern
                        .cells()
                        .iter()
                        .cloned()
                        .chain(std::iter::once(cerfix_rules::PatternCell {
                            attr: *attr,
                            op: PatternOp::Eq(c.clone()),
                        }))
                        .collect::<Vec<_>>(),
                );
                expanded.push(Context { pattern: p });
            }
            // The "anything else" choice.
            let p = PatternTuple::new(
                ctx.pattern
                    .cells()
                    .iter()
                    .cloned()
                    .chain(std::iter::once(cerfix_rules::PatternCell {
                        attr: *attr,
                        op: PatternOp::Ne(constants.iter().cloned().collect()),
                    }))
                    .collect::<Vec<_>>(),
            );
            expanded.push(Context { pattern: p });
        }
        contexts = expanded;
    }
    contexts
}

/// Diagnostics from a region search.
#[derive(Debug, Clone, Default)]
pub struct RegionSearchStats {
    /// Pattern contexts enumerated.
    pub contexts: usize,
    /// `(Z, context)` candidates produced by the static phase.
    pub candidates: usize,
    /// Candidates rejected by data certification.
    pub rejected_by_certification: usize,
    /// Candidates rejected as vacuous (no truth tuple in scope).
    pub vacuous: usize,
}

/// Result of [`find_regions`]: ranked regions plus search diagnostics.
#[derive(Debug, Clone, Default)]
pub struct RegionSearchResult {
    /// Certified regions, ranked ascending by size, at most `top_k`.
    pub regions: Vec<Region>,
    /// Search statistics.
    pub stats: RegionSearchStats,
}

/// Compute top-k certain regions for `rules` against `master`, certified
/// over the `universe` of possible ground-truth input tuples.
pub fn find_regions(
    rules: &RuleSet,
    master: &MasterData,
    universe: &[Tuple],
    options: &RegionFinderOptions,
) -> RegionSearchResult {
    let mut stats = RegionSearchStats::default();
    let contexts = enumerate_contexts(rules);
    stats.contexts = contexts.len();
    // One compiled plan serves every certification probe of the data
    // phase (universe × candidates fixpoints) — the search's hot loop.
    let plan = CompiledRules::compile(rules, master);

    // Z (sorted attrs) → region under construction.
    let mut by_attrs: BTreeMap<Vec<AttrId>, Region> = BTreeMap::new();

    for ctx in &contexts {
        let enabled = |_: RuleId, r: &EditingRule| ctx.entails_rule(r);
        let mandatory = unfixable_attrs(rules, &enabled);
        let candidates: Vec<AttrId> = useful_evidence_attrs(rules, &enabled)
            .into_iter()
            .filter(|a| !mandatory.contains(a))
            .collect();
        let covers = minimal_covers(
            rules,
            &mandatory,
            &candidates,
            &enabled,
            options.max_cover_size,
            options.max_covers_per_context,
        );
        for cover in covers {
            stats.candidates += 1;
            let mut attrs: AttrSet = AttrSet::from(&mandatory);
            attrs.extend(cover.iter().copied());
            let result = certify_region(&plan, master, &attrs, &ctx.pattern, universe);
            if !result.certified {
                stats.rejected_by_certification += 1;
                continue;
            }
            if options.require_nonvacuous && result.checked == 0 {
                stats.vacuous += 1;
                continue;
            }
            let key: Vec<AttrId> = attrs.iter().collect();
            by_attrs
                .entry(key.clone())
                .or_insert_with(|| Region::new(key, Vec::new()))
                .add_pattern(ctx.pattern.clone());
        }
    }

    // Drop regions dominated by a certified subset region whose tableau
    // covers at least the same contexts, then rank ascending by size.
    let mut regions: Vec<Region> = by_attrs.into_values().collect();
    regions.sort_by(|a, b| {
        a.size()
            .cmp(&b.size())
            .then_with(|| a.attrs().cmp(b.attrs()))
    });
    regions.truncate(options.top_k);
    RegionSearchResult { regions, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};

    /// The full UK scenario of the paper: 9 rules φ1–φ9, master data with
    /// the two figures' tuples plus extras, and a truth universe derived
    /// from the master rows.
    fn uk_fixture() -> (SchemaRef, RuleSet, MasterData, Vec<Tuple>) {
        let input = Schema::of_strings(
            "customer",
            [
                "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let ms = Schema::of_strings(
            "master",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
            ],
        )
        .unwrap();
        let master_rows: Vec<[&str; 10]> = vec![
            [
                "Robert",
                "Brady",
                "131",
                "6884563",
                "079172485",
                "501 Elm St",
                "Edi",
                "EH8 4AH",
                "11/11/55",
                "M",
            ],
            [
                "Mark",
                "Smith",
                "020",
                "6884564",
                "075568485",
                "20 Baker St",
                "Ldn",
                "NW1 6XE",
                "25/12/67",
                "M",
            ],
            [
                "Nina",
                "Patel",
                "0141",
                "5550101",
                "077001122",
                "3 Clyde Way",
                "Gla",
                "G12 8QQ",
                "01/02/80",
                "F",
            ],
        ];
        let mut b = RelationBuilder::new(ms.clone());
        for row in &master_rows {
            b = b.row_strs(row.iter().copied());
        }
        let master = MasterData::new(b.build().unwrap());

        let t = |n: &str| input.attr_id(n).unwrap();
        let m = |n: &str| ms.attr_id(n).unwrap();
        let mobile = PatternTuple::empty().with_eq(t("type"), Value::str("2"));
        let home = PatternTuple::empty().with_eq(t("type"), Value::str("1"));
        let geo = PatternTuple::empty().with_ne(t("AC"), Value::str("0800"));
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        #[allow(clippy::type_complexity)]
        let specs: Vec<(&str, Vec<(&str, &str)>, Vec<(&str, &str)>, PatternTuple)> = vec![
            (
                "phi1",
                vec![("zip", "zip")],
                vec![("AC", "AC")],
                PatternTuple::empty(),
            ),
            (
                "phi2",
                vec![("zip", "zip")],
                vec![("str", "str")],
                PatternTuple::empty(),
            ),
            (
                "phi3",
                vec![("zip", "zip")],
                vec![("city", "city")],
                PatternTuple::empty(),
            ),
            (
                "phi4",
                vec![("phn", "Mphn")],
                vec![("FN", "FN")],
                mobile.clone(),
            ),
            ("phi5", vec![("phn", "Mphn")], vec![("LN", "LN")], mobile),
            (
                "phi6",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("str", "str")],
                home.clone(),
            ),
            (
                "phi7",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("city", "city")],
                home.clone(),
            ),
            (
                "phi8",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("zip", "zip")],
                home,
            ),
            ("phi9", vec![("AC", "AC")], vec![("city", "city")], geo),
        ];
        for (name, lhs, rhs, pattern) in specs {
            rules
                .add(
                    EditingRule::new(
                        name,
                        &input,
                        &ms,
                        lhs.iter().map(|&(a, b)| (t(a), m(b))).collect::<Vec<_>>(),
                        rhs.iter().map(|&(a, b)| (t(a), m(b))).collect::<Vec<_>>(),
                        pattern,
                    )
                    .unwrap(),
                )
                .unwrap();
        }

        // Truth universe: each master row as a type=1 and a type=2 entity.
        let mut universe = Vec::new();
        for row in &master_rows {
            let [fn_, ln, ac, hphn, mphn, st, city, zip, _dob, _g] = row;
            universe.push(
                Tuple::of_strings(input.clone(), [fn_, ln, ac, hphn, "1", st, city, zip, "CD"])
                    .unwrap(),
            );
            universe.push(
                Tuple::of_strings(
                    input.clone(),
                    [fn_, ln, ac, mphn, "2", st, city, zip, "DVD"],
                )
                .unwrap(),
            );
        }
        (input, rules, master, universe)
    }

    #[test]
    fn contexts_enumerated_over_gates() {
        let (_, rules, _, _) = uk_fixture();
        let contexts = enumerate_contexts(&rules);
        // Gates: type ∈ {1, 2, else} × AC ∈ {0800, else} = 6 contexts.
        assert_eq!(contexts.len(), 6);
    }

    #[test]
    fn context_entailment() {
        let (input, rules, _, _) = uk_fixture();
        let ty = input.attr_id("type").unwrap();
        let ac = input.attr_id("AC").unwrap();
        let ctx = Context {
            pattern: PatternTuple::empty()
                .with_eq(ty, Value::str("2"))
                .with_ne(ac, Value::str("0800")),
        };
        let phi4 = rules.get_by_name("phi4").unwrap().1;
        let phi6 = rules.get_by_name("phi6").unwrap().1;
        let phi9 = rules.get_by_name("phi9").unwrap().1;
        let phi1 = rules.get_by_name("phi1").unwrap().1;
        assert!(ctx.entails_rule(phi4), "type=2 entailed");
        assert!(!ctx.entails_rule(phi6), "type=1 not entailed");
        assert!(ctx.entails_rule(phi9), "AC≠0800 entailed");
        assert!(ctx.entails_rule(phi1), "empty pattern always entailed");
    }

    #[test]
    fn uk_minimal_region_is_the_size4_mobile_region() {
        let (input, rules, master, universe) = uk_fixture();
        let result = find_regions(&rules, &master, &universe, &RegionFinderOptions::default());
        assert!(!result.regions.is_empty(), "stats: {:?}", result.stats);
        let t = |n: &str| input.attr_id(n).unwrap();
        let first = &result.regions[0];
        assert_eq!(
            first.attrs(),
            &[t("phn"), t("type"), t("zip"), t("item")]
                .iter()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()[..],
            "the paper's size-4 region {{zip, phn, type, item}}"
        );
        assert_eq!(first.size(), 4);
        // Its tableau must require type=2 (mobile): under type=1 FN/LN
        // are unfixable.
        let type2_truth = &universe[1];
        assert!(first.covers(type2_truth));
        let type1_truth = &universe[0];
        assert!(!first.covers(type1_truth));
        // Ranking is ascending by size.
        for w in result.regions.windows(2) {
            assert!(w[0].size() <= w[1].size());
        }
    }

    #[test]
    fn uk_type1_regions_include_fn_ln() {
        let (input, rules, master, universe) = uk_fixture();
        let options = RegionFinderOptions {
            top_k: 32,
            ..Default::default()
        };
        let result = find_regions(&rules, &master, &universe, &options);
        let t = |n: &str| input.attr_id(n).unwrap();
        // Some region must cover type=1 truths; any such region contains
        // FN and LN (unfixable without mobile-phone rules).
        let type1_truth = &universe[0];
        let covering: Vec<&Region> = result
            .regions
            .iter()
            .filter(|r| r.covers(type1_truth))
            .collect();
        assert!(!covering.is_empty(), "no region covers type=1 truths");
        for r in covering {
            assert!(r.attrs().contains(&t("FN")), "{:?}", r.attrs());
            assert!(r.attrs().contains(&t("LN")));
        }
    }

    #[test]
    fn certification_rejects_ambiguous_master() {
        // Duplicate a zip with a different street: {zip,…} candidates must
        // fail certification for entities in that zip.
        let (input, rules, _, universe) = uk_fixture();
        let ms = rules.master_schema().clone();
        let mut b = RelationBuilder::new(ms.clone());
        b = b.row_strs([
            "Robert",
            "Brady",
            "131",
            "6884563",
            "079172485",
            "501 Elm St",
            "Edi",
            "EH8 4AH",
            "11/11/55",
            "M",
        ]);
        b = b.row_strs([
            "Jane",
            "Doe",
            "131",
            "1112223",
            "070000001",
            "7 Oak Ave",
            "Edi",
            "EH8 4AH",
            "02/03/90",
            "F",
        ]);
        let master = MasterData::new(b.build().unwrap());
        let zip_only: AttrSet = [
            input.attr_id("zip").unwrap(),
            input.attr_id("phn").unwrap(),
            input.attr_id("type").unwrap(),
            input.attr_id("item").unwrap(),
        ]
        .into();
        let res = certify_region(
            &CompiledRules::compile(&rules, &master),
            &master,
            &zip_only,
            &PatternTuple::empty().with_eq(input.attr_id("type").unwrap(), Value::str("2")),
            &universe[..2],
        );
        assert!(!res.certified, "shared zip with conflicting str must fail");
    }

    #[test]
    fn stats_are_populated() {
        let (_, rules, master, universe) = uk_fixture();
        let result = find_regions(&rules, &master, &universe, &RegionFinderOptions::default());
        assert_eq!(result.stats.contexts, 6);
        assert!(result.stats.candidates > 0);
    }

    #[test]
    fn top_k_truncates() {
        let (_, rules, master, universe) = uk_fixture();
        let options = RegionFinderOptions {
            top_k: 1,
            ..Default::default()
        };
        let result = find_regions(&rules, &master, &universe, &options);
        assert_eq!(result.regions.len(), 1);
    }

    #[test]
    fn no_rules_yields_all_attr_region() {
        let (input, _, master, universe) = uk_fixture();
        let rules = RuleSet::new(input.clone(), master.relation().schema().clone());
        let result = find_regions(&rules, &master, &universe, &RegionFinderOptions::default());
        assert_eq!(result.regions.len(), 1);
        assert_eq!(
            result.regions[0].size(),
            input.arity(),
            "validate everything"
        );
    }
}
