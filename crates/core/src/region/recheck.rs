//! Master-delta re-certification: patch a [`RegionSearch`] after a
//! master-data append instead of re-searching from scratch.
//!
//! An append can only change a rule's behaviour for truths whose join
//! key collides with an appended row (`u[X] = s_new[Xm]` for some rule):
//! everything else probes exactly the posting lists it probed before.
//! So a prior search's verdicts can be patched by re-certifying only:
//!
//! * truths **touched** by a changed key (some entailed rule of their
//!   context watches it),
//! * truths whose profile was **poisoned** (their fixpoints explore
//!   non-truth keys, which the key analysis cannot bound), and
//! * **new** truths appended to the universe.
//!
//! Candidates none of whose in-scope truths fall in that set keep their
//! verdict; rejected candidates whose recorded failing truth is outside
//! it stay rejected after **zero** probes (the failing truth still
//! fails). Every other candidate is re-probed — previously-failing truth
//! first, so re-rejects die in O(1). The patched result is equal to a
//! full [`search_regions`] on the new master (property-tested in
//! `tests/region_incremental.rs`); when the prior state cannot be
//! trusted (rules drifted, universe shrank, generation moved backwards)
//! the function falls back to a full search.

use crate::engine::CompiledRules;
use crate::master::MasterData;
use crate::region::finder::{
    build_profiles, build_regions, resolve_threads, search_regions, static_phase, RegionSearch,
    RegionSearchState, RegionSearchStats,
};
use crate::region::lattice::{ContextCertifier, TruthProfile};
use cerfix_relation::{Tuple, Value};
use cerfix_rules::RuleSet;
use std::collections::HashSet;

/// Re-certify `prior` against a master that has been appended to (and a
/// universe extended accordingly: `universe[..prior.universe_len()]`
/// must be the truths the prior search certified). Returns the patched
/// search, equal to a full [`search_regions`] on the new master.
pub fn recheck_regions(
    rules: &RuleSet,
    master: &MasterData,
    universe: &[Tuple],
    prior: &RegionSearch,
    options: &crate::region::RegionFinderOptions,
) -> RegionSearch {
    let st = &prior.state;
    if master.generation() < st.master_generation
        || master.len() < st.master_rows
        || universe.len() < st.universe_len
    {
        return search_regions(rules, master, universe, options);
    }
    // The static phase must reproduce the prior lattice exactly —
    // anything else (rules or options drifted) voids the stored verdicts.
    let (mut contexts, mut candidates) = static_phase(rules, options);
    if contexts.len() != st.contexts.len()
        || candidates.len() != st.candidates.len()
        || contexts
            .iter()
            .zip(&st.contexts)
            .any(|(a, b)| a.pattern != b.pattern || a.mandatory != b.mandatory)
        || candidates
            .iter()
            .zip(&st.candidates)
            .any(|(a, b)| a.context != b.context || a.attrs != b.attrs)
    {
        return search_regions(rules, master, universe, options);
    }
    // Seed the fresh skeleton with the prior verdicts and truth scopes.
    for (cand, old) in candidates.iter_mut().zip(&st.candidates) {
        cand.certified = old.certified;
        cand.failing = old.failing;
    }
    for (record, old) in contexts.iter_mut().zip(&st.contexts) {
        record.truths = old.truths.clone();
    }

    let mut stats = RegionSearchStats {
        contexts: contexts.len(),
        candidates: candidates.len(),
        ..Default::default()
    };
    let plan = CompiledRules::compile(rules, master);
    let threads = resolve_threads(options.threads);

    let mut has_candidates = vec![false; contexts.len()];
    for cand in &candidates {
        has_candidates[cand.context] = true;
    }
    // New truths join their contexts' scopes.
    for (idx, truth) in universe.iter().enumerate().skip(st.universe_len) {
        for (ci, record) in contexts.iter_mut().enumerate() {
            if has_candidates[ci] && record.pattern.matches(truth) {
                record.truths.push(idx);
            }
        }
    }

    // Which old truths does the append touch? Per *distinct join*
    // `(X, Xm)` across the plan's rules, the set of keys the appended
    // rows introduce; a truth is touched iff some join's projection of
    // it hits one (the join-level analogue of the compiled plan's
    // attribute watch lists — rules sharing a join share the check).
    let appended: Vec<&Tuple> = master
        .relation()
        .iter()
        .skip(st.master_rows)
        .map(|(_, s)| s)
        .collect();
    let mut joins: Vec<(&[cerfix_relation::AttrId], HashSet<Vec<Value>>)> = Vec::new();
    for rule in &plan.rules {
        if joins
            .iter()
            .any(|(input_lhs, _)| *input_lhs == &rule.input_lhs[..])
        {
            // Same input-side projection: if two rules map it to
            // different master attrs, merge their key sets (membership
            // stays an over-approximation in the right direction).
            let entry = joins
                .iter_mut()
                .find(|(input_lhs, _)| *input_lhs == &rule.input_lhs[..])
                .expect("just matched");
            for s in &appended {
                let key: Vec<Value> = rule.master_lhs.iter().map(|&a| s.get(a).clone()).collect();
                if !key.iter().any(Value::is_null) {
                    entry.1.insert(key);
                }
            }
        } else {
            let mut keys = HashSet::new();
            for s in &appended {
                let key: Vec<Value> = rule.master_lhs.iter().map(|&a| s.get(a).clone()).collect();
                if !key.iter().any(Value::is_null) {
                    keys.insert(key);
                }
            }
            joins.push((&rule.input_lhs, keys));
        }
    }
    let truth_touched = |idx: usize| -> bool {
        if appended.is_empty() {
            return false;
        }
        let truth = &universe[idx];
        let mut key: Vec<Value> = Vec::new();
        joins.iter().any(|(input_lhs, keys)| {
            !keys.is_empty() && {
                key.clear();
                key.extend(input_lhs.iter().map(|&a| truth.get(a).clone()));
                keys.contains(&key)
            }
        })
    };

    // Per candidate-bearing context: the truths that must be re-probed.
    let mut recheck: Vec<Vec<usize>> = vec![Vec::new(); contexts.len()];
    let mut touched_cache: Vec<Option<bool>> = vec![None; st.universe_len];
    for (ci, record) in contexts.iter().enumerate() {
        if !has_candidates[ci] {
            continue;
        }
        for &idx in &record.truths {
            // New truths and poisoned ones (fixpoint-certified: the key
            // analysis cannot bound them) always re-probe; the rest only
            // when an appended join key touches them.
            let needs = idx >= st.universe_len
                || st.poisoned[idx]
                || *touched_cache[idx].get_or_insert_with(|| truth_touched(idx));
            if needs {
                recheck[ci].push(idx);
            }
        }
    }

    // Profiles for every truth a probe may visit: the recheck sets, plus
    // the full scope of contexts holding a candidate that needs a full
    // re-probe (its recorded failing truth is in the recheck set).
    let full_probe: Vec<bool> = candidates
        .iter()
        .map(|cand| {
            !cand.certified
                && cand
                    .failing
                    .is_some_and(|f| recheck[cand.context].contains(&f))
        })
        .collect();
    let mut needed: Vec<usize> = Vec::new();
    let mut seen = vec![false; universe.len()];
    for (ci, record) in contexts.iter().enumerate() {
        let full_context = candidates
            .iter()
            .zip(&full_probe)
            .any(|(cand, &full)| full && cand.context == ci);
        let scope: &[usize] = if full_context {
            &record.truths
        } else {
            &recheck[ci]
        };
        for &idx in scope {
            if !seen[idx] {
                seen[idx] = true;
                needed.push(idx);
            }
        }
    }
    let mut profiles: Vec<Option<TruthProfile>> = vec![None; universe.len()];
    let mut poisoned = st.poisoned.clone();
    poisoned.resize(universe.len(), false);
    build_profiles(
        &plan,
        master,
        universe,
        &needed,
        threads,
        &mut profiles,
        &mut poisoned,
    );
    stats.truth_profiles = needed.len();

    // Re-probe, context by context. Two certifiers per context: one over
    // the recheck set (certified candidates only re-verify what changed)
    // and one over the full scope (rejected candidates whose failing
    // truth changed re-certify end-to-end, previously-failing first).
    for ci in 0..contexts.len() {
        if !has_candidates[ci] {
            continue;
        }
        let record = &contexts[ci];
        let mut delta_certifier: Option<ContextCertifier<'_>> = None;
        let mut full_certifier: Option<ContextCertifier<'_>> = None;
        for (i, cand) in candidates.iter_mut().enumerate() {
            if cand.context != ci {
                continue;
            }
            if cand.certified {
                if recheck[ci].is_empty() {
                    stats.candidates_reused += 1;
                    continue;
                }
                let certifier = delta_certifier.get_or_insert_with(|| {
                    ContextCertifier::new(
                        &plan,
                        master,
                        universe,
                        &recheck[ci],
                        &profiles,
                        record.mandatory.clone(),
                    )
                });
                let outcome = certifier.probe(&cand.attrs, &cand.cover, None);
                stats.recertified += 1;
                if !outcome.certified {
                    cand.certified = false;
                    cand.failing = outcome.failing;
                }
            } else if full_probe[i] {
                let certifier = full_certifier.get_or_insert_with(|| {
                    ContextCertifier::new(
                        &plan,
                        master,
                        universe,
                        &record.truths,
                        &profiles,
                        record.mandatory.clone(),
                    )
                });
                let outcome = certifier.probe(&cand.attrs, &cand.cover, cand.failing);
                stats.recertified += 1;
                cand.certified = outcome.certified;
                cand.failing = outcome.failing;
            } else {
                // The recorded failing truth is untouched and unpoisoned:
                // it still fails, the candidate stays rejected, 0 probes.
                stats.candidates_reused += 1;
            }
        }
        for certifier in [delta_certifier, full_certifier].into_iter().flatten() {
            stats.closure_probes += certifier.stats.closure_probes;
            stats.lattice_hits += certifier.stats.lattice_hits;
            stats.engine += certifier.stats.engine;
        }
    }

    let ranked = build_regions(&contexts, &candidates, options, &mut stats);
    let mut regions = ranked.clone();
    regions.truncate(options.top_k);
    RegionSearch {
        result: crate::region::RegionSearchResult { regions, stats },
        state: RegionSearchState {
            contexts,
            candidates,
            poisoned,
            universe_len: universe.len(),
            master_rows: master.len(),
            master_generation: master.generation(),
            ranked,
        },
    }
}
