//! Data-level certification of candidate regions.
//!
//! The attribute-level closure (static phase) over-approximates: a rule
//! counted on by the closure can still stall at run time when its join key
//! is absent from master data or matches master tuples that disagree
//! (certain-application semantics). Certification closes that gap by
//! *simulating the correcting process* for every possible ground truth:
//!
//! For each truth tuple `u` in the scenario's universe that matches the
//! candidate pattern, build the input tuple a user would present —
//! `t[Z] = u[Z]` validated, everything else unknown — run the fixpoint,
//! and require (a) every attribute becomes validated and (b) every fixed
//! value equals the truth. A candidate failing for *any* truth is not a
//! certain region.
//!
//! The universe is scenario-provided (`cerfix-gen` derives it from master
//! data: one truth per master tuple per pattern context), mirroring the
//! MDM assumption that entities to be cleaned are represented in `Dm`.

use crate::engine::{CompiledRules, EngineStats};
use crate::master::MasterData;
use crate::region::lattice::certify_truth_fixpoint;
use cerfix_relation::{AttrSet, Tuple, Value};
use cerfix_rules::{PatternTuple, RuleSet};

/// How much evidence [`certify_region_mode`] gathers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifyMode {
    /// Stop at the first failing truth: the verdict is identical, the
    /// failure list holds at most that one truth, and `checked` counts
    /// only the truths examined. The region finder's search loop runs in
    /// this mode — rejected candidates die in O(1) probes.
    Probe,
    /// Examine every applicable truth and report up to 8 failures — the
    /// diagnostic mode behind [`certify_region`].
    Diagnose,
}

/// Outcome of certifying one `(Z, pattern)` candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyResult {
    /// True iff every applicable truth tuple reached a full, correct fix.
    pub certified: bool,
    /// Number of universe tuples examined (every applicable one in
    /// [`CertifyMode::Diagnose`]; up to and including the first failure
    /// in [`CertifyMode::Probe`]).
    pub checked: usize,
    /// Indices (into the universe) of failing truths, capped at 8.
    pub failures: Vec<usize>,
    /// Fixpoint work performed (one run per examined truth).
    pub engine: EngineStats,
}

/// Certify candidate attributes `attrs` under `pattern` against the truth
/// `universe`, examining every applicable truth (diagnostic mode).
///
/// Runs one delta fixpoint per applicable truth on the compiled `plan` —
/// this is the **from-scratch** data-phase unit, kept as the oracle the
/// incremental lattice path is property-tested against (the production
/// search uses [`find_regions`](crate::region::find_regions), which
/// memoizes per-truth rule profiles instead of re-running fixpoints).
///
/// An empty applicable set certifies vacuously (`checked == 0`); callers
/// that want non-vacuous regions should check `checked > 0`.
pub fn certify_region(
    plan: &CompiledRules,
    master: &MasterData,
    attrs: &AttrSet,
    pattern: &PatternTuple,
    universe: &[Tuple],
) -> CertifyResult {
    certify_region_mode(
        plan,
        master,
        attrs,
        pattern,
        universe,
        CertifyMode::Diagnose,
    )
}

/// [`certify_region`] with an explicit [`CertifyMode`]: `Probe` stops at
/// the first failing truth (same verdict, O(1) work on rejects), while
/// `Diagnose` gathers the capped failure list on demand.
pub fn certify_region_mode(
    plan: &CompiledRules,
    master: &MasterData,
    attrs: &AttrSet,
    pattern: &PatternTuple,
    universe: &[Tuple],
    mode: CertifyMode,
) -> CertifyResult {
    let mut result = CertifyResult {
        certified: true,
        checked: 0,
        failures: Vec::new(),
        engine: EngineStats::default(),
    };
    for (idx, truth) in universe.iter().enumerate() {
        if !pattern.matches(truth) {
            continue;
        }
        result.checked += 1;
        // Input as the monitor sees it after the user validates Z with the
        // true values: Z cells carry truth, the rest is unknown.
        if !certify_truth_fixpoint(plan, master, attrs, truth, &mut result.engine) {
            result.certified = false;
            if result.failures.len() < 8 {
                result.failures.push(idx);
            }
            if mode == CertifyMode::Probe {
                break;
            }
        }
    }
    result
}

/// Convenience: does validating `attrs` yield a full correct fix for this
/// single `truth` tuple? Compiles a throwaway plan — prefer
/// [`certifies_for_with_plan`] (or
/// [`DataMonitor::certifies`](crate::monitor::DataMonitor::certifies),
/// which routes through the monitor's cached plan) anywhere the rule set
/// is already compiled.
pub fn certifies_for(rules: &RuleSet, master: &MasterData, attrs: &AttrSet, truth: &Tuple) -> bool {
    let plan = CompiledRules::compile(rules, master);
    certifies_for_with_plan(&plan, master, attrs, truth)
}

/// Plan-taking form of [`certifies_for`]: one delta fixpoint on an
/// already-compiled plan, no per-call compilation.
pub fn certifies_for_with_plan(
    plan: &CompiledRules,
    master: &MasterData,
    attrs: &AttrSet,
    truth: &Tuple,
) -> bool {
    let mut engine = EngineStats::default();
    certify_truth_fixpoint(plan, master, attrs, truth, &mut engine)
}

/// Build the "unknown form" input for a truth tuple: `Z` validated with
/// truth values, other cells null. Exposed for the experiment harness.
pub fn masked_input(truth: &Tuple, attrs: &AttrSet) -> Tuple {
    let mut t = Tuple::all_null(truth.schema().clone());
    for a in attrs {
        t.set(a, truth.get(a).clone()).expect("attr in schema");
    }
    debug_assert!(t
        .values()
        .iter()
        .enumerate()
        .all(|(i, v)| { attrs.contains(i) || matches!(v, Value::Null) }));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};
    use cerfix_rules::EditingRule;

    fn plan_for(rules: &RuleSet, master: &MasterData) -> CompiledRules {
        CompiledRules::compile(rules, master)
    }

    /// Two-rule fixture: zip→city and zip→AC, with a master where one zip
    /// key is ambiguous (two rows, different city).
    fn fixture() -> (SchemaRef, RuleSet, MasterData) {
        let input = Schema::of_strings("in", ["AC", "city", "zip"]).unwrap();
        let ms = Schema::of_strings("m", ["AC", "city", "zip"]).unwrap();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "Edi", "EH8"])
                .row_strs(["020", "Ldn", "SW1"])
                .row_strs(["0141", "Gla", "G12"])
                .row_strs(["0141", "Partick", "G12"]) // ambiguous zip G12 for city
                .build()
                .unwrap(),
        );
        let pair = |n: &str| (input.attr_id(n).unwrap(), ms.attr_id(n).unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "zip_city",
                    &input,
                    &ms,
                    vec![pair("zip")],
                    vec![pair("city")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        rules
            .add(
                EditingRule::new(
                    "zip_ac",
                    &input,
                    &ms,
                    vec![pair("zip")],
                    vec![pair("AC")],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        (input, rules, master)
    }

    fn truth(input: &SchemaRef, vals: [&str; 3]) -> Tuple {
        Tuple::of_strings(input.clone(), vals).unwrap()
    }

    #[test]
    fn certifies_clean_universe() {
        let (input, rules, master) = fixture();
        let zip: AttrSet = [input.attr_id("zip").unwrap()].into();
        let universe = vec![
            truth(&input, ["131", "Edi", "EH8"]),
            truth(&input, ["020", "Ldn", "SW1"]),
        ];
        let res = certify_region(
            &plan_for(&rules, &master),
            &master,
            &zip,
            &PatternTuple::empty(),
            &universe,
        );
        assert!(res.certified);
        assert_eq!(res.checked, 2);
        assert!(res.failures.is_empty());
    }

    #[test]
    fn ambiguous_master_key_fails_certification() {
        // G12 maps to two cities: closure says {zip} covers, but the
        // fixpoint stalls on the ambiguous key ⇒ certification must fail.
        let (input, rules, master) = fixture();
        let zip: AttrSet = [input.attr_id("zip").unwrap()].into();
        let universe = vec![
            truth(&input, ["131", "Edi", "EH8"]),
            truth(&input, ["0141", "Gla", "G12"]),
        ];
        let res = certify_region(
            &plan_for(&rules, &master),
            &master,
            &zip,
            &PatternTuple::empty(),
            &universe,
        );
        assert!(!res.certified);
        assert_eq!(res.failures, vec![1]);
        assert_eq!(res.checked, 2);
    }

    #[test]
    fn pattern_scopes_the_check() {
        // Restrict the pattern to zip='EH8': the ambiguous G12 truth is
        // out of scope, so certification succeeds (non-vacuously).
        let (input, rules, master) = fixture();
        let zip_id = input.attr_id("zip").unwrap();
        let zip: AttrSet = [zip_id].into();
        let pattern = PatternTuple::empty().with_eq(zip_id, Value::str("EH8"));
        let universe = vec![
            truth(&input, ["131", "Edi", "EH8"]),
            truth(&input, ["0141", "Gla", "G12"]),
        ];
        let res = certify_region(
            &plan_for(&rules, &master),
            &master,
            &zip,
            &pattern,
            &universe,
        );
        assert!(res.certified);
        assert_eq!(res.checked, 1);
    }

    #[test]
    fn vacuous_certification_is_flagged_by_checked_zero() {
        let (input, rules, master) = fixture();
        let zip_id = input.attr_id("zip").unwrap();
        let pattern = PatternTuple::empty().with_eq(zip_id, Value::str("NOPE"));
        let res = certify_region(
            &plan_for(&rules, &master),
            &master,
            &[zip_id].into(),
            &pattern,
            &[truth(&input, ["131", "Edi", "EH8"])],
        );
        assert!(res.certified);
        assert_eq!(res.checked, 0, "caller must treat checked=0 as vacuous");
    }

    #[test]
    fn unknown_truth_entity_fails() {
        // A truth whose zip is absent from master: the chain never fires.
        let (input, rules, master) = fixture();
        let zip: AttrSet = [input.attr_id("zip").unwrap()].into();
        let res = certify_region(
            &plan_for(&rules, &master),
            &master,
            &zip,
            &PatternTuple::empty(),
            &[truth(&input, ["999", "Nowhere", "ZZ9"])],
        );
        assert!(!res.certified);
    }

    #[test]
    fn insufficient_attrs_fail() {
        // Validating only AC fixes nothing (no rule keys on AC).
        let (input, rules, master) = fixture();
        let ac: AttrSet = [input.attr_id("AC").unwrap()].into();
        assert!(!certifies_for(
            &rules,
            &master,
            &ac,
            &truth(&input, ["131", "Edi", "EH8"])
        ));
        // Validating everything trivially certifies.
        let all: AttrSet = input.all_attr_ids().collect();
        assert!(certifies_for(
            &rules,
            &master,
            &all,
            &truth(&input, ["131", "Edi", "EH8"])
        ));
    }

    #[test]
    fn masked_input_shape() {
        let (input, _, _) = fixture();
        let u = truth(&input, ["131", "Edi", "EH8"]);
        let zip_id = input.attr_id("zip").unwrap();
        let masked = masked_input(&u, &[zip_id].into());
        assert_eq!(masked.get(zip_id), &Value::str("EH8"));
        assert!(masked.get(input.attr_id("AC").unwrap()).is_null());
        assert!(masked.get(input.attr_id("city").unwrap()).is_null());
    }
}
