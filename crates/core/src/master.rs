//! The master data manager (paper §2).
//!
//! Owns the master relation `Dm` — "a single repository of high-quality
//! data", assumed consistent and accurate — and answers the one query the
//! correcting process needs: *which master tuples match `t[X] = s[Xm]` for
//! a rule's LHS, and do they agree on the fix values `s[Bm]`?*
//!
//! Per distinct `Xm` attribute list, a [`HashIndex`] is built on first use
//! and cached, so rule application is O(1) expected per lookup regardless
//! of `|Dm|`. Experiment `T6` ablates the index against full scans; `T3`
//! sweeps `|Dm|` to show the resulting flat latency curve.

use cerfix_relation::{AttrId, HashIndex, Relation, RowId, SchemaRef, Tuple, Value};
use cerfix_rules::EditingRule;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of a certain-lookup for one rule against one input tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertainLookup {
    /// No master tuple matches `t[X]` (under the rule's join).
    NoMatch,
    /// Master tuples match but disagree on at least one fix value, so no
    /// *certain* fix exists for this rule on this tuple.
    Ambiguous {
        /// Number of matching master tuples.
        matches: usize,
    },
    /// All matching master tuples agree: the unique fix values, one per
    /// RHS pair, plus a witness row for provenance.
    Unique {
        /// The agreed fix values, position-wise with the rule's RHS.
        values: Vec<Value>,
        /// A master row carrying those values (the first match), recorded
        /// in audit provenance.
        witness: RowId,
        /// Number of matching master tuples (all agreeing).
        matches: usize,
    },
}

/// What one master append batch changed — the input of delta
/// re-certification ([`recheck_regions`](crate::region::recheck_regions)
/// re-probes only regions whose entailed rules watch a touched key).
#[derive(Debug, Clone)]
pub struct MasterDelta {
    /// Row id of the first appended row.
    pub first_row: RowId,
    /// Number of rows appended.
    pub appended: usize,
    /// The master generation after the append.
    pub generation: u64,
    /// Per materialized index (by its attribute list): the distinct join
    /// keys the appended rows introduced or extended.
    pub touched_keys: Vec<(Vec<AttrId>, Vec<Vec<Value>>)>,
}

/// The master data manager: `Dm` plus per-LHS lookup indexes.
///
/// Indexes are stored as immutable `Arc<HashIndex>` snapshots: the
/// serving path (compiled rule plans, `for_each_matching_row`) holds an
/// `Arc` and probes lock-free; the `RwLock` is touched only to fetch or
/// build a snapshot, never per row. Appends bump [`generation`] so
/// holders of stale snapshots (e.g. a [`CompiledRules`] plan built
/// before the append) can detect that they must re-resolve.
///
/// [`generation`]: MasterData::generation
/// [`CompiledRules`]: crate::engine::CompiledRules
#[derive(Debug)]
pub struct MasterData {
    relation: Relation,
    /// Index cache keyed by the master-side LHS attribute list.
    /// `RwLock` so concurrent monitor streams share lazily-built indexes.
    indexes: RwLock<HashMap<Vec<AttrId>, Arc<HashIndex>>>,
    /// When false, lookups scan the relation (the `T6` ablation arm).
    use_indexes: bool,
    /// Bumped on every append; lets compiled plans detect staleness.
    generation: AtomicU64,
}

impl MasterData {
    /// Wrap a master relation, with indexing enabled.
    pub fn new(relation: Relation) -> MasterData {
        MasterData {
            relation,
            indexes: RwLock::new(HashMap::new()),
            use_indexes: true,
            generation: AtomicU64::new(0),
        }
    }

    /// Wrap a master relation with indexing disabled (every lookup scans).
    /// Exists for the indexing ablation; production paths use [`new`].
    ///
    /// [`new`]: MasterData::new
    pub fn new_unindexed(relation: Relation) -> MasterData {
        MasterData {
            relation,
            indexes: RwLock::new(HashMap::new()),
            use_indexes: false,
            generation: AtomicU64::new(0),
        }
    }

    /// The master schema.
    pub fn schema(&self) -> &SchemaRef {
        self.relation.schema()
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Number of master tuples.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// True iff the master relation is empty.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Master tuple by row id.
    pub fn tuple(&self, row: RowId) -> Option<&Tuple> {
        self.relation.row(row)
    }

    /// True iff lookups go through hash indexes (false on the `T6`
    /// ablation arm, where every lookup scans the relation).
    pub fn uses_indexes(&self) -> bool {
        self.use_indexes
    }

    /// Monotone counter bumped on every [`append`](MasterData::append).
    /// Compiled rule plans record the generation they were resolved
    /// against and refuse to serve a newer master.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The (possibly freshly built) index snapshot over `attrs`, or
    /// `None` on the unindexed ablation arm. The returned `Arc` is a
    /// point-in-time snapshot: it stays valid (and lock-free to probe)
    /// however long the caller holds it, but does not see later appends.
    pub fn warmed_index(&self, attrs: &[AttrId]) -> Option<Arc<HashIndex>> {
        if !self.use_indexes {
            return None;
        }
        {
            let cache = self.indexes.read();
            if let Some(idx) = cache.get(attrs) {
                return Some(Arc::clone(idx));
            }
        }
        let mut cache = self.indexes.write();
        let idx = cache
            .entry(attrs.to_vec())
            .or_insert_with(|| Arc::new(HashIndex::build(&self.relation, attrs.to_vec())));
        Some(Arc::clone(idx))
    }

    /// Call `f` for each master row with `s[attrs] = key` (match
    /// semantics: null keys match nothing), in row order, without
    /// allocating a row-id vector. Indexed masters probe a snapshot
    /// (the read lock is held only to clone the `Arc`); unindexed
    /// masters scan.
    pub fn for_each_matching_row(&self, attrs: &[AttrId], key: &[Value], mut f: impl FnMut(RowId)) {
        if key.iter().any(Value::is_null) {
            return;
        }
        if let Some(idx) = self.warmed_index(attrs) {
            for &row in idx.lookup(key) {
                f(row);
            }
        } else {
            for (id, s) in self.relation.iter() {
                if attrs
                    .iter()
                    .zip(key.iter())
                    .all(|(&a, k)| s.get(a).matches(k))
                {
                    f(id);
                }
            }
        }
    }

    /// Row ids of master tuples `s` with `s[attrs] = key` (match
    /// semantics: null keys match nothing). Allocates the result vector;
    /// hot paths use [`for_each_matching_row`](Self::for_each_matching_row)
    /// or a plan-held index snapshot instead.
    pub fn matching_rows(&self, attrs: &[AttrId], key: &[Value]) -> Vec<RowId> {
        let mut rows = Vec::new();
        self.for_each_matching_row(attrs, key, |id| rows.push(id));
        rows
    }

    /// The certain-lookup at the heart of rule application: find the
    /// master tuples matching `t` under `rule`'s LHS join, and return the
    /// unique fix values iff all matches agree on every RHS attribute.
    ///
    /// The rule's pattern is *not* evaluated here (it constrains the input
    /// tuple only); callers gate on it first.
    pub fn certain_lookup(&self, rule: &EditingRule, t: &Tuple) -> CertainLookup {
        let input_lhs = rule.input_lhs();
        let master_lhs = rule.master_lhs();
        let key = t.project(&input_lhs);
        self.certain_lookup_at(&master_lhs, &key, &rule.master_rhs())
    }

    /// Flat-slice form of [`certain_lookup`](Self::certain_lookup), used
    /// by compiled rule plans: the caller supplies the resolved attribute
    /// layouts and the projected key (typically from reused buffers), so
    /// no per-call attribute or row-id vectors are allocated.
    pub fn certain_lookup_at(
        &self,
        master_lhs: &[AttrId],
        key: &[Value],
        master_rhs: &[AttrId],
    ) -> CertainLookup {
        if key.iter().any(Value::is_null) {
            return CertainLookup::NoMatch;
        }
        if let Some(idx) = self.warmed_index(master_lhs) {
            self.certain_over_rows(idx.lookup(key).iter().copied(), master_rhs)
        } else {
            let rows = self.relation.iter().filter_map(|(id, s)| {
                master_lhs
                    .iter()
                    .zip(key.iter())
                    .all(|(&a, k)| s.get(a).matches(k))
                    .then_some(id)
            });
            self.certain_over_rows(rows, master_rhs)
        }
    }

    /// Fold matching rows into `(match count, certain witness)`: the
    /// witness is `Some` iff at least one row matched, all rows agree on
    /// every `master_rhs` attribute, and no fix value is null (a null
    /// master cell is not evidence of anything). This is THE
    /// certain-application invariant — both engines (the pass-based
    /// [`certain_lookup`](Self::certain_lookup) path and the compiled
    /// delta engine) go through it, so the semantics cannot drift.
    pub(crate) fn certain_witness(
        &self,
        rows: impl Iterator<Item = RowId>,
        master_rhs: &[AttrId],
    ) -> (usize, Option<RowId>) {
        let mut matches = 0usize;
        let mut witness: RowId = 0;
        let mut ambiguous = false;
        for row in rows {
            if matches == 0 {
                witness = row;
            } else if !ambiguous {
                let first = self.relation.row(witness).expect("index row in range");
                let s = self.relation.row(row).expect("index row in range");
                ambiguous = master_rhs.iter().any(|&a| s.get(a) != first.get(a));
            }
            matches += 1;
        }
        if matches == 0 {
            return (0, None);
        }
        let first = self.relation.row(witness).expect("index row in range");
        if ambiguous || master_rhs.iter().any(|&a| first.get(a).is_null()) {
            return (matches, None);
        }
        (matches, Some(witness))
    }

    /// Fold matching rows into a [`CertainLookup`] (see
    /// [`certain_witness`](Self::certain_witness) for the invariant).
    fn certain_over_rows(
        &self,
        rows: impl Iterator<Item = RowId>,
        master_rhs: &[AttrId],
    ) -> CertainLookup {
        match self.certain_witness(rows, master_rhs) {
            (0, _) => CertainLookup::NoMatch,
            (matches, None) => CertainLookup::Ambiguous { matches },
            (matches, Some(witness)) => {
                let first = self.relation.row(witness).expect("index row in range");
                CertainLookup::Unique {
                    values: master_rhs.iter().map(|&a| first.get(a).clone()).collect(),
                    witness,
                    matches,
                }
            }
        }
    }

    /// Append a master tuple, keeping every materialized index current.
    ///
    /// Master data management (paper §2) is a living repository: new core
    /// entities arrive. Appends are cheap — each cached index gains one
    /// posting — but callers should re-run consistency checking and
    /// region finding afterwards, since new rows can introduce key
    /// ambiguities that invalidate both (the demo pre-computes regions
    /// for exactly this reason; see `Explorer::recompute_regions`). For
    /// batches, [`append_rows`](Self::append_rows) additionally reports
    /// the touched index keys, which is what delta re-certification
    /// ([`recheck_regions`](crate::region::recheck_regions)) keys on.
    pub fn append(&mut self, tuple: Tuple) -> crate::error::Result<RowId> {
        let row_id = self.relation.push(tuple)?;
        let tuple = self.relation.row(row_id).expect("just pushed");
        if self.use_indexes {
            let mut cache = self.indexes.write();
            for index in cache.values_mut() {
                // Snapshots held elsewhere (compiled plans) keep the old
                // copy; `make_mut` clones only when one is outstanding.
                Arc::make_mut(index).insert_row(row_id, tuple);
            }
        }
        self.generation.fetch_add(1, Ordering::Release);
        Ok(row_id)
    }

    /// Append a batch of rows, returning a [`MasterDelta`] describing
    /// exactly what changed: the appended row range, the new generation,
    /// and — per materialized index — the distinct join keys the rows
    /// introduced or extended (the keys a delta re-certification must
    /// watch). Validates every row up front, so a failure appends
    /// nothing.
    pub fn append_rows(&mut self, rows: Vec<Tuple>) -> crate::error::Result<MasterDelta> {
        for row in &rows {
            if !self.schema().same_as(row.schema()) {
                return Err(cerfix_relation::RelationError::SchemaMismatch {
                    expected: self.schema().name().into(),
                    actual: row.schema().name().into(),
                }
                .into());
            }
        }
        let first_row = self.relation.len();
        let appended = rows.len();
        for row in rows {
            let row_id = self.relation.push(row).expect("pre-checked schema");
            if self.use_indexes {
                let tuple = self.relation.row(row_id).expect("just pushed");
                let mut cache = self.indexes.write();
                for index in cache.values_mut() {
                    Arc::make_mut(index).insert_row(row_id, tuple);
                }
            }
        }
        self.generation
            .fetch_add(appended as u64, Ordering::Release);
        Ok(MasterDelta {
            first_row,
            appended,
            generation: self.generation(),
            touched_keys: self.touched_keys(first_row),
        })
    }

    /// Copy-on-append for shared masters: clone the relation and every
    /// materialized index, append `rows`, and return the new instance
    /// plus its delta. The generation continues monotonically from this
    /// instance (a copy is never confusable with its ancestor in
    /// generation-keyed caches); existing index snapshots held by
    /// compiled plans keep serving the old data untouched. This is the
    /// shape `cerfix-server` uses for its `master.append` op, where the
    /// live master is shared immutably across sessions.
    pub fn append_copy(&self, rows: Vec<Tuple>) -> crate::error::Result<(MasterData, MasterDelta)> {
        let mut copy = MasterData {
            relation: self.relation.clone(),
            indexes: RwLock::new(
                self.indexes
                    .read()
                    .iter()
                    .map(|(attrs, index)| (attrs.clone(), Arc::new((**index).clone())))
                    .collect(),
            ),
            use_indexes: self.use_indexes,
            generation: AtomicU64::new(self.generation()),
        };
        let delta = copy.append_rows(rows)?;
        Ok((copy, delta))
    }

    /// Per materialized index: the distinct keys contributed by rows
    /// `first_row..` (nulls excluded — they are never indexed).
    fn touched_keys(&self, first_row: RowId) -> Vec<(Vec<AttrId>, Vec<Vec<Value>>)> {
        let cache = self.indexes.read();
        cache
            .keys()
            .map(|attrs| {
                let mut seen: std::collections::HashSet<Vec<Value>> =
                    std::collections::HashSet::new();
                let mut keys: Vec<Vec<Value>> = Vec::new();
                for (_, row) in self.relation.iter().skip(first_row) {
                    let key = row.project(attrs);
                    if !key.iter().any(Value::is_null) && seen.insert(key.clone()) {
                        keys.push(key);
                    }
                }
                (attrs.clone(), keys)
            })
            .collect()
    }

    /// Number of indexes materialized so far (diagnostics).
    pub fn index_count(&self) -> usize {
        self.indexes.read().len()
    }

    /// Pre-build the indexes needed by `rules` (bulk warm-up before a
    /// monitoring run, mirroring the demo's pre-computation step).
    pub fn warm_indexes<'a>(&self, rules: impl IntoIterator<Item = &'a EditingRule>) {
        if !self.use_indexes {
            return;
        }
        let mut cache = self.indexes.write();
        for rule in rules {
            let attrs = rule.master_lhs();
            cache
                .entry(attrs.clone())
                .or_insert_with(|| Arc::new(HashIndex::build(&self.relation, attrs)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema};
    use cerfix_rules::PatternTuple;

    fn schemas() -> (SchemaRef, SchemaRef) {
        (
            Schema::of_strings("customer", ["AC", "phn", "city", "zip", "type"]).unwrap(),
            Schema::of_strings("master", ["AC", "Mphn", "city", "zip"]).unwrap(),
        )
    }

    fn master_data(ms: &SchemaRef) -> MasterData {
        MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "079172485", "Edi", "EH8 4AH"])
                .row_strs(["020", "079555555", "Ldn", "SW1A 1AA"])
                .row_strs(["131", "079666666", "Edi", "EH9 1PR"])
                .build()
                .unwrap(),
        )
    }

    fn zip_to_city(input: &SchemaRef, master: &SchemaRef) -> EditingRule {
        EditingRule::new(
            "r",
            input,
            master,
            vec![(
                input.attr_id("zip").unwrap(),
                master.attr_id("zip").unwrap(),
            )],
            vec![(
                input.attr_id("city").unwrap(),
                master.attr_id("city").unwrap(),
            )],
            PatternTuple::empty(),
        )
        .unwrap()
    }

    #[test]
    fn unique_lookup() {
        let (input, ms) = schemas();
        let md = master_data(&ms);
        let rule = zip_to_city(&input, &ms);
        let t = Tuple::of_strings(input.clone(), ["x", "p", "???", "EH8 4AH", "2"]).unwrap();
        match md.certain_lookup(&rule, &t) {
            CertainLookup::Unique {
                values,
                witness,
                matches,
            } => {
                assert_eq!(values, vec![Value::str("Edi")]);
                assert_eq!(witness, 0);
                assert_eq!(matches, 1);
            }
            other => panic!("expected unique, got {other:?}"),
        }
    }

    #[test]
    fn no_match_lookup() {
        let (input, ms) = schemas();
        let md = master_data(&ms);
        let rule = zip_to_city(&input, &ms);
        let t = Tuple::of_strings(input.clone(), ["x", "p", "c", "ZZ9 9ZZ", "2"]).unwrap();
        assert_eq!(md.certain_lookup(&rule, &t), CertainLookup::NoMatch);
    }

    #[test]
    fn null_key_never_matches() {
        let (input, ms) = schemas();
        let md = master_data(&ms);
        let rule = zip_to_city(&input, &ms);
        let t = Tuple::all_null(input.clone());
        assert_eq!(md.certain_lookup(&rule, &t), CertainLookup::NoMatch);
    }

    #[test]
    fn agreeing_duplicates_stay_unique() {
        // Two Edinburgh rows share AC=131 and agree on city ⇒ AC→city is
        // still a certain lookup.
        let (input, ms) = schemas();
        let md = master_data(&ms);
        let rule = EditingRule::new(
            "ac_city",
            &input,
            &ms,
            vec![(input.attr_id("AC").unwrap(), ms.attr_id("AC").unwrap())],
            vec![(input.attr_id("city").unwrap(), ms.attr_id("city").unwrap())],
            PatternTuple::empty(),
        )
        .unwrap();
        let t = Tuple::of_strings(input.clone(), ["131", "p", "?", "z", "2"]).unwrap();
        match md.certain_lookup(&rule, &t) {
            CertainLookup::Unique {
                values, matches, ..
            } => {
                assert_eq!(values, vec![Value::str("Edi")]);
                assert_eq!(matches, 2);
            }
            other => panic!("expected unique, got {other:?}"),
        }
    }

    #[test]
    fn disagreeing_matches_are_ambiguous() {
        // AC→zip is NOT certain: the two 131 rows have different zips.
        let (input, ms) = schemas();
        let md = master_data(&ms);
        let rule = EditingRule::new(
            "ac_zip",
            &input,
            &ms,
            vec![(input.attr_id("AC").unwrap(), ms.attr_id("AC").unwrap())],
            vec![(input.attr_id("zip").unwrap(), ms.attr_id("zip").unwrap())],
            PatternTuple::empty(),
        )
        .unwrap();
        let t = Tuple::of_strings(input.clone(), ["131", "p", "c", "?", "2"]).unwrap();
        assert_eq!(
            md.certain_lookup(&rule, &t),
            CertainLookup::Ambiguous { matches: 2 }
        );
    }

    #[test]
    fn null_master_fix_value_is_ambiguous() {
        let (input, ms) = schemas();
        let mut rel = RelationBuilder::new(ms.clone())
            .row_strs(["131", "079", "Edi", "EH8"])
            .build()
            .unwrap();
        rel.row_mut(0)
            .unwrap()
            .set_by_name("city", Value::Null)
            .unwrap();
        let md = MasterData::new(rel);
        let rule = zip_to_city(&input, &ms);
        let t = Tuple::of_strings(input.clone(), ["x", "p", "c", "EH8", "2"]).unwrap();
        assert!(matches!(
            md.certain_lookup(&rule, &t),
            CertainLookup::Ambiguous { .. }
        ));
    }

    #[test]
    fn indexed_and_scan_agree() {
        let (input, ms) = schemas();
        let indexed = master_data(&ms);
        let scanned = MasterData::new_unindexed(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "079172485", "Edi", "EH8 4AH"])
                .row_strs(["020", "079555555", "Ldn", "SW1A 1AA"])
                .row_strs(["131", "079666666", "Edi", "EH9 1PR"])
                .build()
                .unwrap(),
        );
        let rule = zip_to_city(&input, &ms);
        for zip in ["EH8 4AH", "SW1A 1AA", "EH9 1PR", "nope"] {
            let t = Tuple::of_strings(input.clone(), ["x", "p", "c", zip, "2"]).unwrap();
            assert_eq!(
                indexed.certain_lookup(&rule, &t),
                scanned.certain_lookup(&rule, &t),
                "zip={zip}"
            );
        }
        assert_eq!(
            scanned.index_count(),
            0,
            "ablation arm must not build indexes"
        );
        assert!(indexed.index_count() >= 1);
    }

    #[test]
    fn warm_indexes_prebuilds() {
        let (input, ms) = schemas();
        let md = master_data(&ms);
        let r1 = zip_to_city(&input, &ms);
        assert_eq!(md.index_count(), 0);
        md.warm_indexes([&r1]);
        assert_eq!(md.index_count(), 1);
        md.warm_indexes([&r1]); // idempotent
        assert_eq!(md.index_count(), 1);
    }

    #[test]
    fn append_maintains_indexes() {
        let (input, ms) = schemas();
        let mut md = master_data(&ms);
        let rule = zip_to_city(&input, &ms);
        // Materialize the zip index, then append a new entity.
        let t_probe = Tuple::of_strings(input.clone(), ["x", "p", "c", "G12 8QQ", "2"]).unwrap();
        assert_eq!(md.certain_lookup(&rule, &t_probe), CertainLookup::NoMatch);
        let new_row = Tuple::of_strings(ms.clone(), ["141", "077", "Gla", "G12 8QQ"]).unwrap();
        let id = md.append(new_row).unwrap();
        assert_eq!(id, 3);
        match md.certain_lookup(&rule, &t_probe) {
            CertainLookup::Unique {
                values, witness, ..
            } => {
                assert_eq!(values, vec![Value::str("Gla")]);
                assert_eq!(witness, 3);
            }
            other => panic!("index not maintained: {other:?}"),
        }
    }

    #[test]
    fn append_can_introduce_ambiguity() {
        // A new row that disagrees with an existing key turns certain
        // lookups ambiguous — master-data drift that consistency
        // re-checking would surface.
        let (input, ms) = schemas();
        let mut md = master_data(&ms);
        let rule = zip_to_city(&input, &ms);
        let t = Tuple::of_strings(input.clone(), ["x", "p", "c", "EH8 4AH", "2"]).unwrap();
        assert!(matches!(
            md.certain_lookup(&rule, &t),
            CertainLookup::Unique { .. }
        ));
        md.append(Tuple::of_strings(ms.clone(), ["131", "079", "Leith", "EH8 4AH"]).unwrap())
            .unwrap();
        assert_eq!(
            md.certain_lookup(&rule, &t),
            CertainLookup::Ambiguous { matches: 2 }
        );
    }

    #[test]
    fn append_rejects_foreign_schema() {
        let (_, ms) = schemas();
        let mut md = master_data(&ms);
        let other = Schema::of_strings("master", ["AC", "Mphn", "city", "zip"]).unwrap();
        let t = Tuple::of_strings(other, ["1", "2", "3", "4"]).unwrap();
        assert!(md.append(t).is_err());
    }

    #[test]
    fn accessors() {
        let (_, ms) = schemas();
        let md = master_data(&ms);
        assert_eq!(md.len(), 3);
        assert!(!md.is_empty());
        assert!(md.tuple(0).is_some());
        assert!(md.tuple(9).is_none());
        assert_eq!(md.schema().name(), "master");
        assert_eq!(md.relation().len(), 3);
    }
}
