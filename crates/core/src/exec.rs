//! Order-stable parallel execution.
//!
//! Two executors share one contract — results come back in **input
//! order**, regardless of worker count or completion order:
//!
//! * [`ordered_map`] — a scoped, work-stealing fan-out for borrowing
//!   closures. Workers pull items off a shared queue one at a time, so a
//!   straggler item never serializes a whole chunk behind it (the
//!   previous stream driver chunked statically). Used by
//!   [`clean_stream_parallel`](crate::monitor::clean_stream_parallel).
//! * [`WorkerPool`] — a long-lived pool of named threads for `'static`
//!   jobs, the batch executor behind `cerfix-server`: a service holds one
//!   pool for its lifetime and fans each batch request across it via
//!   [`WorkerPool::map_ordered`].
//!
//! Both are `std`-only (scoped threads, `Mutex`, `Condvar`) and fail
//! fast: the first `Err` stops remaining work and is returned.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Apply `f` to every item across `threads` workers, returning results in
/// input order. Work-stealing: each worker pulls the next unprocessed
/// item, so heterogeneous item costs balance automatically. On the first
/// `Err` remaining items are abandoned and that error is returned.
///
/// `threads <= 1` (or a short input) degrades to a plain sequential loop
/// with identical results — callers need no separate code path.
pub fn ordered_map<T, U, E, F>(threads: usize, items: Vec<T>, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(usize, T) -> Result<U, E> + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| f(idx, item))
            .collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = Mutex::new(slots);
    let first_error: Mutex<Option<E>> = Mutex::new(None);
    let failed = AtomicBool::new(false);

    thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    return;
                }
                let next = lock(&queue).next();
                let Some((idx, item)) = next else { return };
                match f(idx, item) {
                    Ok(out) => lock(&results)[idx] = Some(out),
                    Err(e) => {
                        let mut slot = lock(&first_error);
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = first_error
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(e);
    }
    Ok(results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|slot| slot.expect("no error ⇒ every slot filled"))
        .collect())
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

/// A long-lived pool of worker threads executing `'static` jobs.
///
/// Designed for services: construct once with the configured parallelism,
/// then [`submit`](WorkerPool::submit) fire-and-forget jobs or fan a
/// batch out with [`map_ordered`](WorkerPool::map_ordered). Dropping the
/// pool wakes all workers, lets queued jobs finish, and joins the
/// threads.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `threads.max(1)` workers.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("cerfix-worker-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    fn worker_loop(shared: &PoolShared) {
        loop {
            let job = {
                let mut queue = lock(&shared.queue);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = shared
                        .work_ready
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // A panicking job must not take the worker down with it: the
            // pool outlives any single request, and `map_ordered` callers
            // on other threads still need the remaining workers.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Jobs currently waiting in the queue (a point-in-time gauge for
    /// telemetry: one lock acquisition, no allocation; jobs already
    /// claimed by workers are not counted).
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Enqueue a fire-and-forget job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        lock(&self.shared.queue).push_back(Box::new(job));
        self.shared.work_ready.notify_one();
    }

    /// Fan `items` across the pool, blocking until every result is in,
    /// and return them in input order.
    ///
    /// **Caller-runs:** the calling thread participates in the batch —
    /// it pulls pending items alongside the pool workers instead of only
    /// waiting. This keeps the call deadlock-free even when it is made
    /// *from a pool worker* (a batch job that fans out a sub-batch, the
    /// shape the epoll reactor's request batches take): with every
    /// worker busy, the caller simply processes its own items. It also
    /// means concurrent `map_ordered` calls from different request
    /// threads interleave fairly on one pool.
    ///
    /// A panicking job is re-raised on the *calling* thread (like a
    /// scoped-thread join) once every other job has finished — the
    /// caller never deadlocks waiting on a completion that died.
    pub fn map_ordered<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(usize, T) -> U + Send + Sync + 'static,
    {
        struct BatchState<U> {
            slots: Vec<Option<U>>,
            completed: usize,
            panic: Option<Box<dyn std::any::Any + Send>>,
        }
        struct Batch<T, U, F> {
            queue: Mutex<VecDeque<(usize, T)>>,
            state: Mutex<BatchState<U>>,
            finished: Condvar,
            f: F,
            n: usize,
        }
        impl<T, U, F> Batch<T, U, F>
        where
            F: Fn(usize, T) -> U,
        {
            /// Pull and run items until the queue is empty. Returns true
            /// once this call has observed the whole batch completed.
            fn run(&self) -> bool {
                loop {
                    let next = lock(&self.queue).pop_front();
                    let Some((idx, item)) = next else {
                        return lock(&self.state).completed == self.n;
                    };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        (self.f)(idx, item)
                    }));
                    let mut guard = lock(&self.state);
                    match result {
                        Ok(out) => guard.slots[idx] = Some(out),
                        Err(payload) => {
                            if guard.panic.is_none() {
                                guard.panic = Some(payload);
                            }
                        }
                    }
                    guard.completed += 1;
                    if guard.completed == self.n {
                        self.finished.notify_all();
                        return true;
                    }
                }
            }
        }
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let batch = Arc::new(Batch {
            queue: Mutex::new(items.into_iter().enumerate().collect()),
            state: Mutex::new(BatchState {
                slots,
                completed: 0,
                panic: None,
            }),
            finished: Condvar::new(),
            f,
            n,
        });
        // One helper job per worker (capped by the batch size minus the
        // caller's own share); each drains the shared queue, so a helper
        // that starts late — or never, on a saturated pool — costs
        // nothing but its queue check.
        for _ in 0..self.threads().min(n.saturating_sub(1)) {
            let batch = Arc::clone(&batch);
            self.submit(move || {
                batch.run();
            });
        }
        batch.run();
        let mut guard = lock(&batch.state);
        while guard.completed < n {
            guard = batch
                .finished
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(payload) = guard.panic.take() {
            drop(guard);
            std::panic::resume_unwind(payload);
        }
        std::mem::take(&mut guard.slots)
            .into_iter()
            .map(|slot| slot.expect("no panic ⇒ every slot filled"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        let current = thread::current().id();
        for handle in self.handles.drain(..) {
            // The pool can be dropped *from one of its own workers*: a
            // job holding the last service handle (e.g. an epoll batch
            // job outliving a server shutdown) drops it — and the pool
            // with it — when it finishes. Joining ourselves would be an
            // instant deadlock (EDEADLK); detach instead — this worker
            // exits its loop right after the current job.
            if handle.thread().id() == current {
                continue;
            }
            // A worker that panicked already unwound; joining propagates
            // nothing further. Remaining queued jobs are completed first
            // (workers drain the queue before honoring shutdown).
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn ordered_map_preserves_order() {
        for threads in [1, 2, 4, 9] {
            let items: Vec<usize> = (0..100).collect();
            let out: Result<Vec<usize>, ()> = ordered_map(threads, items, |idx, item| {
                assert_eq!(idx, item);
                Ok(item * 2)
            });
            assert_eq!(out.unwrap(), (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ordered_map_fails_fast() {
        let counter = AtomicUsize::new(0);
        let out: Result<Vec<usize>, String> = ordered_map(4, (0..1000).collect(), |_, item| {
            counter.fetch_add(1, Ordering::Relaxed);
            if item == 3 {
                Err("boom".to_string())
            } else {
                Ok(item)
            }
        });
        assert_eq!(out.unwrap_err(), "boom");
        assert!(
            counter.load(Ordering::Relaxed) < 1000,
            "abandoned remaining work"
        );
    }

    #[test]
    fn ordered_map_empty_and_single() {
        let empty: Result<Vec<u8>, ()> = ordered_map(4, Vec::<u8>::new(), |_, x| Ok(x));
        assert_eq!(empty.unwrap(), Vec::<u8>::new());
        let one: Result<Vec<u8>, ()> = ordered_map(4, vec![7u8], |_, x| Ok(x));
        assert_eq!(one.unwrap(), vec![7]);
    }

    #[test]
    fn pool_map_ordered_matches_input_order() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let out = pool.map_ordered((0..256usize).collect(), |idx, item| {
            assert_eq!(idx, item);
            item + 1
        });
        assert_eq!(out, (1..=256).collect::<Vec<_>>());
    }

    #[test]
    fn pool_map_ordered_propagates_panics() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_ordered((0..10).collect(), |_, x: usize| {
                assert!(x != 5, "boom");
                x
            })
        }));
        assert!(result.is_err(), "panic must reach the caller, not deadlock");
        // The pool survives and serves later batches.
        assert_eq!(
            pool.map_ordered(vec![1, 2], |_, x: i32| x * 10),
            vec![10, 20]
        );
    }

    #[test]
    fn map_ordered_reentrant_from_worker_does_not_deadlock() {
        // A batch job that itself fans out a sub-batch on the same pool:
        // with one worker this deadlocked before caller-runs (the worker
        // waited on jobs queued behind itself forever).
        let pool = Arc::new(WorkerPool::new(1));
        let inner_pool = Arc::clone(&pool);
        let out = pool.map_ordered(vec![10usize, 20], move |_, x| {
            inner_pool.map_ordered(vec![x, x + 1], |_, y: usize| y * 2)
        });
        assert_eq!(out, vec![vec![20, 22], vec![40, 42]]);
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..20 {
            let out = pool.map_ordered(vec![round; 10], |_, x: usize| x * x);
            assert_eq!(out, vec![round * round; 10]);
        }
    }

    #[test]
    fn pool_submit_runs_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // drains the queue before joining
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn dropping_pool_from_its_own_worker_does_not_deadlock() {
        // A job that owns the last handle to its own pool (the shape a
        // server batch job takes when it outlives shutdown): the drop
        // runs on the worker and must neither hang nor panic.
        let pool = Arc::new(WorkerPool::new(2));
        let own = Arc::clone(&pool);
        let done = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&done);
        pool.submit(move || {
            // Give this job the last reference.
            let own = own;
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(own);
            observed.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool); // job now holds the only Arc
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while done.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "worker wedged dropping its own pool"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(
            pool.map_ordered(vec![1, 2, 3], |_, x: i32| -x),
            vec![-1, -2, -3]
        );
    }
}
