//! The audit log: every change to every cell, with provenance.
//!
//! Paper §2 (data auditing): *"This module keeps track of changes to each
//! tuple, incurred either by the users or automatically by data monitor
//! with editing rules and master data. Statistics about the changes can be
//! retrieved upon users' requests."* Fig. 4 shows both views implemented
//! here: per-cell history ("fixed by normalizing the first name 'M.' to
//! 'Mark'", with the master tuple and rule responsible) and per-attribute
//! statistics (user-validated vs. CerFix-fixed percentages).

use cerfix_relation::{AttrId, RowId, Value};
use cerfix_rules::RuleId;
use parking_lot::RwLock;

/// Who validated a cell, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellEvent {
    /// The user validated the cell, possibly correcting its value.
    UserValidated {
        /// Value before validation.
        old: Value,
        /// Value asserted by the user.
        new: Value,
    },
    /// A rule fixed the cell from master data (value changed).
    RuleFixed {
        /// The rule responsible.
        rule: RuleId,
        /// The master row the value came from.
        master_row: RowId,
        /// Value before the fix.
        old: Value,
        /// Value copied from master.
        new: Value,
    },
    /// A rule confirmed the cell's existing value (validated, unchanged).
    RuleConfirmed {
        /// The rule responsible.
        rule: RuleId,
    },
}

impl CellEvent {
    /// True iff the event originated from the user.
    pub fn is_user(&self) -> bool {
        matches!(self, CellEvent::UserValidated { .. })
    }

    /// True iff the event changed the cell's value.
    pub fn changed_value(&self) -> bool {
        match self {
            CellEvent::UserValidated { old, new } => old != new,
            CellEvent::RuleFixed { .. } => true,
            CellEvent::RuleConfirmed { .. } => false,
        }
    }
}

/// One audit record: an event on one cell of one monitored tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monitor-assigned tuple id (stream position).
    pub tuple_id: usize,
    /// The affected attribute.
    pub attr: AttrId,
    /// Interaction round in which the event occurred (1-based).
    pub round: usize,
    /// What happened.
    pub event: CellEvent,
}

/// Append-only audit log, shareable across concurrent monitor sessions.
#[derive(Debug, Default)]
pub struct AuditLog {
    records: RwLock<Vec<AuditRecord>>,
}

impl AuditLog {
    /// Create an empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Append a record.
    pub fn record(&self, record: AuditRecord) {
        self.records.write().push(record);
    }

    /// Snapshot of all records (clone; the log is append-only).
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records.read().clone()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// True iff no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// History of one tuple, in event order (Fig. 4's per-tuple
    /// inspection).
    pub fn tuple_history(&self, tuple_id: usize) -> Vec<AuditRecord> {
        self.records
            .read()
            .iter()
            .filter(|r| r.tuple_id == tuple_id)
            .cloned()
            .collect()
    }

    /// History of one cell of one tuple.
    pub fn cell_history(&self, tuple_id: usize, attr: AttrId) -> Vec<AuditRecord> {
        self.records
            .read()
            .iter()
            .filter(|r| r.tuple_id == tuple_id && r.attr == attr)
            .cloned()
            .collect()
    }

    /// All events on one attribute across tuples (Fig. 4's per-column
    /// inspection).
    pub fn attr_events(&self, attr: AttrId) -> Vec<AuditRecord> {
        self.records
            .read()
            .iter()
            .filter(|r| r.attr == attr)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tuple_id: usize, attr: AttrId, round: usize, event: CellEvent) -> AuditRecord {
        AuditRecord {
            tuple_id,
            attr,
            round,
            event,
        }
    }

    #[test]
    fn record_and_query() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        log.record(rec(
            0,
            2,
            1,
            CellEvent::UserValidated {
                old: Value::str("020"),
                new: Value::str("131"),
            },
        ));
        log.record(rec(
            0,
            6,
            1,
            CellEvent::RuleFixed {
                rule: 3,
                master_row: 1,
                old: Value::str("M."),
                new: Value::str("Mark"),
            },
        ));
        log.record(rec(1, 2, 1, CellEvent::RuleConfirmed { rule: 0 }));
        assert_eq!(log.len(), 3);
        assert_eq!(log.tuple_history(0).len(), 2);
        assert_eq!(log.tuple_history(1).len(), 1);
        assert_eq!(log.cell_history(0, 6).len(), 1);
        assert_eq!(log.attr_events(2).len(), 2);
    }

    #[test]
    fn event_classification() {
        let user = CellEvent::UserValidated {
            old: Value::str("a"),
            new: Value::str("a"),
        };
        assert!(user.is_user());
        assert!(!user.changed_value(), "confirming an already-correct value");
        let corrected = CellEvent::UserValidated {
            old: Value::str("a"),
            new: Value::str("b"),
        };
        assert!(corrected.changed_value());
        let fixed = CellEvent::RuleFixed {
            rule: 0,
            master_row: 0,
            old: Value::Null,
            new: Value::str("x"),
        };
        assert!(!fixed.is_user());
        assert!(fixed.changed_value());
        let confirmed = CellEvent::RuleConfirmed { rule: 0 };
        assert!(!confirmed.is_user());
        assert!(!confirmed.changed_value());
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let log = Arc::new(AuditLog::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        log.record(rec(t, i % 5, 1, CellEvent::RuleConfirmed { rule: 0 }));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
    }
}
