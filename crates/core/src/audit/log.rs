//! The audit log: every change to every cell, with provenance.
//!
//! Paper §2 (data auditing): *"This module keeps track of changes to each
//! tuple, incurred either by the users or automatically by data monitor
//! with editing rules and master data. Statistics about the changes can be
//! retrieved upon users' requests."* Fig. 4 shows both views implemented
//! here: per-cell history ("fixed by normalizing the first name 'M.' to
//! 'Mark'", with the master tuple and rule responsible) and per-attribute
//! statistics (user-validated vs. CerFix-fixed percentages).
//!
//! A log is either *unbounded in memory* (the default, what library
//! callers and tests use) or *windowed over a sink*: a bounded in-memory
//! window of the most recent records backed by an [`AuditSink`] — an
//! append-only archive holding **every** record, which long-lived
//! services implement with a disk segment (`cerfix-storage`'s audit
//! spill). Records are globally indexed in append order; [`read_range`]
//! serves any index from the window when it is still resident and from
//! the sink otherwise.
//!
//! [`read_range`]: AuditLog::read_range

use cerfix_relation::{AttrId, RowId, Value};
use cerfix_rules::RuleId;
use parking_lot::RwLock;
use std::collections::VecDeque;
use std::sync::Arc;

/// Who validated a cell, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellEvent {
    /// The user validated the cell, possibly correcting its value.
    UserValidated {
        /// Value before validation.
        old: Value,
        /// Value asserted by the user.
        new: Value,
    },
    /// A rule fixed the cell from master data (value changed).
    RuleFixed {
        /// The rule responsible.
        rule: RuleId,
        /// The master row the value came from.
        master_row: RowId,
        /// Value before the fix.
        old: Value,
        /// Value copied from master.
        new: Value,
    },
    /// A rule confirmed the cell's existing value (validated, unchanged).
    RuleConfirmed {
        /// The rule responsible.
        rule: RuleId,
    },
}

impl CellEvent {
    /// True iff the event originated from the user.
    pub fn is_user(&self) -> bool {
        matches!(self, CellEvent::UserValidated { .. })
    }

    /// True iff the event changed the cell's value.
    pub fn changed_value(&self) -> bool {
        match self {
            CellEvent::UserValidated { old, new } => old != new,
            CellEvent::RuleFixed { .. } => true,
            CellEvent::RuleConfirmed { .. } => false,
        }
    }
}

/// One audit record: an event on one cell of one monitored tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monitor-assigned tuple id (stream position).
    pub tuple_id: usize,
    /// The affected attribute.
    pub attr: AttrId,
    /// Interaction round in which the event occurred (1-based).
    pub round: usize,
    /// What happened.
    pub event: CellEvent,
}

/// Append-only archive behind a windowed [`AuditLog`].
///
/// The sink receives every record in append order and must serve ranged
/// reads over everything it has received (records are addressed by their
/// global append index). `cerfix-storage` implements this with an
/// append-only segment file plus an offset index; tests use an in-memory
/// vector.
pub trait AuditSink: Send + Sync {
    /// Archive one record. Index `i` of the `i`-th call (0-based) is the
    /// record's global index.
    fn append(&self, record: &AuditRecord);
    /// Read up to `count` records starting at global index `start`.
    fn read(&self, start: usize, count: usize) -> Vec<AuditRecord>;
    /// Number of records archived.
    fn len(&self) -> usize;
    /// True iff no records have been archived.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Default)]
struct Window {
    /// Most recent records; `records[0]` has global index `base`.
    records: VecDeque<AuditRecord>,
    /// Global index of the first resident record (= records evicted).
    base: usize,
}

/// Append-only audit log, shareable across concurrent monitor sessions.
pub struct AuditLog {
    window: RwLock<Window>,
    sink: Option<Arc<dyn AuditSink>>,
    window_cap: usize,
}

impl Default for AuditLog {
    fn default() -> AuditLog {
        AuditLog::new()
    }
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let window = self.window.read();
        f.debug_struct("AuditLog")
            .field("window", &window.records.len())
            .field("spilled", &window.base)
            .field("sinked", &self.sink.is_some())
            .finish()
    }
}

impl AuditLog {
    /// Create an empty, unbounded in-memory log (no sink; nothing is ever
    /// evicted).
    pub fn new() -> AuditLog {
        AuditLog {
            window: RwLock::new(Window::default()),
            sink: None,
            window_cap: usize::MAX,
        }
    }

    /// Create a windowed log over `sink`: at most `window_cap` records
    /// stay resident in memory; every record is archived to the sink on
    /// append, and reads beyond the window are served from it.
    ///
    /// If the sink already holds records (recovery over an existing
    /// archive), the window starts empty with its base at `sink.len()`.
    pub fn with_sink(window_cap: usize, sink: Arc<dyn AuditSink>) -> AuditLog {
        let base = sink.len();
        AuditLog {
            window: RwLock::new(Window {
                records: VecDeque::new(),
                base,
            }),
            sink: Some(sink),
            window_cap: window_cap.max(1),
        }
    }

    /// The sink, if this log is windowed over one.
    pub fn sink(&self) -> Option<&Arc<dyn AuditSink>> {
        self.sink.as_ref()
    }

    /// Append a record.
    pub fn record(&self, record: AuditRecord) {
        // The sink append happens under the window lock: concurrent
        // recorders (batch-clean workers) must assign the same global
        // index on both sides, or window[i] and archive[base+i] diverge
        // and ranged reads return different records before and after a
        // restart. Sink appends only buffer in memory, so the critical
        // section stays short.
        let mut window = self.window.write();
        if let Some(sink) = &self.sink {
            sink.append(&record);
        }
        window.records.push_back(record);
        while window.records.len() > self.window_cap {
            window.records.pop_front();
            window.base += 1;
        }
    }

    /// Snapshot of the resident (in-memory) records. Without a sink this
    /// is every record; with one, it is the most recent window.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.window.read().records.iter().cloned().collect()
    }

    /// Total records ever appended (resident + evicted to the sink).
    pub fn len(&self) -> usize {
        let window = self.window.read();
        window.base + window.records.len()
    }

    /// Records evicted from the in-memory window (0 without a sink).
    pub fn spilled(&self) -> usize {
        self.window.read().base
    }

    /// True iff no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read up to `count` records starting at global append index
    /// `start`, in order. Indices below the window base come from the
    /// sink; resident indices from memory. Out-of-range indices yield an
    /// empty / shortened result.
    pub fn read_range(&self, start: usize, count: usize) -> Vec<AuditRecord> {
        let window = self.window.read();
        let total = window.base + window.records.len();
        let end = total.min(start.saturating_add(count));
        if start >= end {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(end - start);
        if start < window.base {
            if let Some(sink) = &self.sink {
                out.extend(sink.read(start, window.base.min(end) - start));
            }
        }
        if end > window.base {
            let from = start.max(window.base) - window.base;
            let to = end - window.base;
            out.extend(window.records.iter().skip(from).take(to - from).cloned());
        }
        out
    }

    /// Run `f` over every record in append order — archived records
    /// first (streamed from the sink in chunks), then the resident
    /// window. The cold path behind the history queries and
    /// [`AuditStats`](crate::audit::AuditStats).
    pub fn for_each_record(&self, mut f: impl FnMut(&AuditRecord)) {
        let window = self.window.read();
        if window.base > 0 {
            if let Some(sink) = &self.sink {
                const CHUNK: usize = 1024;
                let mut at = 0;
                while at < window.base {
                    let chunk = sink.read(at, CHUNK.min(window.base - at));
                    if chunk.is_empty() {
                        break;
                    }
                    at += chunk.len();
                    for record in &chunk {
                        f(record);
                    }
                }
            }
        }
        for record in &window.records {
            f(record);
        }
    }

    /// History of one tuple, in event order (Fig. 4's per-tuple
    /// inspection). Includes sink-archived records.
    pub fn tuple_history(&self, tuple_id: usize) -> Vec<AuditRecord> {
        let mut out = Vec::new();
        self.for_each_record(|r| {
            if r.tuple_id == tuple_id {
                out.push(r.clone());
            }
        });
        out
    }

    /// History of one cell of one tuple. Includes sink-archived records.
    pub fn cell_history(&self, tuple_id: usize, attr: AttrId) -> Vec<AuditRecord> {
        let mut out = Vec::new();
        self.for_each_record(|r| {
            if r.tuple_id == tuple_id && r.attr == attr {
                out.push(r.clone());
            }
        });
        out
    }

    /// All events on one attribute across tuples (Fig. 4's per-column
    /// inspection). Includes sink-archived records.
    pub fn attr_events(&self, attr: AttrId) -> Vec<AuditRecord> {
        let mut out = Vec::new();
        self.for_each_record(|r| {
            if r.attr == attr {
                out.push(r.clone());
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tuple_id: usize, attr: AttrId, round: usize, event: CellEvent) -> AuditRecord {
        AuditRecord {
            tuple_id,
            attr,
            round,
            event,
        }
    }

    #[test]
    fn record_and_query() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        log.record(rec(
            0,
            2,
            1,
            CellEvent::UserValidated {
                old: Value::str("020"),
                new: Value::str("131"),
            },
        ));
        log.record(rec(
            0,
            6,
            1,
            CellEvent::RuleFixed {
                rule: 3,
                master_row: 1,
                old: Value::str("M."),
                new: Value::str("Mark"),
            },
        ));
        log.record(rec(1, 2, 1, CellEvent::RuleConfirmed { rule: 0 }));
        assert_eq!(log.len(), 3);
        assert_eq!(log.tuple_history(0).len(), 2);
        assert_eq!(log.tuple_history(1).len(), 1);
        assert_eq!(log.cell_history(0, 6).len(), 1);
        assert_eq!(log.attr_events(2).len(), 2);
        assert_eq!(log.spilled(), 0);
        assert_eq!(log.read_range(1, 10).len(), 2);
        assert_eq!(log.read_range(3, 10).len(), 0);
    }

    #[test]
    fn event_classification() {
        let user = CellEvent::UserValidated {
            old: Value::str("a"),
            new: Value::str("a"),
        };
        assert!(user.is_user());
        assert!(!user.changed_value(), "confirming an already-correct value");
        let corrected = CellEvent::UserValidated {
            old: Value::str("a"),
            new: Value::str("b"),
        };
        assert!(corrected.changed_value());
        let fixed = CellEvent::RuleFixed {
            rule: 0,
            master_row: 0,
            old: Value::Null,
            new: Value::str("x"),
        };
        assert!(!fixed.is_user());
        assert!(fixed.changed_value());
        let confirmed = CellEvent::RuleConfirmed { rule: 0 };
        assert!(!confirmed.is_user());
        assert!(!confirmed.changed_value());
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let log = Arc::new(AuditLog::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        log.record(rec(t, i % 5, 1, CellEvent::RuleConfirmed { rule: 0 }));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
    }

    /// Sink used by the window tests: the full archive in a mutex'd vec.
    #[derive(Debug, Default)]
    struct VecSink {
        records: std::sync::Mutex<Vec<AuditRecord>>,
    }

    impl AuditSink for VecSink {
        fn append(&self, record: &AuditRecord) {
            self.records.lock().unwrap().push(record.clone());
        }
        fn read(&self, start: usize, count: usize) -> Vec<AuditRecord> {
            let records = self.records.lock().unwrap();
            records.iter().skip(start).take(count).cloned().collect()
        }
        fn len(&self) -> usize {
            self.records.lock().unwrap().len()
        }
    }

    #[test]
    fn windowed_log_spills_to_sink_and_reads_across_boundary() {
        let sink = Arc::new(VecSink::default());
        let log = AuditLog::with_sink(4, Arc::clone(&sink) as Arc<dyn AuditSink>);
        for i in 0..10 {
            log.record(rec(i, i % 3, 1, CellEvent::RuleConfirmed { rule: i }));
        }
        assert_eq!(log.len(), 10);
        assert_eq!(log.spilled(), 6, "window of 4 keeps the last 4 resident");
        assert_eq!(log.records().len(), 4, "resident window");
        assert_eq!(sink.len(), 10, "sink archives everything");
        // Ranged read spanning sink + window territory.
        let range = log.read_range(4, 4);
        assert_eq!(range.len(), 4);
        for (offset, record) in range.iter().enumerate() {
            assert_eq!(record.tuple_id, 4 + offset);
        }
        // History queries see evicted records too.
        assert_eq!(log.tuple_history(0).len(), 1);
        assert_eq!(log.attr_events(0).len(), 4, "tuples 0,3,6,9");
        // Reads past the end clamp.
        assert_eq!(log.read_range(8, 100).len(), 2);
        assert_eq!(log.read_range(100, 10).len(), 0);
    }

    #[test]
    fn windowed_log_resumes_over_populated_sink() {
        let sink = Arc::new(VecSink::default());
        for i in 0..5 {
            sink.append(&rec(i, 0, 1, CellEvent::RuleConfirmed { rule: 0 }));
        }
        // Recovery shape: a fresh log over an archive with history.
        let log = AuditLog::with_sink(8, Arc::clone(&sink) as Arc<dyn AuditSink>);
        assert_eq!(log.len(), 5);
        assert_eq!(log.spilled(), 5);
        log.record(rec(9, 1, 1, CellEvent::RuleConfirmed { rule: 1 }));
        assert_eq!(log.len(), 6);
        let all = log.read_range(0, 10);
        assert_eq!(all.len(), 6);
        assert_eq!(all[5].tuple_id, 9);
    }
}
