//! Audit statistics: the Fig. 4 percentages.
//!
//! *"CerFix presents the statistics about the attribute FN, namely, the
//! percentage of FN values that were validated by the users and the
//! percentage of values that were automatically fixed by CerFix. Our
//! experimental study indicates that in average, 20% of values are
//! validated by users while CerFix automatically fixes 80% of the data."*

use crate::audit::log::{AuditLog, CellEvent};
use cerfix_relation::{render_table, AttrId, SchemaRef};
use std::collections::BTreeMap;

/// Validation counts for one attribute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttrStats {
    /// Cells of this attribute validated by the user.
    pub user_validated: usize,
    /// Cells validated automatically by rules (changed or confirmed).
    pub auto_validated: usize,
    /// Of the automatic validations, how many changed the value.
    pub auto_changed: usize,
    /// Of the user validations, how many corrected the value.
    pub user_corrections: usize,
}

impl AttrStats {
    /// Total validations.
    pub fn total(&self) -> usize {
        self.user_validated + self.auto_validated
    }

    /// Fraction validated by the user, in `[0, 1]`; 0 for no data.
    pub fn user_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.user_validated as f64 / total as f64
        }
    }

    /// Fraction validated automatically, in `[0, 1]`; 0 for no data.
    pub fn auto_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.auto_validated as f64 / total as f64
        }
    }
}

/// Aggregated audit statistics across attributes.
#[derive(Debug, Clone, Default)]
pub struct AuditStats {
    /// Per-attribute counts.
    pub per_attr: BTreeMap<AttrId, AttrStats>,
}

impl AuditStats {
    /// Compute statistics from an audit log — the full stream, including
    /// records a windowed log has evicted to its sink. Only the *first*
    /// validation event of each cell counts (later confirmations by
    /// other rules do not re-validate an already-validated cell; the
    /// engine never emits them, but the statistics stay correct even if
    /// it did).
    pub fn from_log(log: &AuditLog) -> AuditStats {
        let mut per_attr: BTreeMap<AttrId, AttrStats> = BTreeMap::new();
        let mut seen: std::collections::HashSet<(usize, AttrId)> = std::collections::HashSet::new();
        log.for_each_record(|record| {
            if !seen.insert((record.tuple_id, record.attr)) {
                return;
            }
            let stats = per_attr.entry(record.attr).or_default();
            match &record.event {
                CellEvent::UserValidated { old, new } => {
                    stats.user_validated += 1;
                    if old != new {
                        stats.user_corrections += 1;
                    }
                }
                CellEvent::RuleFixed { .. } => {
                    stats.auto_validated += 1;
                    stats.auto_changed += 1;
                }
                CellEvent::RuleConfirmed { .. } => {
                    stats.auto_validated += 1;
                }
            }
        });
        AuditStats { per_attr }
    }

    /// Overall counts across all attributes.
    pub fn totals(&self) -> AttrStats {
        let mut total = AttrStats::default();
        for s in self.per_attr.values() {
            total.user_validated += s.user_validated;
            total.auto_validated += s.auto_validated;
            total.auto_changed += s.auto_changed;
            total.user_corrections += s.user_corrections;
        }
        total
    }

    /// Render the Fig. 4 statistics table with attribute names.
    pub fn render(&self, schema: &SchemaRef) -> String {
        let header: Vec<String> = [
            "attribute",
            "user %",
            "cerfix %",
            "user n",
            "cerfix n",
            "auto-changed",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (&attr, stats) in &self.per_attr {
            rows.push(vec![
                schema.attr_name(attr).to_string(),
                format!("{:.1}", stats.user_fraction() * 100.0),
                format!("{:.1}", stats.auto_fraction() * 100.0),
                stats.user_validated.to_string(),
                stats.auto_validated.to_string(),
                stats.auto_changed.to_string(),
            ]);
        }
        let t = self.totals();
        rows.push(vec![
            "TOTAL".to_string(),
            format!("{:.1}", t.user_fraction() * 100.0),
            format!("{:.1}", t.auto_fraction() * 100.0),
            t.user_validated.to_string(),
            t.auto_validated.to_string(),
            t.auto_changed.to_string(),
        ]);
        render_table(&header, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::log::AuditRecord;
    use cerfix_relation::{Schema, Value};

    fn populated_log() -> AuditLog {
        let log = AuditLog::new();
        // Tuple 0: user validates attr 0, rules fix attrs 1 and 2.
        log.record(AuditRecord {
            tuple_id: 0,
            attr: 0,
            round: 1,
            event: CellEvent::UserValidated {
                old: Value::str("x"),
                new: Value::str("x"),
            },
        });
        log.record(AuditRecord {
            tuple_id: 0,
            attr: 1,
            round: 1,
            event: CellEvent::RuleFixed {
                rule: 0,
                master_row: 0,
                old: Value::str("bad"),
                new: Value::str("good"),
            },
        });
        log.record(AuditRecord {
            tuple_id: 0,
            attr: 2,
            round: 1,
            event: CellEvent::RuleConfirmed { rule: 1 },
        });
        // Tuple 1: user corrects attr 0, rule fixes attr 1.
        log.record(AuditRecord {
            tuple_id: 1,
            attr: 0,
            round: 1,
            event: CellEvent::UserValidated {
                old: Value::str("a"),
                new: Value::str("b"),
            },
        });
        log.record(AuditRecord {
            tuple_id: 1,
            attr: 1,
            round: 2,
            event: CellEvent::RuleFixed {
                rule: 0,
                master_row: 3,
                old: Value::Null,
                new: Value::str("v"),
            },
        });
        log
    }

    #[test]
    fn per_attr_stats() {
        let stats = AuditStats::from_log(&populated_log());
        let a0 = &stats.per_attr[&0];
        assert_eq!(a0.user_validated, 2);
        assert_eq!(a0.auto_validated, 0);
        assert_eq!(a0.user_corrections, 1);
        assert_eq!(a0.user_fraction(), 1.0);
        let a1 = &stats.per_attr[&1];
        assert_eq!(a1.auto_validated, 2);
        assert_eq!(a1.auto_changed, 2);
        assert_eq!(a1.auto_fraction(), 1.0);
        let a2 = &stats.per_attr[&2];
        assert_eq!(a2.auto_validated, 1);
        assert_eq!(a2.auto_changed, 0, "confirmation changed nothing");
    }

    #[test]
    fn totals_give_the_paper_split() {
        let stats = AuditStats::from_log(&populated_log());
        let t = stats.totals();
        assert_eq!(t.user_validated, 2);
        assert_eq!(t.auto_validated, 3);
        assert!((t.user_fraction() - 0.4).abs() < 1e-9);
        assert!((t.auto_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn duplicate_events_on_a_cell_count_once() {
        let log = populated_log();
        // A second (spurious) event on tuple 0 attr 0.
        log.record(AuditRecord {
            tuple_id: 0,
            attr: 0,
            round: 2,
            event: CellEvent::RuleConfirmed { rule: 5 },
        });
        let stats = AuditStats::from_log(&log);
        assert_eq!(stats.per_attr[&0].user_validated, 2, "first event wins");
        assert_eq!(stats.per_attr[&0].auto_validated, 0);
    }

    #[test]
    fn empty_log_fractions_are_zero() {
        let stats = AuditStats::from_log(&AuditLog::new());
        let t = stats.totals();
        assert_eq!(t.user_fraction(), 0.0);
        assert_eq!(t.auto_fraction(), 0.0);
    }

    #[test]
    fn render_table_shape() {
        let schema = Schema::of_strings("customer", ["FN", "LN", "AC"]).unwrap();
        let stats = AuditStats::from_log(&populated_log());
        let out = stats.render(&schema);
        assert!(out.contains("FN"));
        assert!(out.contains("TOTAL"));
        assert!(out.lines().count() >= 5, "{out}");
    }
}
