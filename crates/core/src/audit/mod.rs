//! Data auditing (paper §2, Fig. 4): per-cell change history with
//! provenance, and user-vs-CerFix validation statistics.

mod explain;
mod log;
mod stats;

pub use explain::{explain_cell, explain_tuple};
pub use log::{AuditLog, AuditRecord, AuditSink, CellEvent};
pub use stats::{AttrStats, AuditStats};
