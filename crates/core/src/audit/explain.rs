//! Human-readable provenance explanations.
//!
//! Fig. 4 of the paper: selecting a fixed cell, *"CerFix shows that it
//! has been fixed by normalizing the first name 'M.' to 'Mark'. It
//! further presents what master tuples and editing rules have been
//! employed to make the change."* [`explain_cell`] renders exactly that
//! sentence-level narrative from the audit log, resolving rule ids to
//! names and master rows to their tuples.

use crate::audit::log::{AuditLog, CellEvent};
use crate::master::MasterData;
use cerfix_relation::{AttrId, SchemaRef};
use cerfix_rules::RuleSet;

/// Render the history of one cell of one monitored tuple as prose, one
/// line per event. Returns `None` if the cell has no audit history
/// (never validated).
pub fn explain_cell(
    log: &AuditLog,
    rules: &RuleSet,
    master: &MasterData,
    input: &SchemaRef,
    tuple_id: usize,
    attr: AttrId,
) -> Option<String> {
    let history = log.cell_history(tuple_id, attr);
    if history.is_empty() {
        return None;
    }
    let attr_name = input.attr_name(attr);
    let mut out = String::new();
    for record in history {
        let line = match &record.event {
            CellEvent::UserValidated { old, new } if old == new => format!(
                "round {}: `{attr_name}` confirmed as '{new}' by the user",
                record.round
            ),
            CellEvent::UserValidated { old, new } => format!(
                "round {}: `{attr_name}` corrected from '{old}' to '{new}' by the user",
                record.round
            ),
            CellEvent::RuleFixed {
                rule,
                master_row,
                old,
                new,
            } => {
                let rule_name = rules
                    .get(*rule)
                    .map(|r| r.name().to_string())
                    .unwrap_or_else(|| format!("#{rule}"));
                let master_desc = master
                    .tuple(*master_row)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("row {master_row}"));
                format!(
                    "round {}: `{attr_name}` fixed from '{old}' to '{new}' by rule {rule_name} \
                     using master tuple {master_desc}",
                    record.round
                )
            }
            CellEvent::RuleConfirmed { rule } => {
                let rule_name = rules
                    .get(*rule)
                    .map(|r| r.name().to_string())
                    .unwrap_or_else(|| "the rule engine".to_string());
                format!(
                    "round {}: `{attr_name}` confirmed correct by {rule_name}",
                    record.round
                )
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    Some(out)
}

/// Render the full per-tuple narrative (every audited cell, event order).
pub fn explain_tuple(
    log: &AuditLog,
    rules: &RuleSet,
    master: &MasterData,
    input: &SchemaRef,
    tuple_id: usize,
) -> String {
    let mut out = String::new();
    for record in log.tuple_history(tuple_id) {
        if let Some(text) = explain_cell(log, rules, master, input, tuple_id, record.attr) {
            // explain_cell renders the whole cell history; avoid duplicate
            // blocks by only emitting at the cell's first record.
            let first = log
                .cell_history(tuple_id, record.attr)
                .first()
                .map(|r| r.round)
                .unwrap_or(0);
            if record.round == first && !out.contains(&text) {
                out.push_str(&text);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{DataMonitor, OracleUser};
    use cerfix_gen_free_fixture::fixture;

    /// A tiny self-contained fixture (no dependency on cerfix-gen, which
    /// depends on this crate).
    mod cerfix_gen_free_fixture {
        use crate::master::MasterData;
        use cerfix_relation::{RelationBuilder, Schema, SchemaRef, Tuple};
        use cerfix_rules::{parse_rules, RuleDecl, RuleSet};

        pub fn fixture() -> (SchemaRef, RuleSet, MasterData, Tuple, Tuple) {
            let input = Schema::of_strings(
                "customer",
                [
                    "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
                ],
            )
            .unwrap();
            let ms = Schema::of_strings(
                "master",
                [
                    "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
                ],
            )
            .unwrap();
            let master = MasterData::new(
                RelationBuilder::new(ms.clone())
                    .row_strs([
                        "Mark",
                        "Smith",
                        "020",
                        "6884564",
                        "075568485",
                        "20 Baker St",
                        "Ldn",
                        "NW1 6XE",
                        "25/12/67",
                        "M",
                    ])
                    .build()
                    .unwrap(),
            );
            let dsl = "er phi4: match phn=Mphn fix FN:=FN when (type='2')\n\
                       er phi1: match zip=zip fix AC:=AC when ()";
            let mut rules = RuleSet::new(input.clone(), ms.clone());
            for decl in parse_rules(dsl, &input, &ms).unwrap() {
                if let RuleDecl::Er(r) = decl {
                    rules.add(r).unwrap();
                }
            }
            let dirty = Tuple::of_strings(
                input.clone(),
                [
                    "M.",
                    "Smith",
                    "201",
                    "075568485",
                    "2",
                    "s",
                    "c",
                    "NW1 6XE",
                    "DVD",
                ],
            )
            .unwrap();
            let truth = Tuple::of_strings(
                input.clone(),
                [
                    "Mark",
                    "Smith",
                    "020",
                    "075568485",
                    "2",
                    "s",
                    "c",
                    "NW1 6XE",
                    "DVD",
                ],
            )
            .unwrap();
            (input, rules, master, dirty, truth)
        }
    }

    #[test]
    fn explains_the_fig4_fn_normalization() {
        let (input, rules, master, dirty, truth) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let mut user = OracleUser::new(truth);
        monitor.clean(7, dirty, &mut user).unwrap();
        let fn_attr = input.attr_id("FN").unwrap();
        let text =
            explain_cell(monitor.audit(), &rules, &master, &input, 7, fn_attr).expect("history");
        assert!(text.contains("fixed from 'M.' to 'Mark'"), "{text}");
        assert!(text.contains("rule phi4"), "{text}");
        assert!(text.contains("Mark"), "{text}");
        assert!(text.contains("master tuple"), "{text}");
    }

    #[test]
    fn explains_user_events() {
        let (input, rules, master, dirty, truth) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let mut user = OracleUser::new(truth);
        monitor.clean(0, dirty, &mut user).unwrap();
        let phn = input.attr_id("phn").unwrap();
        let text = explain_cell(monitor.audit(), &rules, &master, &input, 0, phn).unwrap();
        assert!(text.contains("by the user"), "{text}");
        // AC was corrected by the user (201 -> 020) since phi1's zip path
        // also exists; either way the narrative mentions the value.
        let tuple_text = explain_tuple(monitor.audit(), &rules, &master, &input, 0);
        assert!(tuple_text.contains("phn"), "{tuple_text}");
        assert!(tuple_text.lines().count() >= 5, "{tuple_text}");
    }

    #[test]
    fn unknown_cell_has_no_explanation() {
        let (input, rules, master, _, _) = fixture();
        let log = AuditLog::new();
        assert!(explain_cell(&log, &rules, &master, &input, 0, 0).is_none());
        assert_eq!(explain_tuple(&log, &rules, &master, &input, 0), "");
    }
}
