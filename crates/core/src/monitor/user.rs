//! User models for the interactive monitor.
//!
//! The demo interacts with a human filling a form; benchmark runs
//! substitute *simulated users* (DESIGN.md §2). The [`UserAgent`] trait
//! captures exactly the interaction surface the paper describes: the
//! monitor presents a suggestion, the user responds with a set of
//! attributes they assure correct (possibly different from the
//! suggestion) and the true values for them.

use cerfix_relation::{AttrId, Tuple, Value};

/// A (simulated) user in a monitor session.
pub trait UserAgent {
    /// Respond to a suggestion: return the attributes the user validates
    /// this round with their asserted (true) values. Returning an empty
    /// vector means the user declines to validate anything — the monitor
    /// then terminates the session as incomplete.
    fn validate(&mut self, tuple: &Tuple, suggestion: &[AttrId]) -> Vec<(AttrId, Value)>;
}

/// Follows every suggestion, answering with the ground-truth values.
/// This reproduces the demo protocol: the user knows the real entity (it
/// is *their* form) and validates what CerFix asks for.
#[derive(Debug, Clone)]
pub struct OracleUser {
    truth: Tuple,
}

impl OracleUser {
    /// A user who knows `truth`.
    pub fn new(truth: Tuple) -> OracleUser {
        OracleUser { truth }
    }

    /// The truth tuple (for assertions in tests/experiments).
    pub fn truth(&self) -> &Tuple {
        &self.truth
    }
}

impl UserAgent for OracleUser {
    fn validate(&mut self, _tuple: &Tuple, suggestion: &[AttrId]) -> Vec<(AttrId, Value)> {
        suggestion
            .iter()
            .map(|&a| (a, self.truth.get(a).clone()))
            .collect()
    }
}

/// Validates at most `cap` attributes per round (a reluctant user). Used
/// by the suggestion-strategy ablation: smaller caps mean more rounds.
#[derive(Debug, Clone)]
pub struct CappedUser {
    truth: Tuple,
    cap: usize,
}

impl CappedUser {
    /// A user validating at most `cap` suggested attributes per round.
    pub fn new(truth: Tuple, cap: usize) -> CappedUser {
        CappedUser { truth, cap }
    }
}

impl UserAgent for CappedUser {
    fn validate(&mut self, _tuple: &Tuple, suggestion: &[AttrId]) -> Vec<(AttrId, Value)> {
        suggestion
            .iter()
            .take(self.cap)
            .map(|&a| (a, self.truth.get(a).clone()))
            .collect()
    }
}

/// Ignores the first suggestion and validates a preferred attribute set
/// instead — the paper's §3 step 2: *"The users may decide to validate
/// attributes other than those suggested. CerFix reacts by fixing data
/// with editing rules and master data in the same way."* Subsequent
/// rounds follow suggestions.
#[derive(Debug, Clone)]
pub struct PreferringUser {
    truth: Tuple,
    preferred: Vec<AttrId>,
    first_round_done: bool,
}

impl PreferringUser {
    /// A user who validates `preferred` in the first round.
    pub fn new(truth: Tuple, preferred: Vec<AttrId>) -> PreferringUser {
        PreferringUser {
            truth,
            preferred,
            first_round_done: false,
        }
    }
}

impl UserAgent for PreferringUser {
    fn validate(&mut self, _tuple: &Tuple, suggestion: &[AttrId]) -> Vec<(AttrId, Value)> {
        let attrs: Vec<AttrId> = if self.first_round_done {
            suggestion.to_vec()
        } else {
            self.first_round_done = true;
            self.preferred.clone()
        };
        attrs
            .iter()
            .map(|&a| (a, self.truth.get(a).clone()))
            .collect()
    }
}

/// Refuses to validate anything: drives the monitor's incomplete-session
/// path in failure-injection tests.
#[derive(Debug, Clone, Default)]
pub struct SilentUser;

impl UserAgent for SilentUser {
    fn validate(&mut self, _tuple: &Tuple, _suggestion: &[AttrId]) -> Vec<(AttrId, Value)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;

    fn truth() -> Tuple {
        let s = Schema::of_strings("t", ["a", "b", "c"]).unwrap();
        Tuple::of_strings(s, ["1", "2", "3"]).unwrap()
    }

    #[test]
    fn oracle_follows_suggestion() {
        let t = truth();
        let mut u = OracleUser::new(t.clone());
        let out = u.validate(&t, &[2, 0]);
        assert_eq!(out, vec![(2, Value::str("3")), (0, Value::str("1"))]);
        assert_eq!(u.truth().arity(), 3);
    }

    #[test]
    fn capped_limits_per_round() {
        let t = truth();
        let mut u = CappedUser::new(t.clone(), 1);
        assert_eq!(u.validate(&t, &[0, 1, 2]).len(), 1);
        let mut u0 = CappedUser::new(t.clone(), 0);
        assert!(u0.validate(&t, &[0, 1]).is_empty());
    }

    #[test]
    fn preferring_overrides_first_round_only() {
        let t = truth();
        let mut u = PreferringUser::new(t.clone(), vec![1]);
        assert_eq!(u.validate(&t, &[0, 2]), vec![(1, Value::str("2"))]);
        assert_eq!(u.validate(&t, &[0]), vec![(0, Value::str("1"))]);
    }

    #[test]
    fn silent_declines() {
        let t = truth();
        assert!(SilentUser.validate(&t, &[0, 1, 2]).is_empty());
    }
}
