//! Stream cleaning: monitor a sequence of input tuples.
//!
//! The demo fixes "a stream of input tuples" at the point of data entry
//! (paper §3, data auditing); experiments `F4`, `T2` and `T3` run streams
//! of generated dirty tuples through this driver and read the aggregate
//! statistics.

use crate::error::Result;
use crate::monitor::{CleanOutcome, DataMonitor, UserAgent};
use cerfix_relation::Tuple;

/// Aggregate results of cleaning a stream.
#[derive(Debug, Clone, Default)]
pub struct StreamReport {
    /// Per-tuple outcomes, in stream order.
    pub outcomes: Vec<CleanOutcome>,
}

impl StreamReport {
    /// Number of tuples processed.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True iff no tuples were processed.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Tuples that reached a certain fix.
    pub fn complete_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.complete).count()
    }

    /// Mean interaction rounds per tuple.
    pub fn mean_rounds(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.rounds).sum::<usize>() as f64 / self.outcomes.len() as f64
    }

    /// Total attributes validated by users across the stream.
    pub fn total_user_validated(&self) -> usize {
        self.outcomes.iter().map(|o| o.user_validated).sum()
    }

    /// Total attributes validated automatically across the stream.
    pub fn total_auto_validated(&self) -> usize {
        self.outcomes.iter().map(|o| o.auto_validated).sum()
    }

    /// Fraction of validations performed by users (the paper's "20%").
    pub fn user_fraction(&self) -> f64 {
        let u = self.total_user_validated();
        let a = self.total_auto_validated();
        if u + a == 0 {
            0.0
        } else {
            u as f64 / (u + a) as f64
        }
    }

    /// Fraction of validations performed by CerFix (the paper's "80%").
    pub fn auto_fraction(&self) -> f64 {
        let u = self.total_user_validated();
        let a = self.total_auto_validated();
        if u + a == 0 {
            0.0
        } else {
            a as f64 / (u + a) as f64
        }
    }

    /// Total cells changed by rules.
    pub fn total_cells_fixed(&self) -> usize {
        self.outcomes.iter().map(|o| o.cells_fixed_by_rules).sum()
    }
}

/// Clean `tuples` through `monitor`, constructing a user per tuple with
/// `make_user` (typically an [`OracleUser`](crate::monitor::OracleUser)
/// seeded with that tuple's ground truth).
pub fn clean_stream<F>(
    monitor: &DataMonitor<'_>,
    tuples: impl IntoIterator<Item = Tuple>,
    mut make_user: F,
) -> Result<StreamReport>
where
    F: FnMut(usize, &Tuple) -> Box<dyn UserAgent>,
{
    let mut report = StreamReport::default();
    for (idx, tuple) in tuples.into_iter().enumerate() {
        let mut user = make_user(idx, &tuple);
        let outcome = monitor.clean(idx, tuple, user.as_mut())?;
        report.outcomes.push(outcome);
    }
    Ok(report)
}

/// Clean a stream across `threads` worker threads.
///
/// The demo cleans tuples at the point of entry — entries from different
/// users arrive concurrently, and sessions are independent, so the stream
/// parallelizes embarrassingly: the master data's index cache is behind a
/// `RwLock`, the audit log is append-only behind a lock, and each session
/// owns its tuple. Delegates to the order-stable work-stealing executor
/// ([`crate::exec::ordered_map`]) that also backs `cerfix-server`'s batch
/// endpoint: outcomes land in input order regardless of worker count or
/// completion order, and an expensive tuple never serializes the rest of
/// a static chunk behind it. Used by the `T3` scalability experiment's
/// parallel arm.
pub fn clean_stream_parallel<F>(
    monitor: &DataMonitor<'_>,
    tuples: Vec<Tuple>,
    make_user: F,
    threads: usize,
) -> Result<StreamReport>
where
    F: Fn(usize, &Tuple) -> Box<dyn UserAgent + Send> + Sync,
{
    let outcomes = crate::exec::ordered_map(threads, tuples, |idx, tuple| {
        let mut user = make_user(idx, &tuple);
        monitor.clean(idx, tuple, user.as_mut())
    })?;
    Ok(StreamReport { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::MasterData;
    use crate::monitor::OracleUser;
    use cerfix_relation::{RelationBuilder, Schema, Value};
    use cerfix_rules::{EditingRule, PatternTuple, RuleSet};

    #[test]
    fn stream_aggregates() {
        let input = Schema::of_strings("in", ["key", "val", "note"]).unwrap();
        let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["k1", "v1"])
                .row_strs(["k2", "v2"])
                .build()
                .unwrap(),
        );
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "key_val",
                    &input,
                    &ms,
                    vec![(0, 0)],
                    vec![(1, 1)],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        let monitor = DataMonitor::new(&rules, &master);

        let truths = vec![
            Tuple::of_strings(input.clone(), ["k1", "v1", "n1"]).unwrap(),
            Tuple::of_strings(input.clone(), ["k2", "v2", "n2"]).unwrap(),
            // Entity missing from master ⇒ incomplete.
            Tuple::of_strings(input.clone(), ["k9", "v9", "n9"]).unwrap(),
        ];
        let dirty: Vec<Tuple> = truths
            .iter()
            .map(|t| {
                let mut d = t.clone();
                d.set_by_name("val", Value::str("WRONG")).unwrap();
                d
            })
            .collect();
        let truths2 = truths.clone();
        let report = clean_stream(&monitor, dirty, move |idx, _| {
            Box::new(OracleUser::new(truths2[idx].clone()))
        })
        .unwrap();

        assert_eq!(report.len(), 3);
        assert!(!report.is_empty());
        assert_eq!(
            report.complete_count(),
            3,
            "k9 completes via full user validation"
        );
        assert_eq!(report.total_cells_fixed(), 2, "val corrected for k1 and k2");
        assert!(report.mean_rounds() >= 1.0);
        // key and note user-validated (2 per tuple); val auto for k1/k2
        // but user-validated for the master-missing k9.
        assert_eq!(report.total_user_validated(), 3 * 2 + 1);
        assert_eq!(report.total_auto_validated(), 2);
        assert!(report.user_fraction() > 0.0 && report.auto_fraction() > 0.0);
        assert!((report.user_fraction() + report.auto_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let input = Schema::of_strings("in", ["key", "val"]).unwrap();
        let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
        let mut builder = RelationBuilder::new(ms.clone());
        for i in 0..50 {
            builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
        }
        let master = MasterData::new(builder.build().unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "kv",
                    &input,
                    &ms,
                    vec![(0, 0)],
                    vec![(1, 1)],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        let monitor = DataMonitor::new(&rules, &master);

        let truths: Vec<Tuple> = (0..50)
            .map(|i| Tuple::of_strings(input.clone(), [format!("k{i}"), format!("v{i}")]).unwrap())
            .collect();
        let dirty: Vec<Tuple> = truths
            .iter()
            .map(|t| {
                let mut d = t.clone();
                d.set_by_name("val", Value::str("WRONG")).unwrap();
                d
            })
            .collect();

        let truths_seq = truths.clone();
        let sequential = clean_stream(&monitor, dirty.clone(), move |idx, _| {
            Box::new(OracleUser::new(truths_seq[idx].clone()))
        })
        .unwrap();

        let monitor2 = DataMonitor::new(&rules, &master);
        let truths_par = truths.clone();
        let parallel = super::clean_stream_parallel(
            &monitor2,
            dirty,
            move |idx, _| Box::new(OracleUser::new(truths_par[idx].clone())),
            4,
        )
        .unwrap();

        assert_eq!(parallel.len(), sequential.len());
        assert_eq!(parallel.complete_count(), sequential.complete_count());
        for (p, s) in parallel.outcomes.iter().zip(sequential.outcomes.iter()) {
            assert_eq!(p.tuple, s.tuple, "in-order outcomes must match");
            assert_eq!(p.rounds, s.rounds);
        }
        // Both monitors audited every cell event (ordering may differ).
        assert_eq!(monitor.audit().len(), monitor2.audit().len());
    }

    #[test]
    fn parallel_single_thread_falls_back() {
        let input = Schema::of_strings("in", ["a"]).unwrap();
        let ms = Schema::of_strings("m", ["a"]).unwrap();
        let master = MasterData::new(RelationBuilder::new(ms.clone()).build().unwrap());
        let rules = RuleSet::new(input.clone(), ms);
        let monitor = DataMonitor::new(&rules, &master);
        let truth = Tuple::of_strings(input.clone(), ["x"]).unwrap();
        let report = super::clean_stream_parallel(
            &monitor,
            vec![truth.clone()],
            move |_, _| Box::new(OracleUser::new(truth.clone())),
            1,
        )
        .unwrap();
        assert_eq!(report.len(), 1);
        assert!(report.outcomes[0].complete);
    }

    #[test]
    fn empty_stream() {
        let input = Schema::of_strings("in", ["a"]).unwrap();
        let ms = Schema::of_strings("m", ["a"]).unwrap();
        let master = MasterData::new(RelationBuilder::new(ms.clone()).build().unwrap());
        let rules = RuleSet::new(input, ms);
        let monitor = DataMonitor::new(&rules, &master);
        let report = clean_stream(&monitor, Vec::new(), |_, _| {
            Box::new(crate::monitor::SilentUser)
        })
        .unwrap();
        assert!(report.is_empty());
        assert_eq!(report.mean_rounds(), 0.0);
        assert_eq!(report.user_fraction(), 0.0);
    }
}
