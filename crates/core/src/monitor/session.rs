//! Per-tuple monitor sessions.

use cerfix_relation::{AttrId, AttrSet, Tuple};

/// The state of one tuple's interactive cleaning session.
#[derive(Debug, Clone)]
pub struct MonitorSession {
    /// Monitor-assigned id (position in the input stream).
    pub tuple_id: usize,
    /// The tuple, mutated in place as fixes are applied.
    pub tuple: Tuple,
    /// All validated attributes (user + rules).
    pub validated: AttrSet,
    /// Attributes validated by the user.
    pub user_validated: AttrSet,
    /// Attributes validated automatically by rules.
    pub auto_validated: AttrSet,
    /// Completed interaction rounds.
    pub rounds: usize,
}

impl MonitorSession {
    /// Start a session over `tuple`.
    pub fn new(tuple_id: usize, tuple: Tuple) -> MonitorSession {
        MonitorSession {
            tuple_id,
            tuple,
            validated: AttrSet::new(),
            user_validated: AttrSet::new(),
            auto_validated: AttrSet::new(),
            rounds: 0,
        }
    }

    /// True iff every attribute of the tuple is validated — the session
    /// has reached a certain fix (Fig. 3(c), everything green).
    pub fn is_complete(&self) -> bool {
        self.validated.len() == self.tuple.arity()
    }

    /// Attributes not yet validated.
    pub fn unvalidated(&self) -> Vec<AttrId> {
        (0..self.tuple.arity())
            .filter(|&a| !self.validated.contains(a))
            .collect()
    }
}

/// Session status as presented to the driver loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionStatus {
    /// The monitor awaits user validation of the suggested attributes.
    AwaitingUser {
        /// The attributes recommended for validation.
        suggestion: Vec<AttrId>,
    },
    /// All attributes are validated: a certain fix has been reached.
    Complete,
    /// No certain fix is reachable even if the user validates every
    /// remaining useful attribute (e.g. master data lacks the entity).
    /// The tuple remains partially validated.
    Stuck {
        /// Attributes still unvalidated.
        unvalidated: Vec<AttrId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;

    #[test]
    fn lifecycle_flags() {
        let s = Schema::of_strings("t", ["a", "b"]).unwrap();
        let mut session = MonitorSession::new(7, Tuple::of_strings(s, ["1", "2"]).unwrap());
        assert_eq!(session.tuple_id, 7);
        assert!(!session.is_complete());
        assert_eq!(session.unvalidated(), vec![0, 1]);
        session.validated.insert(0);
        assert_eq!(session.unvalidated(), vec![1]);
        session.validated.insert(1);
        assert!(session.is_complete());
        assert!(session.unvalidated().is_empty());
    }

    #[test]
    fn status_equality() {
        assert_eq!(
            SessionStatus::AwaitingUser {
                suggestion: vec![1]
            },
            SessionStatus::AwaitingUser {
                suggestion: vec![1]
            }
        );
        assert_ne!(
            SessionStatus::Complete,
            SessionStatus::Stuck {
                unvalidated: vec![]
            }
        );
    }
}
