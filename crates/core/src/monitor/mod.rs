//! The data monitor — "the most important module of CerFix" (paper §2).
//!
//! Per input tuple the monitor runs the three-step interaction of the
//! paper:
//!
//! 1. **Initial suggestions** — recommend the pre-computed certain regions
//!    (region finder) as the attributes to validate;
//! 2. **Data repairing** — after the user validates some attributes
//!    (suggested or not), iteratively apply editing rules and master data
//!    to fix as many attributes as possible, expanding the validated set
//!    through the inference system;
//! 3. **New suggestion** — if attributes remain unvalidated, compute a
//!    minimal set of additional attributes and go back to step 1.
//!
//! Steps 2–3 repeat until a certain fix is reached (all attributes
//! validated) or the monitor proves no certain fix is reachable.

mod session;
mod stream;
mod user;

pub use session::{MonitorSession, SessionStatus};
pub use stream::{clean_stream, clean_stream_parallel, StreamReport};
pub use user::{CappedUser, OracleUser, PreferringUser, SilentUser, UserAgent};

use crate::audit::{AuditLog, AuditRecord, CellEvent};
use crate::engine::{new_suggestion, run_fixpoint_delta, CompiledRules, FixpointReport};
use crate::error::{CerfixError, Result};
use crate::master::MasterData;
use crate::region::Region;
use cerfix_relation::{AttrId, Tuple, Value};
use cerfix_rules::{EditingRule, RuleId, RuleSet};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Outcome of a full interactive cleaning of one tuple.
#[derive(Debug, Clone)]
pub struct CleanOutcome {
    /// The cleaned tuple.
    pub tuple: Tuple,
    /// True iff a certain fix was reached (all attributes validated).
    pub complete: bool,
    /// Interaction rounds used.
    pub rounds: usize,
    /// Number of attributes validated by the user.
    pub user_validated: usize,
    /// Number of attributes validated automatically by rules.
    pub auto_validated: usize,
    /// Cells whose value rules changed.
    pub cells_fixed_by_rules: usize,
    /// Cells whose value the user corrected while validating.
    pub cells_corrected_by_user: usize,
}

/// The data monitor: rules + master data + pre-computed regions + audit.
#[derive(Debug)]
pub struct DataMonitor<'a> {
    rules: &'a RuleSet,
    master: &'a MasterData,
    /// Compiled execution plan the correcting process runs on (delta
    /// engine). Compiled in [`new`](Self::new); long-lived services share
    /// one plan across per-request monitors via
    /// [`from_plan`](Self::from_plan).
    plan: Arc<CompiledRules>,
    /// Shared so long-lived services hand one pre-computed set to every
    /// per-request monitor without deep-cloning tableaux.
    regions: std::sync::Arc<[Region]>,
    /// `Arc` so long-lived services attach one shared (possibly
    /// disk-spilled) log to every per-request monitor via
    /// [`with_audit`](Self::with_audit); standalone monitors own a
    /// private log.
    audit: Arc<AuditLog>,
    /// Hard cap on interaction rounds (defensive; a productive round
    /// always validates ≥ 1 attribute, so `arity` rounds suffice).
    max_rounds: usize,
}

impl<'a> DataMonitor<'a> {
    /// Create a monitor without pre-computed regions (initial suggestions
    /// then fall back to the inference system). Compiles the rule set
    /// into an execution plan, warming the master indexes.
    pub fn new(rules: &'a RuleSet, master: &'a MasterData) -> DataMonitor<'a> {
        DataMonitor::from_plan(
            rules,
            master,
            Arc::new(CompiledRules::compile(rules, master)),
        )
    }

    /// Create a monitor reusing an already-compiled plan (must have been
    /// compiled from `rules` against `master`) — the shape
    /// `cerfix-server` uses per request, alongside
    /// [`with_shared_regions`](Self::with_shared_regions), so monitor
    /// construction is a couple of refcount bumps.
    pub fn from_plan(
        rules: &'a RuleSet,
        master: &'a MasterData,
        plan: Arc<CompiledRules>,
    ) -> DataMonitor<'a> {
        debug_assert_eq!(plan.len(), rules.len());
        debug_assert_eq!(plan.master_generation(), master.generation());
        DataMonitor {
            plan,
            rules,
            master,
            regions: std::sync::Arc::from(Vec::new()),
            audit: Arc::new(AuditLog::new()),
            max_rounds: 64,
        }
    }

    /// Create a monitor from fully shared parts — plan, regions and
    /// audit log all pre-`Arc`'d. Unlike chaining
    /// [`from_plan`](Self::from_plan) with `with_shared_regions` /
    /// `with_audit`, this allocates nothing (the chained form builds a
    /// throwaway empty region slice and audit log first), which keeps
    /// the server's warmed per-request path allocation-free.
    pub fn from_shared_parts(
        rules: &'a RuleSet,
        master: &'a MasterData,
        plan: Arc<CompiledRules>,
        regions: std::sync::Arc<[Region]>,
        audit: Arc<AuditLog>,
    ) -> DataMonitor<'a> {
        debug_assert_eq!(plan.len(), rules.len());
        debug_assert_eq!(plan.master_generation(), master.generation());
        DataMonitor {
            plan,
            rules,
            master,
            regions,
            audit,
            max_rounds: 64,
        }
    }

    /// The compiled execution plan (shareable across monitors).
    pub fn plan(&self) -> &Arc<CompiledRules> {
        &self.plan
    }

    /// Provide pre-computed certain regions for initial suggestions
    /// (the demo pre-computes these with the region finder "to reduce the
    /// cost", paper §3).
    pub fn with_regions(mut self, regions: Vec<Region>) -> DataMonitor<'a> {
        self.regions = regions.into();
        self
    }

    /// Like [`with_regions`](Self::with_regions), but sharing an already
    /// `Arc`'d set — a refcount bump per monitor instead of a deep clone
    /// (the shape `cerfix-server` uses per request).
    pub fn with_shared_regions(mut self, regions: std::sync::Arc<[Region]>) -> DataMonitor<'a> {
        self.regions = regions;
        self
    }

    /// Attach a shared audit log: every record this monitor produces
    /// goes to `audit` instead of a private log. Long-lived services use
    /// this so all per-request monitors feed one durable provenance
    /// stream.
    pub fn with_audit(mut self, audit: Arc<AuditLog>) -> DataMonitor<'a> {
        self.audit = audit;
        self
    }

    /// The audit log accumulated by this monitor.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The audit log as a shareable handle.
    pub fn audit_handle(&self) -> Arc<AuditLog> {
        Arc::clone(&self.audit)
    }

    /// The rule set in use.
    pub fn rules(&self) -> &RuleSet {
        self.rules
    }

    /// Begin a session for `tuple`.
    pub fn start(&self, tuple_id: usize, tuple: Tuple) -> MonitorSession {
        MonitorSession::new(tuple_id, tuple)
    }

    /// Diagnostic: would validating exactly `attrs` reach a full,
    /// correct fix for `truth`? Runs on the monitor's cached plan — no
    /// per-call compilation (the throwaway-plan shape of the standalone
    /// [`certifies_for`](crate::region::certifies_for) helper).
    pub fn certifies(&self, attrs: &cerfix_relation::AttrSet, truth: &Tuple) -> bool {
        crate::region::certifies_for_with_plan(&self.plan, self.master, attrs, truth)
    }

    /// Rule filter for a session. A rule is counted on for future rounds
    /// only while it is still *live*:
    ///
    /// * its pattern is not falsified by already-validated cells, and
    /// * it has not already stalled — if the rule's full evidence is
    ///   validated but some RHS attribute is not, the last fixpoint
    ///   already tried it and failed (missing or ambiguous master key);
    ///   validated evidence is frozen, so the rule can never fire again.
    ///
    /// Dead rules make their RHS attributes user-mandatory, which is how
    /// the monitor routes around entities absent from master data.
    fn session_filter<'s>(
        session: &'s MonitorSession,
    ) -> impl Fn(RuleId, &EditingRule) -> bool + 's {
        move |_, rule| {
            let pattern_ok = rule.pattern().cells().iter().all(|cell| {
                if session.validated.contains(cell.attr) {
                    cell.op.matches(session.tuple.get(cell.attr))
                } else {
                    true
                }
            });
            if !pattern_ok {
                return false;
            }
            let evidence_done = rule
                .evidence_attrs()
                .iter()
                .all(|&a| session.validated.contains(a));
            let rhs_done = rule
                .input_rhs()
                .iter()
                .all(|&b| session.validated.contains(b));
            // Stalled: had its chance and failed.
            !evidence_done || rhs_done
        }
    }

    /// The monitor's current suggestion for a session.
    ///
    /// First round: the best pre-computed region — the smallest region
    /// consistent with what is already validated (fewest *additional*
    /// attributes). Later rounds (or with no regions): a minimal new
    /// suggestion from the inference system.
    pub fn suggestion(&self, session: &MonitorSession) -> Option<Vec<AttrId>> {
        if session.is_complete() {
            return None;
        }
        let filter = Self::session_filter(session);
        if session.rounds == 0 && !self.regions.is_empty() {
            // Prefer the region needing the fewest extra validations; among
            // ties the smallest region (paper ranking).
            let best = self
                .regions
                .iter()
                .filter(|r| {
                    // A region is usable if its tableau is not already
                    // falsified by validated pattern attributes.
                    r.tableau().iter().any(|p| {
                        p.cells().iter().all(|c| {
                            !session.validated.contains(c.attr)
                                || c.op.matches(session.tuple.get(c.attr))
                        })
                    })
                })
                .min_by_key(|r| {
                    let extra = r
                        .attrs()
                        .iter()
                        .filter(|&&a| !session.validated.contains(a))
                        .count();
                    // Tie-break: the suggestion is made before the tuple's
                    // gate attributes are known, so prefer the region whose
                    // tableau covers the most contexts — it is the most
                    // likely to apply to whatever the user validates.
                    (extra, r.size(), std::cmp::Reverse(r.tableau().len()))
                });
            if let Some(region) = best {
                let extra: Vec<AttrId> = region
                    .attrs()
                    .iter()
                    .copied()
                    .filter(|&a| !session.validated.contains(a))
                    .collect();
                if !extra.is_empty() {
                    return Some(extra);
                }
            }
        }
        // The inference system reasons over BTree sets; this is the cold
        // (user-interaction) path, so the conversion cost is irrelevant.
        let validated: BTreeSet<AttrId> = session.validated.iter().collect();
        new_suggestion(self.rules, &validated, &filter)
            .map(|s| s.into_iter().collect::<Vec<AttrId>>())
            .filter(|s| !s.is_empty())
    }

    /// The session's current status.
    pub fn status(&self, session: &MonitorSession) -> SessionStatus {
        if session.is_complete() {
            return SessionStatus::Complete;
        }
        match self.suggestion(session) {
            Some(suggestion) => SessionStatus::AwaitingUser { suggestion },
            None => SessionStatus::Stuck {
                unvalidated: session.unvalidated(),
            },
        }
    }

    /// Apply user validations (attribute, asserted-true value) to the
    /// session, then run the correcting process to its fixpoint.
    ///
    /// Every user validation and every rule fix is recorded in the audit
    /// log with the session's round number.
    pub fn apply_validation(
        &self,
        session: &mut MonitorSession,
        validations: &[(AttrId, Value)],
    ) -> Result<FixpointReport> {
        session.rounds += 1;
        let arity = session.tuple.arity();
        for (attr, value) in validations {
            if *attr >= arity {
                return Err(CerfixError::InvalidValidation {
                    attr: *attr,
                    message: format!("attribute id out of range (arity {arity})"),
                });
            }
            if value.is_null() {
                return Err(CerfixError::InvalidValidation {
                    attr: *attr,
                    message: "validated values must be known (non-null)".into(),
                });
            }
            let old = session.tuple.get(*attr).clone();
            session.tuple.set(*attr, value.clone())?;
            let newly = session.validated.insert(*attr);
            if newly {
                session.user_validated.insert(*attr);
                self.audit.record(AuditRecord {
                    tuple_id: session.tuple_id,
                    attr: *attr,
                    round: session.rounds,
                    event: CellEvent::UserValidated {
                        old,
                        new: value.clone(),
                    },
                });
            }
        }
        let report = run_fixpoint_delta(
            &self.plan,
            self.master,
            &mut session.tuple,
            &mut session.validated,
        )?;
        for fix in &report.fixes {
            self.audit.record(AuditRecord {
                tuple_id: session.tuple_id,
                attr: fix.attr,
                round: session.rounds,
                event: CellEvent::RuleFixed {
                    rule: fix.rule,
                    master_row: fix.master_row,
                    old: fix.old.clone(),
                    new: fix.new.clone(),
                },
            });
        }
        for &attr in &report.newly_validated {
            session.auto_validated.insert(attr);
            // Confirmations (validated without a value change) also get an
            // audit record; changed cells were recorded above.
            if !report.fixes.iter().any(|f| f.attr == attr) {
                // Attribute confirmed by whichever rule validated it; the
                // fixpoint report does not retain the rule for unchanged
                // cells, so record rule id 0's confirmation generically.
                self.audit.record(AuditRecord {
                    tuple_id: session.tuple_id,
                    attr,
                    round: session.rounds,
                    event: CellEvent::RuleConfirmed { rule: usize::MAX },
                });
            }
        }
        Ok(report)
    }

    /// Drive a full interactive session with a (simulated) user until a
    /// certain fix is reached, the user declines to act, or no certain fix
    /// is reachable.
    pub fn clean(
        &self,
        tuple_id: usize,
        tuple: Tuple,
        user: &mut dyn UserAgent,
    ) -> Result<CleanOutcome> {
        let mut session = self.start(tuple_id, tuple);
        let mut cells_fixed = 0usize;
        let mut user_corrections = 0usize;
        while session.rounds < self.max_rounds {
            let suggestion = match self.status(&session) {
                SessionStatus::Complete | SessionStatus::Stuck { .. } => break,
                SessionStatus::AwaitingUser { suggestion } => suggestion,
            };
            let validations = user.validate(&session.tuple, &suggestion);
            if validations.is_empty() {
                break; // user declined; leave the session incomplete
            }
            for (attr, value) in &validations {
                if !session.validated.contains(*attr) && session.tuple.get(*attr) != value {
                    user_corrections += 1;
                }
            }
            let report = self.apply_validation(&mut session, &validations)?;
            cells_fixed += report.fixes.len();
        }
        Ok(CleanOutcome {
            complete: session.is_complete(),
            rounds: session.rounds,
            user_validated: session.user_validated.len(),
            auto_validated: session.auto_validated.len(),
            cells_fixed_by_rules: cells_fixed,
            cells_corrected_by_user: user_corrections,
            tuple: session.tuple,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema, SchemaRef};
    use cerfix_rules::PatternTuple;

    /// The UK scenario in miniature: rules φ1–φ5 and φ9 suffice to test
    /// the Fig. 3 interaction shape.
    fn fixture() -> (SchemaRef, SchemaRef, RuleSet, MasterData) {
        let input = Schema::of_strings(
            "customer",
            [
                "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let ms = Schema::of_strings(
            "master",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
            ],
        )
        .unwrap();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs([
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "501 Elm St",
                    "Edi",
                    "EH8 4AH",
                    "11/11/55",
                    "M",
                ])
                .row_strs([
                    "Mark",
                    "Smith",
                    "020",
                    "6884564",
                    "075568485",
                    "20 Baker St",
                    "Ldn",
                    "NW1 6XE",
                    "25/12/67",
                    "M",
                ])
                .build()
                .unwrap(),
        );
        let t = |n: &str| input.attr_id(n).unwrap();
        let m = |n: &str| ms.attr_id(n).unwrap();
        let mobile = PatternTuple::empty().with_eq(t("type"), Value::str("2"));
        let home = PatternTuple::empty().with_eq(t("type"), Value::str("1"));
        let geo = PatternTuple::empty().with_ne(t("AC"), Value::str("0800"));
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        #[allow(clippy::type_complexity)]
        let specs: Vec<(&str, Vec<(&str, &str)>, Vec<(&str, &str)>, PatternTuple)> = vec![
            (
                "phi1",
                vec![("zip", "zip")],
                vec![("AC", "AC")],
                PatternTuple::empty(),
            ),
            (
                "phi2",
                vec![("zip", "zip")],
                vec![("str", "str")],
                PatternTuple::empty(),
            ),
            (
                "phi3",
                vec![("zip", "zip")],
                vec![("city", "city")],
                PatternTuple::empty(),
            ),
            (
                "phi4",
                vec![("phn", "Mphn")],
                vec![("FN", "FN")],
                mobile.clone(),
            ),
            ("phi5", vec![("phn", "Mphn")], vec![("LN", "LN")], mobile),
            (
                "phi6",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("str", "str")],
                home.clone(),
            ),
            (
                "phi7",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("city", "city")],
                home.clone(),
            ),
            (
                "phi8",
                vec![("AC", "AC"), ("phn", "Hphn")],
                vec![("zip", "zip")],
                home,
            ),
            ("phi9", vec![("AC", "AC")], vec![("city", "city")], geo),
        ];
        for (name, lhs, rhs, pattern) in specs {
            rules
                .add(
                    cerfix_rules::EditingRule::new(
                        name,
                        &input,
                        &ms,
                        lhs.iter().map(|&(a, b)| (t(a), m(b))).collect::<Vec<_>>(),
                        rhs.iter().map(|&(a, b)| (t(a), m(b))).collect::<Vec<_>>(),
                        pattern,
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        (input, ms, rules, master)
    }

    /// Fig. 3's walkthrough tuple: the user assigned AC=201(wrong),
    /// phn=075568485, type=2 (Mobile), item=DVD; FN is the abbreviated
    /// 'M.'; other fields dirty or empty.
    fn fig3_dirty(input: &SchemaRef) -> Tuple {
        Tuple::of_strings(
            input.clone(),
            [
                "M.",
                "Smith",
                "201",
                "075568485",
                "2",
                "1 Nowhere",
                "???",
                "XXX",
                "DVD",
            ],
        )
        .unwrap()
    }

    fn fig3_truth(input: &SchemaRef) -> Tuple {
        Tuple::of_strings(
            input.clone(),
            [
                "Mark",
                "Smith",
                "020",
                "075568485",
                "2",
                "20 Baker St",
                "Ldn",
                "NW1 6XE",
                "DVD",
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig3_walkthrough_two_rounds() {
        // Round 1: user validates {AC, phn, type, item}; monitor fixes FN
        // ('M.'→'Mark' via φ4 with the second master tuple), LN, city.
        // Round 2: monitor suggests zip; validating it fixes str. All
        // green (Fig. 3(c)).
        let (input, _, rules, master) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let t = |n: &str| input.attr_id(n).unwrap();
        let truth = fig3_truth(&input);
        let mut session = monitor.start(0, fig3_dirty(&input));

        let round1: Vec<(AttrId, Value)> = [t("AC"), t("phn"), t("type"), t("item")]
            .iter()
            .map(|&a| (a, truth.get(a).clone()))
            .collect();
        let report = monitor.apply_validation(&mut session, &round1).unwrap();
        // FN normalized from 'M.' to 'Mark' by φ4 with master row 1.
        let fn_fix = report
            .fixes
            .iter()
            .find(|f| f.attr == t("FN"))
            .expect("FN fixed");
        assert_eq!(fn_fix.old, Value::str("M."));
        assert_eq!(fn_fix.new, Value::str("Mark"));
        assert_eq!(fn_fix.master_row, 1);
        assert!(session.validated.contains(t("LN")));
        assert!(session.validated.contains(t("city")));
        assert!(!session.validated.contains(t("zip")));
        assert!(!session.validated.contains(t("str")));

        // The monitor's next suggestion is exactly zip (paper: "CerFix
        // suggests the users to validate zip code").
        let suggestion = monitor.suggestion(&session).unwrap();
        assert_eq!(suggestion, vec![t("zip")]);

        let round2 = vec![(t("zip"), truth.get(t("zip")).clone())];
        monitor.apply_validation(&mut session, &round2).unwrap();
        assert!(session.is_complete(), "two rounds reach the certain fix");
        assert_eq!(session.rounds, 2);
        assert_eq!(session.tuple, truth);
        assert_eq!(monitor.status(&session), SessionStatus::Complete);
    }

    #[test]
    fn clean_with_oracle_user() {
        let (input, _, rules, master) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let truth = fig3_truth(&input);
        let mut user = OracleUser::new(truth.clone());
        let outcome = monitor.clean(0, fig3_dirty(&input), &mut user).unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.tuple, truth);
        assert!(
            outcome.user_validated <= 5,
            "oracle user validated {} attrs",
            outcome.user_validated
        );
        assert_eq!(
            outcome.user_validated + outcome.auto_validated,
            input.arity()
        );
        assert!(outcome.cells_fixed_by_rules >= 3, "FN, city, str at least");
    }

    #[test]
    fn initial_region_suggestion_is_used() {
        let (input, _, rules, master) = fixture();
        let t = |n: &str| input.attr_id(n).unwrap();
        let region = crate::region::Region::new(
            vec![t("zip"), t("phn"), t("type"), t("item")],
            vec![PatternTuple::empty().with_eq(t("type"), Value::str("2"))],
        );
        let monitor = DataMonitor::new(&rules, &master).with_regions(vec![region]);
        let session = monitor.start(0, fig3_dirty(&input));
        let suggestion = monitor.suggestion(&session).unwrap();
        assert_eq!(
            suggestion
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>(),
            [t("phn"), t("type"), t("zip"), t("item")].into()
        );
    }

    #[test]
    fn user_may_validate_unsuggested_attrs() {
        let (input, _, rules, master) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let truth = fig3_truth(&input);
        let t = |n: &str| input.attr_id(n).unwrap();
        // User insists on validating zip and phn and type first.
        let mut user = PreferringUser::new(truth.clone(), vec![t("zip"), t("phn"), t("type")]);
        let outcome = monitor.clean(0, fig3_dirty(&input), &mut user).unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.tuple, truth);
    }

    #[test]
    fn silent_user_leaves_session_incomplete() {
        let (input, _, rules, master) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let outcome = monitor
            .clean(0, fig3_dirty(&input), &mut SilentUser)
            .unwrap();
        assert!(!outcome.complete);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.user_validated, 0);
    }

    #[test]
    fn missing_entity_degrades_to_full_user_validation() {
        // A truth entity absent from master: the rules stall, the monitor
        // detects the dead rules and keeps suggesting the now-unfixable
        // attributes, and the session still completes — with every
        // attribute validated by the user (a trivially certain fix).
        let (input, _, rules, master) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let unknown_truth = Tuple::of_strings(
            input.clone(),
            [
                "Zoe",
                "Quinn",
                "0161",
                "070000000",
                "2",
                "9 Void St",
                "Mcr",
                "M1 1AA",
                "CD",
            ],
        )
        .unwrap();
        let mut user = OracleUser::new(unknown_truth.clone());
        let outcome = monitor.clean(0, fig3_dirty(&input), &mut user).unwrap();
        assert!(
            outcome.complete,
            "user validation of everything is still a certain fix"
        );
        assert_eq!(outcome.user_validated, input.arity());
        assert_eq!(outcome.auto_validated, 0);
        assert_eq!(outcome.tuple, unknown_truth);
        assert!(
            outcome.rounds >= 2,
            "rules had to stall before the monitor widened"
        );
    }

    #[test]
    fn audit_log_captures_fix_provenance() {
        let (input, _, rules, master) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let truth = fig3_truth(&input);
        let mut user = OracleUser::new(truth);
        monitor.clean(42, fig3_dirty(&input), &mut user).unwrap();
        let t = |n: &str| input.attr_id(n).unwrap();
        let fn_history = monitor.audit().cell_history(42, t("FN"));
        assert_eq!(fn_history.len(), 1);
        match &fn_history[0].event {
            CellEvent::RuleFixed {
                old,
                new,
                master_row,
                ..
            } => {
                assert_eq!(old, &Value::str("M."));
                assert_eq!(new, &Value::str("Mark"));
                assert_eq!(*master_row, 1);
            }
            other => panic!("expected RuleFixed, got {other:?}"),
        }
        // The user validations are also recorded.
        let stats = crate::audit::AuditStats::from_log(monitor.audit());
        let totals = stats.totals();
        assert!(totals.user_validated >= 4);
        assert!(totals.auto_validated >= 4);
    }

    #[test]
    fn validation_input_checks() {
        let (input, _, rules, master) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let mut session = monitor.start(0, fig3_dirty(&input));
        let err = monitor
            .apply_validation(&mut session, &[(99, Value::str("x"))])
            .unwrap_err();
        assert!(matches!(
            err,
            CerfixError::InvalidValidation { attr: 99, .. }
        ));
        let err = monitor
            .apply_validation(&mut session, &[(0, Value::Null)])
            .unwrap_err();
        assert!(matches!(err, CerfixError::InvalidValidation { .. }));
    }

    #[test]
    fn capped_user_needs_more_rounds() {
        let (input, _, rules, master) = fixture();
        let monitor = DataMonitor::new(&rules, &master);
        let truth = fig3_truth(&input);
        let mut patient = OracleUser::new(truth.clone());
        let fast = monitor.clean(0, fig3_dirty(&input), &mut patient).unwrap();
        let mut slow_user = CappedUser::new(truth, 1);
        let slow = monitor
            .clean(1, fig3_dirty(&input), &mut slow_user)
            .unwrap();
        assert!(slow.complete);
        assert!(
            slow.rounds > fast.rounds,
            "{} vs {}",
            slow.rounds,
            fast.rounds
        );
    }
}
