//! The data explorer: rule management and instance configuration.
//!
//! Stands in for the demo's Web interface (paper Fig. 2): view, add,
//! modify and delete editing rules, re-check consistency after every
//! change, and maintain the pre-computed certain regions. The textual
//! tables rendered here mirror the screenshot's rule listing.

use crate::engine::{check_consistency, ConsistencyOptions, ConsistencyReport};
use crate::error::Result;
use crate::master::{MasterData, MasterDelta};
use crate::region::{
    recheck_regions, search_regions, Region, RegionFinderOptions, RegionSearch, RegionSearchResult,
};
use cerfix_relation::{render_table, Tuple};
use cerfix_rules::{parse_rules, render_er_dsl, RuleDecl, RuleSet};

/// A configured CerFix instance: rules, master data and cached regions.
#[derive(Debug)]
pub struct Explorer {
    rules: RuleSet,
    master: MasterData,
    regions: Vec<Region>,
    /// The last full region search, retained so master appends can be
    /// served by delta re-certification instead of a re-search.
    search: Option<RegionSearch>,
}

impl Explorer {
    /// Configure an instance from a rule set and master data (the demo's
    /// "initialization" step, with CSV replacing the JDBC connection).
    pub fn new(rules: RuleSet, master: MasterData) -> Explorer {
        Explorer {
            rules,
            master,
            regions: Vec::new(),
            search: None,
        }
    }

    /// The managed rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The master data.
    pub fn master(&self) -> &MasterData {
        &self.master
    }

    /// The cached certain regions (empty until
    /// [`recompute_regions`](Explorer::recompute_regions) runs).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Add editing rules written in the DSL. Only `er` declarations are
    /// accepted here; CFDs/MDs should be derived into editing rules first
    /// (the demo's rule manager imports eRs, paper §3). Returns how many
    /// rules were added.
    pub fn add_rules_dsl(&mut self, text: &str) -> Result<usize> {
        let decls = parse_rules(text, self.rules.input_schema(), self.rules.master_schema())?;
        let mut added = 0;
        for decl in decls {
            match decl {
                RuleDecl::Er(rule) => {
                    self.rules.add(rule)?;
                    added += 1;
                }
                RuleDecl::Cfd(cfd) => {
                    return Err(cerfix_rules::RuleError::InvalidRule {
                        rule: cfd.name().into(),
                        message: "derive CFDs into editing rules before adding (see cerfix_rules::derive_from_cfd)".into(),
                    }
                    .into());
                }
                RuleDecl::Md(md) => {
                    return Err(cerfix_rules::RuleError::InvalidRule {
                        rule: md.name().into(),
                        message: "derive MDs into editing rules before adding (see cerfix_rules::derive_from_md)".into(),
                    }
                    .into());
                }
            }
        }
        self.regions.clear(); // stale after rule changes
        self.search = None;
        Ok(added)
    }

    /// Delete the rule named `name`.
    pub fn delete_rule(&mut self, name: &str) -> Result<()> {
        self.rules.remove(name)?;
        self.regions.clear();
        self.search = None;
        Ok(())
    }

    /// Replace the rule named `name` with a DSL declaration.
    pub fn update_rule_dsl(&mut self, name: &str, text: &str) -> Result<()> {
        let decls = parse_rules(text, self.rules.input_schema(), self.rules.master_schema())?;
        let [RuleDecl::Er(rule)] = &decls[..] else {
            return Err(cerfix_rules::RuleError::InvalidRule {
                rule: name.into(),
                message: "update requires exactly one `er` declaration".into(),
            }
            .into());
        };
        self.rules.update(name, rule.clone())?;
        self.regions.clear();
        self.search = None;
        Ok(())
    }

    /// Check the rule set's consistency against the master data — the
    /// demo runs this automatically when rules change ("CerFix
    /// automatically tests whether the specified eRs make sense w.r.t.
    /// master data", paper §3).
    pub fn check_consistency(&self) -> ConsistencyReport {
        check_consistency(&self.rules, &self.master, &ConsistencyOptions::default())
    }

    /// Recompute and cache the top-k certain regions for the given truth
    /// universe. The full search is retained so a later
    /// [`append_master`](Explorer::append_master) can patch it by delta
    /// re-certification.
    pub fn recompute_regions(
        &mut self,
        universe: &[Tuple],
        options: &RegionFinderOptions,
    ) -> RegionSearchResult {
        let search = search_regions(&self.rules, &self.master, universe, options);
        self.regions = search.result.regions.clone();
        let result = search.result.clone();
        self.search = Some(search);
        result
    }

    /// Append rows to the master repository. When a region search is
    /// cached, it is patched by delta re-certification (only regions
    /// whose entailed rules watch a touched index key are re-probed);
    /// `universe` must extend the one the cached search was computed
    /// over with the new truths. Returns what changed.
    pub fn append_master(
        &mut self,
        rows: Vec<Tuple>,
        universe: &[Tuple],
        options: &RegionFinderOptions,
    ) -> Result<MasterDelta> {
        let delta = self.master.append_rows(rows)?;
        if let Some(prior) = self.search.take() {
            let search = recheck_regions(&self.rules, &self.master, universe, &prior, options);
            self.regions = search.result.regions.clone();
            self.search = Some(search);
        }
        Ok(delta)
    }

    /// Render the rule listing as Fig. 2 shows it: id, name, match
    /// condition, fixes, pattern.
    pub fn render_rules(&self) -> String {
        let input = self.rules.input_schema();
        let master = self.rules.master_schema();
        let header: Vec<String> = ["id", "name", "rule"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = self
            .rules
            .iter()
            .map(|(id, r)| {
                vec![
                    id.to_string(),
                    r.name().to_string(),
                    render_er_dsl(r, input, master),
                ]
            })
            .collect();
        render_table(&header, &rows)
    }

    /// Render the cached regions, ranked as the region finder produced
    /// them.
    pub fn render_regions(&self) -> String {
        let input = self.rules.input_schema();
        let header: Vec<String> = ["rank", "size", "region"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = self
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| vec![(i + 1).to_string(), r.size().to_string(), r.render(input)])
            .collect();
        render_table(&header, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema};

    fn explorer() -> Explorer {
        let input = Schema::of_strings("customer", ["AC", "city", "zip", "item"]).unwrap();
        let ms = Schema::of_strings("master", ["AC", "city", "zip"]).unwrap();
        let master = MasterData::new(
            RelationBuilder::new(ms.clone())
                .row_strs(["131", "Edi", "EH8"])
                .row_strs(["020", "Ldn", "SW1"])
                .build()
                .unwrap(),
        );
        Explorer::new(RuleSet::new(input, ms), master)
    }

    #[test]
    fn add_list_delete_rules() {
        let mut ex = explorer();
        let added = ex
            .add_rules_dsl(
                "er phi1: match zip=zip fix AC:=AC when ()\n\
                 er phi3: match zip=zip fix city:=city when ()",
            )
            .unwrap();
        assert_eq!(added, 2);
        assert_eq!(ex.rules().len(), 2);
        let listing = ex.render_rules();
        assert!(listing.contains("phi1"));
        assert!(listing.contains("zip=zip"));
        ex.delete_rule("phi1").unwrap();
        assert_eq!(ex.rules().len(), 1);
        assert!(ex.delete_rule("phi1").is_err());
    }

    #[test]
    fn update_rule() {
        let mut ex = explorer();
        ex.add_rules_dsl("er phi1: match zip=zip fix AC:=AC when ()")
            .unwrap();
        ex.update_rule_dsl("phi1", "er phi1: match zip=zip fix city:=city when ()")
            .unwrap();
        let (_, rule) = ex.rules().get_by_name("phi1").unwrap();
        assert_eq!(
            rule.input_rhs(),
            vec![ex.rules().input_schema().attr_id("city").unwrap()]
        );
        // Multiple declarations rejected.
        assert!(ex
            .update_rule_dsl(
                "phi1",
                "er a: match zip=zip fix AC:=AC when ()\ner b: match zip=zip fix city:=city when ()"
            )
            .is_err());
    }

    #[test]
    fn cfd_and_md_declarations_rejected_with_guidance() {
        let mut ex = explorer();
        let err = ex.add_rules_dsl("cfd c1: AC -> city | _ -> _").unwrap_err();
        assert!(err.to_string().contains("derive_from_cfd"));
        let err = ex
            .add_rules_dsl("md m1: AC==AC identify city<=>city")
            .unwrap_err();
        assert!(err.to_string().contains("derive_from_md"));
    }

    #[test]
    fn consistency_check_runs() {
        let mut ex = explorer();
        ex.add_rules_dsl("er phi1: match zip=zip fix city:=city when ()")
            .unwrap();
        ex.add_rules_dsl("er phi2: match AC=AC fix city:=city when ()")
            .unwrap();
        let report = ex.check_consistency();
        // zip=EH8 → Edi vs AC=020 → Ldn can coexist on one tuple.
        assert!(!report.is_consistent());
    }

    #[test]
    fn regions_cached_and_invalidated() {
        let mut ex = explorer();
        ex.add_rules_dsl(
            "er phi1: match zip=zip fix AC:=AC when ()\n\
             er phi3: match zip=zip fix city:=city when ()",
        )
        .unwrap();
        let input = ex.rules().input_schema().clone();
        let universe = vec![
            Tuple::of_strings(input.clone(), ["131", "Edi", "EH8", "CD"]).unwrap(),
            Tuple::of_strings(input.clone(), ["020", "Ldn", "SW1", "DVD"]).unwrap(),
        ];
        let result = ex.recompute_regions(&universe, &RegionFinderOptions::default());
        assert!(!result.regions.is_empty());
        assert_eq!(ex.regions().len(), result.regions.len());
        let rendered = ex.render_regions();
        assert!(rendered.contains("zip"));
        // Rule changes invalidate the cache.
        ex.add_rules_dsl("er extra: match AC=AC fix city:=city when ()")
            .unwrap();
        assert!(ex.regions().is_empty());
    }
}
