//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! shim (see `crates/shims/README.md`).
//!
//! The workspace derives serde traits on its data types to keep the
//! public API source-compatible with the real `serde`, but nothing in the
//! build environment actually serializes through serde (the wire layer in
//! `cerfix-server` is a hand-rolled JSON codec). These derives therefore
//! expand to nothing while still accepting `#[serde(...)]` attributes.

use proc_macro::TokenStream;

/// Accepts the input and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
