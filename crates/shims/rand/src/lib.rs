//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io (see
//! `crates/shims/README.md`), so this crate provides a deterministic,
//! dependency-free stand-in: the `Rng`/`RngCore`/`SeedableRng` traits and
//! a [`rngs::StdRng`] built on SplitMix64. The workspace only ever seeds
//! RNGs explicitly (`seed_from_u64`), so reproducibility — not
//! cryptographic quality — is the requirement, and SplitMix64 passes the
//! statistical bar for workload synthesis.
//!
//! Sequences differ from upstream `rand`'s ChaCha-based `StdRng`; all
//! in-repo consumers derive expectations from generated data rather than
//! hard-coding upstream streams, so this is safe.

#![forbid(unsafe_code)]

/// The core of an RNG: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the shim's `Standard`
/// distribution).
pub trait Sample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough bounded draw: Lemire-style multiply-shift would
/// need 128-bit; modulo with a 64-bit source over the small ranges this
/// workspace draws (< 2^32) keeps bias under 2^-32.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG trait: convenience draws over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNGs.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64; Steele, Lea & Flood
    /// 2014). Passes BigCrush when taken 64 bits at a time and is the
    /// canonical seeder for larger-state PRNGs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u8);
            assert!(y <= 5);
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
            let n = rng.gen_range(1..13);
            assert!((1..13).contains(&n));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
