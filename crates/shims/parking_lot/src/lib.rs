//! Offline shim for the subset of `parking_lot` used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors API-compatible stand-ins for its few external dependencies
//! (see `crates/shims/README.md`). This one wraps `std::sync` primitives
//! with `parking_lot`'s panic-free, non-`Result` locking API. Poisoning
//! is deliberately ignored: `parking_lot` has no poisoning, so matching
//! its semantics means recovering the inner data from a poisoned std
//! lock instead of propagating the panic.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutably borrow the inner value (no locking needed: `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
