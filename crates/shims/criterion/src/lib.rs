//! Offline shim for the subset of `criterion` used by the workspace
//! benches (see `crates/shims/README.md`).
//!
//! Not a statistics engine: it warms up, runs timed batches for the
//! configured measurement window, and prints mean/min wall-clock per
//! iteration (plus element throughput when declared). The point is that
//! `cargo bench` builds and produces comparable numbers offline, with the
//! bench sources written against the real criterion API so swapping the
//! true crate back in is a one-line manifest change.
//!
//! Set `CERFIX_BENCH_FAST=1` to cap warm-up/measurement at ~200ms each —
//! used by CI smoke runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter-only id (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Config {
    fn effective(&self) -> Config {
        if std::env::var_os("CERFIX_BENCH_FAST").is_some() {
            Config {
                sample_size: self.sample_size.min(10),
                measurement_time: self.measurement_time.min(Duration::from_millis(200)),
                warm_up_time: self.warm_up_time.min(Duration::from_millis(50)),
            }
        } else {
            *self
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher<'a> {
    config: Config,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Time `routine`, discarding its output via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let config = self.config.effective();
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed() / warm_iters.max(1) as u32;
        let batch =
            (Duration::from_millis(10).as_nanos() / est.as_nanos().max(1)).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut min = Duration::MAX;
        let deadline = Instant::now() + config.measurement_time;
        let mut samples = 0usize;
        while (Instant::now() < deadline && samples < 10 * config.sample_size)
            || samples < config.sample_size.min(10)
        {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            iters += batch;
            min = min.min(elapsed / batch as u32);
            samples += 1;
        }
        *self.result = Some(Sample {
            mean: total / iters.max(1) as u32,
            min,
            iters,
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn run_one(
    config: Config,
    label: &str,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher<'_>),
) {
    let mut result = None;
    f(&mut Bencher {
        config,
        result: &mut result,
    });
    match result {
        Some(s) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if s.mean > Duration::ZERO => {
                    format!("  {:>12.0} elem/s", n as f64 / s.mean.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if s.mean > Duration::ZERO => {
                    format!("  {:>12.0} B/s", n as f64 / s.mean.as_secs_f64())
                }
                _ => String::new(),
            };
            println!(
                "{label:<48} mean {:>10}  min {:>10}  ({} iters){rate}",
                fmt_duration(s.mean),
                fmt_duration(s.min),
                s.iters
            );
        }
        None => println!("{label:<48} (no measurement: bencher not driven)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Override the warm-up window for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F: FnOnce(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(self.config, &label, self.throughput, f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.config, &label, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (upstream finalizes reports here; the shim prints
    /// eagerly, so this only marks the boundary).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.config.sample_size = n;
        self
    }

    /// Wall-clock budget for timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.config.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnOnce(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.config, name, None, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            name: name.into(),
            config,
            throughput: None,
            _criterion: self,
        }
    }

    /// Upstream parses CLI args here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run registered groups (no-op: groups run eagerly).
    pub fn final_summary(&mut self) {}
}

/// Mirrors `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion_main!`: a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CERFIX_BENCH_FAST", "1");
        let config = Config {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
        };
        let mut result = None;
        let mut b = Bencher {
            config,
            result: &mut result,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        let s = result.expect("sample recorded");
        assert!(s.iters > 0);
        assert!(s.min <= s.mean);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
