//! Offline shim for the subset of `proptest` used by the workspace's
//! property tests (see `crates/shims/README.md`).
//!
//! Deterministic random testing without shrinking: each `proptest!` test
//! draws its configured number of cases from a fixed-seed [`rand`] shim
//! RNG (seeded per test name, so adding tests doesn't perturb others).
//! On failure the offending generated inputs are printed via the panic
//! message — there is no minimization pass, which is an accepted loss
//! against upstream in exchange for building offline.
//!
//! Regex string strategies support the shapes the tests use: a single
//! character class (`[a-zA-Z0-9 ']`, `[\x20-\x7E\n]`, `\PC`) followed by
//! an optional `{n}` / `{m,n}` repetition.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — draw a fresh case.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-case verdict returned by a `proptest!` body.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    //! Case-loop driver.

    pub use super::{TestCaseError, TestCaseResult};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mirrors `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Drives the case loop for one `proptest!` test.
    pub struct TestRunner {
        config: Config,
        rng: StdRng,
    }

    impl TestRunner {
        /// Seed the RNG from the test name (stable across runs and
        /// across unrelated test additions). `PROPTEST_SHIM_SEED`
        /// perturbs the seed for exploratory runs.
        pub fn new(config: Config, test_name: &str) -> TestRunner {
            let mut seed = 0x5EEDu64;
            for b in test_name.bytes() {
                seed = seed.wrapping_mul(1099511628211).wrapping_add(b as u64);
            }
            if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
                seed = seed.wrapping_add(extra.parse::<u64>().unwrap_or(0));
            }
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(seed),
            }
        }

        /// Run until `config.cases` cases are accepted; panic on the
        /// first failure. Rejections (`prop_assume!`) draw a fresh case,
        /// capped at 20× the case budget.
        pub fn run_cases(&mut self, mut case: impl FnMut(&mut StdRng) -> TestCaseResult) {
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = self.config.cases.saturating_mul(20).max(100);
            while accepted < self.config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest shim: too many rejections ({accepted}/{} accepted after {attempts} attempts)",
                    self.config.cases
                );
                match case(&mut self.rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(_)) => continue,
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed (case {accepted}): {msg}")
                    }
                }
            }
        }
    }
}

/// Value generators. Object-safe so `prop_oneof!` can box mixed concrete
/// strategies of one value type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        use rand::Rng;
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// String literals are regex strategies (`keys in "[a-c]{1,2}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        string::compile(self)
            .expect("invalid regex literal strategy")
            .generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::Rng::gen(rng)
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> i64 {
        rand::Rng::gen(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Mix uniform [0,1) with magnitudes and signed values; avoid NaN
        // (upstream's default f64 strategy is also NaN-free).
        use rand::Rng;
        let base: f64 = rng.gen();
        let scale = 10f64.powi(rng.gen_range(-3..9i32));
        let signed = if rng.gen::<bool>() {
            base * scale
        } else {
            -base * scale
        };
        match rng.gen_range(0..16u8) {
            0 => 0.0,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => signed,
        }
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Sizes accepted by [`vec`]/[`btree_set`]: an exact count or a
    /// half-open range.
    pub trait SizeRange {
        /// Draw a size.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// `Vec` of `size.pick()` draws from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` built from up to `size.pick()` draws (duplicates
    /// collapse, matching upstream's semantics of set size ≤ requested).
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// `None` a quarter of the time, `Some(inner)` otherwise (upstream's
    /// default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0..4u8) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    //! Regex-shaped string strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A compiled single-class regex generator.
    pub struct RegexGeneratorStrategy {
        pool: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let n = if self.min == self.max {
                self.min
            } else {
                rng.gen_range(self.min..=self.max)
            };
            (0..n)
                .map(|_| self.pool[rng.gen_range(0..self.pool.len())])
                .collect()
        }
    }

    /// Regex parse error.
    #[derive(Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    fn parse_class_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<char> {
        match chars.next()? {
            'n' => Some('\n'),
            't' => Some('\t'),
            'r' => Some('\r'),
            'x' => {
                let hi = chars.next()?;
                let lo = chars.next()?;
                let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
                Some(byte as char)
            }
            c @ ('\\' | ']' | '[' | '-' | '\'' | '"') => Some(c),
            other => Some(other),
        }
    }

    /// Compile the supported shape: one character class (`[...]` or
    /// `\PC`) with an optional `{n}` / `{m,n}` suffix.
    pub fn compile(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let pool: Vec<char> = match chars.peek() {
            Some('[') => {
                chars.next();
                let mut pool = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    let c = chars.next().ok_or_else(|| Error(pattern.into()))?;
                    match c {
                        ']' => {
                            pool.extend(pending.take());
                            break;
                        }
                        '\\' => {
                            pool.extend(pending.take());
                            pending = Some(
                                parse_class_escape(&mut chars)
                                    .ok_or_else(|| Error(pattern.into()))?,
                            );
                        }
                        '-' if pending.is_some() && chars.peek() != Some(&']') => {
                            let lo = pending.take().expect("checked");
                            let hi = match chars.next().ok_or_else(|| Error(pattern.into()))? {
                                '\\' => parse_class_escape(&mut chars)
                                    .ok_or_else(|| Error(pattern.into()))?,
                                c => c,
                            };
                            if (lo as u32) > (hi as u32) {
                                return Err(Error(pattern.into()));
                            }
                            pool.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                        }
                        c => {
                            pool.extend(pending.take());
                            pending = Some(c);
                        }
                    }
                }
                pool
            }
            Some('\\') => {
                chars.next();
                match (chars.next(), chars.next()) {
                    // \PC: any non-control character. Printable ASCII
                    // plus a smattering of non-ASCII exercises the same
                    // parser paths without full Unicode tables.
                    (Some('P'), Some('C')) => {
                        let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
                        pool.extend(['é', 'ß', 'λ', '中', '🦀']);
                        pool
                    }
                    _ => return Err(Error(pattern.into())),
                }
            }
            _ => return Err(Error(pattern.into())),
        };
        if pool.is_empty() {
            return Err(Error(pattern.into()));
        }
        let (min, max) = match chars.peek() {
            None => (1, 1),
            Some('{') => {
                chars.next();
                let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().map_err(|_| Error(pattern.into()))?,
                        hi.parse().map_err(|_| Error(pattern.into()))?,
                    ),
                    None => {
                        let n: usize = body.parse().map_err(|_| Error(pattern.into()))?;
                        (n, n)
                    }
                };
                if chars.next().is_some() {
                    return Err(Error(pattern.into()));
                }
                (lo, hi)
            }
            Some(_) => return Err(Error(pattern.into())),
        };
        if min > max {
            return Err(Error(pattern.into()));
        }
        Ok(RegexGeneratorStrategy { pool, min, max })
    }

    /// Public entry mirroring `proptest::string::string_regex`.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile(pattern)
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Reject the current case and draw a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fail unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fail unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`: {}\n  both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l
            )));
        }
    }};
}

/// Uniform choice between strategy arms yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The test-defining macro. Accepts the upstream shape: an optional
/// `#![proptest_config(...)]` header and `#[test]` functions whose
/// arguments are drawn from strategies via `arg in strategy`.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run_cases(|rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                    (|| -> $crate::TestCaseResult { $body Ok(()) })()
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regex_pools() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = crate::string::string_regex("[a-c]{1,2}").unwrap();
        for _ in 0..200 {
            let out = Strategy::generate(&s, &mut rng);
            assert!((1..=2).contains(&out.len()));
            assert!(out.chars().all(|c| ('a'..='c').contains(&c)), "{out:?}");
        }
        let hex = crate::string::string_regex("[\\x20-\\x7E]{0,16}").unwrap();
        for _ in 0..200 {
            let out = Strategy::generate(&hex, &mut rng);
            assert!(out.len() <= 16);
            assert!(out.chars().all(|c| (' '..='~').contains(&c)), "{out:?}");
        }
        let quote = crate::string::string_regex("[a-zA-Z0-9 ']{1,12}").unwrap();
        let mut saw_quote = false;
        for _ in 0..500 {
            saw_quote |= Strategy::generate(&quote, &mut rng).contains('\'');
        }
        assert!(saw_quote, "quote char reachable");
        assert!(crate::string::string_regex("a+b").is_err());
        // Exact repetition and the \PC class.
        let exact = crate::string::string_regex("[a-z]{4}").unwrap();
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 4);
        let pc = crate::string::string_regex("\\PC{0,60}").unwrap();
        for _ in 0..100 {
            assert!(Strategy::generate(&pc, &mut rng)
                .chars()
                .all(|c| !c.is_control()));
        }
    }

    #[test]
    fn literal_str_strategy_and_newline_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = Strategy::generate(&"[\\x20-\\x7E\\n]{0,20}", &mut rng);
        assert!(out.len() <= 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and `#[test]` both ride through the macro.
        #[test]
        fn macro_end_to_end(
            x in 0usize..10,
            pair in (0u8..3, 1i64..=4),
            v in crate::collection::vec(0usize..5, 2..6),
            opt in crate::option::of(0usize..4),
            set in crate::collection::btree_set(0usize..4, 0..4),
        ) {
            prop_assume!(x != 9);
            prop_assert!(x < 9);
            prop_assert!(pair.0 < 3 && (1..=4).contains(&pair.1));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(set.len() < 4);
            if let Some(o) = opt {
                prop_assert_ne!(o, 99);
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = prop_oneof![
            Just(0u8),
            (1u8..2).prop_map(|x| x),
            any::<bool>().prop_map(u8::from),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            seen.insert(Strategy::generate(&s, &mut rng));
        }
        assert!(seen.contains(&0) && seen.contains(&1));
    }
}
