//! Offline shim for `serde` (see `crates/shims/README.md`).
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile unchanged.
//! No trait machinery is provided because nothing in this workspace
//! serializes through serde — `cerfix-server`'s wire format is a
//! hand-rolled JSON codec (`cerfix_server::wire`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
