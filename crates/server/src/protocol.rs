//! The typed request layer of the wire protocol.
//!
//! Every protocol exchange is one JSON object per line. Requests carry
//! an `"op"` discriminator; responses carry `"ok": true` plus op-specific
//! fields, or `"ok": false` with an `"error"` string. The full field
//! reference lives in the repository README ("cerfix-server protocol").
//!
//! This module converts between [`Json`] and the typed [`Request`] enum;
//! responses are built directly as [`Json`] by the service (they are
//! write-only on the server side) and picked apart field-wise by the
//! [`Client`](crate::Client).

use crate::wire::scan::{ObjectScanner, RawValue};
use crate::wire::{Json, WireError};
use cerfix_relation::Value;

/// Reusable per-connection parse/render scratch, threaded through
/// [`CleaningService::handle_line_into`](crate::CleaningService::handle_line_into):
/// holds the resolved-validation and string-unescape buffers so the
/// warmed request path performs no steady-state allocations.
#[derive(Debug, Default)]
pub struct RequestScratch {
    /// Resolved `(attribute id, value)` validations for the hot
    /// `session.validate` path.
    pub(crate) validations: Vec<(usize, Value)>,
    /// Unescape buffer for string payloads containing escapes.
    pub(crate) unescape: String,
}

/// A hot request shape recognized by the single-pass slice scanner —
/// the session ops a pipelining client hammers. Everything else (and
/// any line the scanner finds irregular) takes the tree-parser path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the ops ARE session.*; names mirror the wire
pub(crate) enum HotOp<'a> {
    SessionGet {
        session: u64,
    },
    SessionFix {
        session: u64,
    },
    SessionValidate {
        session: u64,
        /// Raw `{...}` span of the `validations` object (re-scanned by
        /// the service against its schema).
        validations: &'a str,
    },
    SessionCommit {
        session: u64,
    },
    SessionAbort {
        session: u64,
    },
}

impl HotOp<'_> {
    /// The op name, for latency classification.
    pub(crate) fn op(&self) -> &'static str {
        match self {
            HotOp::SessionGet { .. } => "session.get",
            HotOp::SessionFix { .. } => "session.fix",
            HotOp::SessionValidate { .. } => "session.validate",
            HotOp::SessionCommit { .. } => "session.commit",
            HotOp::SessionAbort { .. } => "session.abort",
        }
    }
}

/// What one scanner pass over a request line found.
#[derive(Debug, Default)]
pub(crate) struct ScannedLine<'a> {
    /// Raw span of a client-supplied `id` field, echoed in the response.
    pub(crate) id: Option<&'a str>,
    /// The recognized hot shape, when the line is one.
    pub(crate) hot: Option<HotOp<'a>>,
    /// The plain `op` string, when the scanner saw one — feeds the
    /// admission shedder before the tree parser spends any work.
    pub(crate) op: Option<&'a str>,
    /// Client request deadline in milliseconds from receipt. A value
    /// the scanner cannot read as `u64` is treated as absent, matching
    /// the tree parser's unknown-field tolerance.
    pub(crate) deadline_ms: Option<u64>,
}

/// Single allocation-free pass over a request line: extracts the
/// response-correlation `id` (any op) and recognizes the hot session
/// shapes. A malformed line yields neither — the tree parser then owns
/// the error message.
pub(crate) fn scan_line(line: &str) -> ScannedLine<'_> {
    let Some(mut scanner) = ObjectScanner::new(line) else {
        return ScannedLine::default();
    };
    let mut id = None;
    let mut op = None;
    let mut session = None;
    let mut validations = None;
    let mut deadline_ms = None;
    // `fastable` drops on any field the scanner cannot vouch for; `id`
    // keeps being collected so even tree-path responses echo it.
    let mut fastable = true;
    while let Some((key, value, span)) = scanner.next_field() {
        let Some(key) = key.as_plain() else {
            fastable = false;
            continue;
        };
        match key {
            // First occurrence wins, matching `Json::get` on the tree.
            "op" => match value {
                RawValue::Str(s) if op.is_none() => match s.as_plain() {
                    Some(plain) => op = Some(plain),
                    None => fastable = false,
                },
                _ if op.is_none() => fastable = false,
                _ => {}
            },
            "session" if session.is_none() => match value.as_u64() {
                Some(s) => session = Some(s),
                None => fastable = false,
            },
            "validations" if validations.is_none() => match value {
                RawValue::Obj(span) => validations = Some(span),
                _ => fastable = false,
            },
            "id" if id.is_none() => id = Some(span),
            "deadline_ms" if deadline_ms.is_none() => deadline_ms = value.as_u64(),
            _ => {}
        }
    }
    if !scanner.ok() {
        // Malformed line: the id span cannot be trusted either.
        return ScannedLine::default();
    }
    let hot = if fastable {
        match (op, session) {
            (Some("session.get"), Some(session)) => Some(HotOp::SessionGet { session }),
            (Some("session.fix"), Some(session)) => Some(HotOp::SessionFix { session }),
            (Some("session.commit"), Some(session)) => Some(HotOp::SessionCommit { session }),
            (Some("session.abort"), Some(session)) => Some(HotOp::SessionAbort { session }),
            (Some("session.validate"), Some(session)) => {
                validations.map(|validations| HotOp::SessionValidate {
                    session,
                    validations,
                })
            }
            _ => None,
        }
    } else {
        None
    };
    ScannedLine {
        id,
        hot,
        op,
        deadline_ms,
    }
}

/// Protocol revision, reported by `hello` and checked by clients.
/// Version 2 added `audit.read`, `rules.reload` and the `stats` alias
/// for `metrics`; version 3 added `master.append` (append rows to the
/// master repository with delta re-certification of cached regions);
/// version 4 added the observability surface — `trace.read` (recent and
/// slow request spans) and `metrics.prom` (Prometheus text exposition)
/// — plus `version`/`uptime_secs` fields on `hello` and `stats`;
/// version 5 added replication — `replica.sync` (tail the primary's
/// journal from an `(epoch, offset)` cursor; the cursor doubles as the
/// follower's durability ack) and `replica.promote` (fence the old
/// primary behind an epoch bump and start serving writes) — plus
/// `role`/`epoch`/`primary` fields on `hello` and the `not_primary` /
/// `stale_epoch` error contract on follower mutations;
/// version 6 added the cluster observability surface — `health`
/// (liveness/readiness probe with causes), `log.read` (the structured
/// diagnostic ring, filterable by level/subsystem), `metrics.history`
/// (the in-process metric time-series ring, for server-side rates),
/// `cluster.status` (one federated per-node role/epoch/health/lag/rate
/// document, fanned out to known peers) and `config.set` (journaled
/// runtime tuning of `slow_ms` and the trace/diag ring sizes);
/// version 7 added the storage fault-tolerance surface — `scrub` (walk
/// the data directory's durable files verifying every checksum, torn
/// tails distinguished from corruption) and the `resync` flag on
/// `replica.sync` (a follower whose journal is poisoned or corrupt
/// demands a fresh snapshot instead of an incremental batch) — plus the
/// `degraded: disk_full` / `storage_error` error contract on mutations;
/// version 8 added the overload-protection surface — an optional
/// `deadline_ms` field on every request (expired work is shed with a
/// `deadline_exceeded` error before any engine or fsync cost is paid),
/// the `overloaded` / `draining` retryable error contract from the
/// priority-class admission shedder, `server.drain` (stop accepting,
/// finish in-flight work within a bound, final snapshot, clean exit)
/// and the `peer_timeout_ms` key on `config.set`.
pub const PROTOCOL_VERSION: u64 = 8;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Service / protocol identification.
    Hello,
    /// Open a session for one input tuple.
    SessionCreate {
        /// Cell values, in schema order.
        tuple: Vec<Value>,
    },
    /// Re-read a session's state (also how a reconnecting client
    /// re-attaches to a session created on another connection).
    SessionGet {
        /// Server-assigned session id.
        session: u64,
    },
    /// Assert attribute values as true, then run the correcting process.
    SessionValidate {
        /// Server-assigned session id.
        session: u64,
        /// `(attribute name, asserted value)` pairs.
        validations: Vec<(String, Value)>,
    },
    /// Run the correcting process without new assertions.
    SessionFix {
        /// Server-assigned session id.
        session: u64,
    },
    /// Close the session, returning the final tuple.
    SessionCommit {
        /// Server-assigned session id.
        session: u64,
    },
    /// Discard the session.
    SessionAbort {
        /// Server-assigned session id.
        session: u64,
    },
    /// Batch-clean tuples, trusting the named columns (fanned across
    /// the service worker pool; outcomes come back in input order).
    Clean {
        /// Input tuples, each in schema order.
        tuples: Vec<Vec<Value>>,
        /// Column names taken as validated per tuple.
        trust: Vec<String>,
    },
    /// Top-k certain regions (served from the per-ruleset cache).
    Regions {
        /// Override the service's default k.
        top_k: Option<usize>,
    },
    /// Rule-set consistency verdict (cached).
    Check {
        /// `"strict"` (default) or `"entity-coherent"`.
        mode: Option<String>,
    },
    /// Ranged read of cell-level audit provenance records (served from
    /// the in-memory window and the disk spill). Clients page through
    /// history by advancing `start`.
    AuditRead {
        /// Global record index to start at (append order, 0-based).
        start: u64,
        /// Maximum records to return (server-capped).
        count: Option<u64>,
    },
    /// Atomically swap the active rule set for one parsed from DSL
    /// text. Journaled, so recovery replays later events against the
    /// right rules.
    RulesReload {
        /// Editing-rule DSL (same syntax as `--rules` files).
        rules: String,
    },
    /// Append rows to the master repository. The engine recompiles
    /// against the new generation and cached certain regions are patched
    /// by delta re-certification. Journaled.
    MasterAppend {
        /// Rows to append, each in master-schema order.
        tuples: Vec<Vec<Value>>,
    },
    /// Service counters.
    Metrics,
    /// Every counter, gauge and full latency histogram in Prometheus
    /// text exposition format (returned as the `body` string field of a
    /// normal one-line JSON response).
    MetricsProm,
    /// Recent request spans and the slow-request log from the trace
    /// ring: per-stage timings and engine-stat deltas, correlated to
    /// client request ids.
    TraceRead {
        /// Maximum spans to return from each ring (server-capped).
        limit: Option<u64>,
    },
    /// Pull a batch of journal events from an `(epoch, offset)` cursor —
    /// the follower side of journal-tailing replication. The cursor is
    /// the follower's *durable* position, so each poll also acks
    /// everything before it (quorum-ack commits count these cursors).
    ReplicaSync {
        /// Stable follower identity (its listen address), keyed in the
        /// primary's follower registry.
        follower: String,
        /// Cursor epoch: the snapshot epoch of the follower's journal.
        epoch: u64,
        /// Cursor offset: durable events applied within that epoch.
        offset: u64,
        /// Maximum events to return (server-capped).
        max: Option<u64>,
        /// Demand a fresh snapshot instead of an incremental batch —
        /// sent by a follower whose journal is poisoned (fsync failure)
        /// or corrupt, repairing itself from the primary's state.
        resync: bool,
    },
    /// Promote this (follower) node to primary: bump the snapshot epoch
    /// so the old primary's stale-epoch stream is fenced off, stop
    /// tailing, and start accepting session mutations.
    ReplicaPromote,
    /// Liveness/readiness probe: alive/ready booleans computed from
    /// real signals (journal flusher, fsync latency, queue depth,
    /// replication lag, epoch fencing), with the failing causes named.
    Health,
    /// Read recent events from the structured diagnostic log ring,
    /// newest first.
    LogRead {
        /// Maximum events to return (server-capped).
        limit: Option<u64>,
        /// Minimum severity (`debug`/`info`/`warn`/`error`).
        level: Option<String>,
        /// Only events from one subsystem (`server`/`net`/`journal`/
        /// `replication`/`health`/`config`).
        subsystem: Option<String>,
    },
    /// Read the in-process metric time-series ring: periodic counter
    /// snapshots from which rates (req/s, fsync/s, lag trend) are
    /// computable without external scrape infrastructure.
    MetricsHistory {
        /// Maximum samples to return, newest last (server-capped).
        limit: Option<u64>,
    },
    /// Federated cluster view: this node's role/epoch/health/lag/rates
    /// plus (unless `fanout` is false) the same document fetched from
    /// every known peer — the primary's registered followers or the
    /// follower's primary.
    ClusterStatus {
        /// Fan out to peers (default true; inner fan-out requests set
        /// it false so federation stays one level deep).
        fanout: bool,
    },
    /// Set a runtime-tunable configuration knob (`slow_ms`,
    /// `trace_buffer`, `diag_buffer`). Journaled, so the setting
    /// survives restart.
    ConfigSet {
        /// Knob name.
        key: String,
        /// New value (non-negative integer; milliseconds or slots).
        value: u64,
    },
    /// Walk the data directory's durable files (journal, snapshot,
    /// audit segment) verifying every checksum online. Torn tails are
    /// legal crash residue; complete frames failing their CRC are
    /// reported as typed corruption entries.
    Scrub,
    /// Graceful drain: stop accepting connections, refuse new sessions
    /// with a `draining` error, let in-flight sessions finish (or hand
    /// off) within a bound, then take a final snapshot and exit clean —
    /// the rolling-restart primitive that drops zero acked work.
    Drain {
        /// Override the default in-flight hand-off bound, in ms.
        wait_ms: Option<u64>,
    },
    /// Ask the server process to stop accepting connections.
    Shutdown,
}

fn need<'a>(json: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    json.get(key)
        .ok_or_else(|| WireError(format!("missing field `{key}`")))
}

fn need_session(json: &Json) -> Result<u64, WireError> {
    need(json, "session")?
        .as_u64()
        .ok_or_else(|| WireError("`session` must be a non-negative integer".into()))
}

fn values_array(json: &Json, what: &str) -> Result<Vec<Value>, WireError> {
    json.as_arr()
        .ok_or_else(|| WireError(format!("`{what}` must be an array of cell values")))?
        .iter()
        .map(Json::to_value)
        .collect()
}

fn string_array(json: &Json, what: &str) -> Result<Vec<String>, WireError> {
    json.as_arr()
        .ok_or_else(|| WireError(format!("`{what}` must be an array of strings")))?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| WireError(format!("`{what}` entries must be strings")))
        })
        .collect()
}

impl Request {
    /// The `"op"` string naming this request.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Hello => "hello",
            Request::SessionCreate { .. } => "session.create",
            Request::SessionGet { .. } => "session.get",
            Request::SessionValidate { .. } => "session.validate",
            Request::SessionFix { .. } => "session.fix",
            Request::SessionCommit { .. } => "session.commit",
            Request::SessionAbort { .. } => "session.abort",
            Request::Clean { .. } => "clean",
            Request::Regions { .. } => "regions",
            Request::Check { .. } => "check",
            Request::AuditRead { .. } => "audit.read",
            Request::RulesReload { .. } => "rules.reload",
            Request::MasterAppend { .. } => "master.append",
            Request::Metrics => "metrics",
            Request::MetricsProm => "metrics.prom",
            Request::TraceRead { .. } => "trace.read",
            Request::ReplicaSync { .. } => "replica.sync",
            Request::ReplicaPromote => "replica.promote",
            Request::Health => "health",
            Request::LogRead { .. } => "log.read",
            Request::MetricsHistory { .. } => "metrics.history",
            Request::ClusterStatus { .. } => "cluster.status",
            Request::ConfigSet { .. } => "config.set",
            Request::Scrub => "scrub",
            Request::Drain { .. } => "server.drain",
            Request::Shutdown => "shutdown",
        }
    }

    /// Parse one protocol line.
    pub fn parse_line(line: &str) -> Result<Request, WireError> {
        let json = Json::parse(line)?;
        let op = need(&json, "op")?
            .as_str()
            .ok_or_else(|| WireError("`op` must be a string".into()))?;
        Ok(match op {
            "hello" => Request::Hello,
            "session.create" => Request::SessionCreate {
                tuple: values_array(need(&json, "tuple")?, "tuple")?,
            },
            "session.get" => Request::SessionGet {
                session: need_session(&json)?,
            },
            "session.validate" => {
                let validations = match need(&json, "validations")? {
                    Json::Obj(fields) => fields
                        .iter()
                        .map(|(name, v)| Ok((name.clone(), v.to_value()?)))
                        .collect::<Result<Vec<_>, WireError>>()?,
                    _ => {
                        return Err(WireError(
                            "`validations` must be an object of attr → value".into(),
                        ))
                    }
                };
                Request::SessionValidate {
                    session: need_session(&json)?,
                    validations,
                }
            }
            "session.fix" => Request::SessionFix {
                session: need_session(&json)?,
            },
            "session.commit" => Request::SessionCommit {
                session: need_session(&json)?,
            },
            "session.abort" => Request::SessionAbort {
                session: need_session(&json)?,
            },
            "clean" => {
                let tuples = need(&json, "tuples")?
                    .as_arr()
                    .ok_or_else(|| WireError("`tuples` must be an array".into()))?
                    .iter()
                    .map(|t| values_array(t, "tuples[i]"))
                    .collect::<Result<Vec<_>, WireError>>()?;
                let trust = match json.get("trust") {
                    Some(t) => string_array(t, "trust")?,
                    None => Vec::new(),
                };
                Request::Clean { tuples, trust }
            }
            "regions" => Request::Regions {
                top_k: match json.get("top_k") {
                    Some(k) => Some(
                        k.as_u64()
                            .ok_or_else(|| WireError("`top_k` must be an integer".into()))?
                            as usize,
                    ),
                    None => None,
                },
            },
            "check" => Request::Check {
                mode: json.get("mode").and_then(Json::as_str).map(str::to_string),
            },
            "audit.read" => Request::AuditRead {
                start: match json.get("start") {
                    Some(s) => s.as_u64().ok_or_else(|| {
                        WireError("`start` must be a non-negative integer".into())
                    })?,
                    None => 0,
                },
                count: match json.get("count") {
                    Some(c) => Some(c.as_u64().ok_or_else(|| {
                        WireError("`count` must be a non-negative integer".into())
                    })?),
                    None => None,
                },
            },
            "rules.reload" => Request::RulesReload {
                rules: need(&json, "rules")?
                    .as_str()
                    .ok_or_else(|| WireError("`rules` must be a DSL string".into()))?
                    .to_string(),
            },
            "master.append" => Request::MasterAppend {
                tuples: need(&json, "tuples")?
                    .as_arr()
                    .ok_or_else(|| WireError("`tuples` must be an array".into()))?
                    .iter()
                    .map(|t| values_array(t, "tuples[i]"))
                    .collect::<Result<Vec<_>, WireError>>()?,
            },
            // `stats` is an alias kept for operational tooling symmetry.
            "metrics" | "stats" => Request::Metrics,
            "metrics.prom" => Request::MetricsProm,
            "trace.read" => Request::TraceRead {
                limit: match json.get("limit") {
                    Some(l) => Some(l.as_u64().ok_or_else(|| {
                        WireError("`limit` must be a non-negative integer".into())
                    })?),
                    None => None,
                },
            },
            "replica.sync" => {
                Request::ReplicaSync {
                    follower: need(&json, "follower")?
                        .as_str()
                        .ok_or_else(|| WireError("`follower` must be a string id".into()))?
                        .to_string(),
                    epoch: need(&json, "epoch")?.as_u64().ok_or_else(|| {
                        WireError("`epoch` must be a non-negative integer".into())
                    })?,
                    offset: need(&json, "offset")?.as_u64().ok_or_else(|| {
                        WireError("`offset` must be a non-negative integer".into())
                    })?,
                    max: match json.get("max") {
                        Some(m) => Some(m.as_u64().ok_or_else(|| {
                            WireError("`max` must be a non-negative integer".into())
                        })?),
                        None => None,
                    },
                    // Absent on the wire from pre-v7 followers.
                    resync: match json.get("resync") {
                        Some(r) => r
                            .as_bool()
                            .ok_or_else(|| WireError("`resync` must be a boolean".into()))?,
                        None => false,
                    },
                }
            }
            "replica.promote" => Request::ReplicaPromote,
            "health" => Request::Health,
            "log.read" => Request::LogRead {
                limit: match json.get("limit") {
                    Some(l) => Some(l.as_u64().ok_or_else(|| {
                        WireError("`limit` must be a non-negative integer".into())
                    })?),
                    None => None,
                },
                level: match json.get("level") {
                    Some(l) => Some(
                        l.as_str()
                            .ok_or_else(|| WireError("`level` must be a string".into()))?
                            .to_string(),
                    ),
                    None => None,
                },
                subsystem: match json.get("subsystem") {
                    Some(s) => Some(
                        s.as_str()
                            .ok_or_else(|| WireError("`subsystem` must be a string".into()))?
                            .to_string(),
                    ),
                    None => None,
                },
            },
            "metrics.history" => Request::MetricsHistory {
                limit: match json.get("limit") {
                    Some(l) => Some(l.as_u64().ok_or_else(|| {
                        WireError("`limit` must be a non-negative integer".into())
                    })?),
                    None => None,
                },
            },
            "cluster.status" => Request::ClusterStatus {
                fanout: match json.get("fanout") {
                    Some(f) => f
                        .as_bool()
                        .ok_or_else(|| WireError("`fanout` must be a boolean".into()))?,
                    None => true,
                },
            },
            "config.set" => Request::ConfigSet {
                key: need(&json, "key")?
                    .as_str()
                    .ok_or_else(|| WireError("`key` must be a string".into()))?
                    .to_string(),
                value: need(&json, "value")?
                    .as_u64()
                    .ok_or_else(|| WireError("`value` must be a non-negative integer".into()))?,
            },
            "scrub" => Request::Scrub,
            "server.drain" => Request::Drain {
                wait_ms: match json.get("wait_ms") {
                    Some(w) => Some(w.as_u64().ok_or_else(|| {
                        WireError("`wait_ms` must be a non-negative integer".into())
                    })?),
                    None => None,
                },
            },
            "shutdown" => Request::Shutdown,
            other => return Err(WireError(format!("unknown op `{other}`"))),
        })
    }

    /// Encode for the wire (used by clients).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![("op".into(), Json::str(self.op()))];
        match self {
            Request::Hello
            | Request::Metrics
            | Request::MetricsProm
            | Request::ReplicaPromote
            | Request::Health
            | Request::Scrub
            | Request::Shutdown => {}
            Request::Drain { wait_ms } => {
                if let Some(wait_ms) = wait_ms {
                    fields.push(("wait_ms".into(), Json::Num(*wait_ms as f64)));
                }
            }
            Request::LogRead {
                limit,
                level,
                subsystem,
            } => {
                if let Some(limit) = limit {
                    fields.push(("limit".into(), Json::Num(*limit as f64)));
                }
                if let Some(level) = level {
                    fields.push(("level".into(), Json::str(level.clone())));
                }
                if let Some(subsystem) = subsystem {
                    fields.push(("subsystem".into(), Json::str(subsystem.clone())));
                }
            }
            Request::MetricsHistory { limit } => {
                if let Some(limit) = limit {
                    fields.push(("limit".into(), Json::Num(*limit as f64)));
                }
            }
            Request::ClusterStatus { fanout } => {
                if !fanout {
                    fields.push(("fanout".into(), Json::Bool(false)));
                }
            }
            Request::ConfigSet { key, value } => {
                fields.push(("key".into(), Json::str(key.clone())));
                fields.push(("value".into(), Json::Num(*value as f64)));
            }
            Request::ReplicaSync {
                follower,
                epoch,
                offset,
                max,
                resync,
            } => {
                fields.push(("follower".into(), Json::str(follower.clone())));
                fields.push(("epoch".into(), Json::Num(*epoch as f64)));
                fields.push(("offset".into(), Json::Num(*offset as f64)));
                if let Some(max) = max {
                    fields.push(("max".into(), Json::Num(*max as f64)));
                }
                // Encoded only when set, so pre-v7 primaries still
                // parse the common case.
                if *resync {
                    fields.push(("resync".into(), Json::Bool(true)));
                }
            }
            Request::TraceRead { limit } => {
                if let Some(limit) = limit {
                    fields.push(("limit".into(), Json::Num(*limit as f64)));
                }
            }
            Request::SessionCreate { tuple } => {
                fields.push((
                    "tuple".into(),
                    Json::Arr(tuple.iter().map(Json::from_value).collect()),
                ));
            }
            Request::SessionGet { session }
            | Request::SessionFix { session }
            | Request::SessionCommit { session }
            | Request::SessionAbort { session } => {
                fields.push(("session".into(), Json::Num(*session as f64)));
            }
            Request::SessionValidate {
                session,
                validations,
            } => {
                fields.push(("session".into(), Json::Num(*session as f64)));
                fields.push((
                    "validations".into(),
                    Json::Obj(
                        validations
                            .iter()
                            .map(|(name, value)| (name.clone(), Json::from_value(value)))
                            .collect(),
                    ),
                ));
            }
            Request::Clean { tuples, trust } => {
                fields.push((
                    "tuples".into(),
                    Json::Arr(
                        tuples
                            .iter()
                            .map(|t| Json::Arr(t.iter().map(Json::from_value).collect()))
                            .collect(),
                    ),
                ));
                fields.push((
                    "trust".into(),
                    Json::Arr(trust.iter().map(|s| Json::str(s.clone())).collect()),
                ));
            }
            Request::Regions { top_k } => {
                if let Some(k) = top_k {
                    fields.push(("top_k".into(), Json::Num(*k as f64)));
                }
            }
            Request::Check { mode } => {
                if let Some(mode) = mode {
                    fields.push(("mode".into(), Json::str(mode.clone())));
                }
            }
            Request::AuditRead { start, count } => {
                fields.push(("start".into(), Json::Num(*start as f64)));
                if let Some(count) = count {
                    fields.push(("count".into(), Json::Num(*count as f64)));
                }
            }
            Request::RulesReload { rules } => {
                fields.push(("rules".into(), Json::str(rules.clone())));
            }
            Request::MasterAppend { tuples } => {
                fields.push((
                    "tuples".into(),
                    Json::Arr(
                        tuples
                            .iter()
                            .map(|t| Json::Arr(t.iter().map(Json::from_value).collect()))
                            .collect(),
                    ),
                ));
            }
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(request: Request) {
        let line = request.to_json().render();
        assert_eq!(Request::parse_line(&line).unwrap(), request, "{line}");
    }

    #[test]
    fn all_ops_round_trip() {
        round_trip(Request::Hello);
        round_trip(Request::SessionCreate {
            tuple: vec![
                Value::str("a"),
                Value::Null,
                Value::Int(3),
                Value::Bool(true),
            ],
        });
        round_trip(Request::SessionGet { session: 7 });
        round_trip(Request::SessionValidate {
            session: 7,
            validations: vec![("zip".into(), Value::str("EH8 4AH"))],
        });
        round_trip(Request::SessionFix { session: 7 });
        round_trip(Request::SessionCommit { session: 9 });
        round_trip(Request::SessionAbort { session: 9 });
        round_trip(Request::Clean {
            tuples: vec![vec![Value::str("x")], vec![Value::str("y")]],
            trust: vec!["key".into()],
        });
        round_trip(Request::Regions { top_k: Some(4) });
        round_trip(Request::Regions { top_k: None });
        round_trip(Request::Check {
            mode: Some("strict".into()),
        });
        round_trip(Request::Check { mode: None });
        round_trip(Request::AuditRead {
            start: 128,
            count: Some(64),
        });
        round_trip(Request::AuditRead {
            start: 0,
            count: None,
        });
        round_trip(Request::RulesReload {
            rules: "er phi1: match zip=zip fix AC:=AC when ()".into(),
        });
        round_trip(Request::MasterAppend {
            tuples: vec![vec![Value::str("G12"), Value::Null], vec![Value::Int(3)]],
        });
        round_trip(Request::Metrics);
        round_trip(Request::MetricsProm);
        round_trip(Request::TraceRead { limit: Some(16) });
        round_trip(Request::TraceRead { limit: None });
        round_trip(Request::ReplicaSync {
            follower: "127.0.0.1:9102".into(),
            epoch: 3,
            offset: 4096,
            max: Some(512),
            resync: false,
        });
        round_trip(Request::ReplicaSync {
            follower: "b".into(),
            epoch: 0,
            offset: 0,
            max: None,
            resync: true,
        });
        round_trip(Request::ReplicaPromote);
        round_trip(Request::Health);
        round_trip(Request::LogRead {
            limit: Some(32),
            level: Some("warn".into()),
            subsystem: Some("replication".into()),
        });
        round_trip(Request::LogRead {
            limit: None,
            level: None,
            subsystem: None,
        });
        round_trip(Request::MetricsHistory { limit: Some(60) });
        round_trip(Request::MetricsHistory { limit: None });
        round_trip(Request::ClusterStatus { fanout: true });
        round_trip(Request::ClusterStatus { fanout: false });
        round_trip(Request::ConfigSet {
            key: "slow_ms".into(),
            value: 250,
        });
        round_trip(Request::Scrub);
        round_trip(Request::Drain { wait_ms: Some(500) });
        round_trip(Request::Drain { wait_ms: None });
        round_trip(Request::Shutdown);
    }

    #[test]
    fn replica_sync_resync_defaults_false_for_pre_v7_followers() {
        assert_eq!(
            Request::parse_line(r#"{"op":"replica.sync","follower":"a","epoch":1,"offset":2}"#)
                .unwrap(),
            Request::ReplicaSync {
                follower: "a".into(),
                epoch: 1,
                offset: 2,
                max: None,
                resync: false,
            }
        );
    }

    #[test]
    fn cluster_status_fanout_defaults_true() {
        assert_eq!(
            Request::parse_line(r#"{"op":"cluster.status"}"#).unwrap(),
            Request::ClusterStatus { fanout: true }
        );
    }

    #[test]
    fn stats_is_an_alias_for_metrics_and_audit_defaults() {
        assert_eq!(
            Request::parse_line(r#"{"op":"stats"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            Request::parse_line(r#"{"op":"audit.read"}"#).unwrap(),
            Request::AuditRead {
                start: 0,
                count: None
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"session.get"}"#,
            r#"{"op":"session.get","session":-1}"#,
            r#"{"op":"session.create"}"#,
            r#"{"op":"session.create","tuple":"no"}"#,
            r#"{"op":"session.validate","session":1,"validations":[1]}"#,
            r#"{"op":"clean","tuples":[{"a":1}]}"#,
            r#"{"op":"regions","top_k":"many"}"#,
            r#"{"op":"audit.read","start":-4}"#,
            r#"{"op":"audit.read","count":"all"}"#,
            r#"{"op":"trace.read","limit":"all"}"#,
            r#"{"op":"trace.read","limit":-1}"#,
            r#"{"op":"rules.reload"}"#,
            r#"{"op":"rules.reload","rules":7}"#,
            r#"{"op":"master.append"}"#,
            r#"{"op":"master.append","tuples":"no"}"#,
            r#"{"op":"master.append","tuples":[7]}"#,
            r#"{"op":"replica.sync"}"#,
            r#"{"op":"replica.sync","follower":7,"epoch":0,"offset":0}"#,
            r#"{"op":"replica.sync","follower":"b","offset":0}"#,
            r#"{"op":"replica.sync","follower":"b","epoch":-1,"offset":0}"#,
            r#"{"op":"replica.sync","follower":"b","epoch":0,"offset":0,"max":"all"}"#,
            r#"{"op":"log.read","limit":"all"}"#,
            r#"{"op":"log.read","level":7}"#,
            r#"{"op":"log.read","subsystem":[]}"#,
            r#"{"op":"metrics.history","limit":-1}"#,
            r#"{"op":"cluster.status","fanout":"yes"}"#,
            r#"{"op":"config.set"}"#,
            r#"{"op":"config.set","key":"slow_ms"}"#,
            r#"{"op":"config.set","key":7,"value":1}"#,
            r#"{"op":"config.set","key":"slow_ms","value":"fast"}"#,
            r#"{"op":"server.drain","wait_ms":"forever"}"#,
            r#"{"op":"server.drain","wait_ms":-1}"#,
            "not json",
        ] {
            assert!(Request::parse_line(line).is_err(), "{line} should fail");
        }
    }

    #[test]
    fn scan_line_recognizes_hot_shapes_and_ids() {
        let scanned = scan_line(r#"{"op":"session.get","session":7,"id":42}"#);
        assert_eq!(scanned.id, Some("42"));
        assert_eq!(scanned.hot, Some(HotOp::SessionGet { session: 7 }));

        let scanned = scan_line(
            r#"{"id":"x-1","op":"session.validate","session":3,"validations":{"zip":"EH8"}}"#,
        );
        assert_eq!(scanned.id, Some("\"x-1\""));
        assert_eq!(
            scanned.hot,
            Some(HotOp::SessionValidate {
                session: 3,
                validations: r#"{"zip":"EH8"}"#,
            })
        );

        for (line, why) in [
            (r#"{"op":"clean","tuples":[],"id":9}"#, "not a hot op"),
            (r#"{"op":"session.get"}"#, "missing session"),
            (r#"{"op":"session.get","session":-1,"id":9}"#, "bad session"),
            (r#"{"op":"session.validate","session":1}"#, "no validations"),
        ] {
            assert_eq!(scan_line(line).hot, None, "{why}");
        }
        // The id is still collected for tree-path responses...
        assert_eq!(
            scan_line(r#"{"op":"clean","tuples":[],"id":9}"#).id,
            Some("9")
        );
        // ...but not from malformed lines.
        let malformed = scan_line(r#"{"id":5,"op":"#);
        assert_eq!(malformed.id, None);
        assert_eq!(malformed.hot, None);
    }

    #[test]
    fn scan_line_first_occurrence_wins_like_tree_get() {
        let scanned = scan_line(r#"{"op":"session.get","session":1,"session":2,"id":7,"id":8}"#);
        assert_eq!(scanned.hot, Some(HotOp::SessionGet { session: 1 }));
        assert_eq!(scanned.id, Some("7"));
    }

    #[test]
    fn scan_line_collects_op_and_deadline() {
        let scanned = scan_line(r#"{"op":"clean","tuples":[],"deadline_ms":250}"#);
        assert_eq!(scanned.op, Some("clean"));
        assert_eq!(scanned.deadline_ms, Some(250));

        // A deadline the scanner cannot read as u64 is treated as absent,
        // like any other unknown/ill-typed field on the tree path.
        let scanned = scan_line(r#"{"op":"hello","deadline_ms":"soon"}"#);
        assert_eq!(scanned.op, Some("hello"));
        assert_eq!(scanned.deadline_ms, None);
        assert_eq!(
            scan_line(r#"{"op":"hello","deadline_ms":-5}"#).deadline_ms,
            None
        );

        // Zero is a real (deterministically expired) deadline.
        assert_eq!(
            scan_line(r#"{"op":"hello","deadline_ms":0}"#).deadline_ms,
            Some(0)
        );
    }

    #[test]
    fn clean_without_trust_defaults_empty() {
        let parsed = Request::parse_line(r#"{"op":"clean","tuples":[]}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Clean {
                tuples: vec![],
                trust: vec![]
            }
        );
    }
}
