//! The cleaning service: shared state + request dispatch.
//!
//! A [`CleaningService`] is the long-lived, shared, concurrent front end
//! over the core [`DataMonitor`]: one immutable `Arc<MasterData>` +
//! `Arc<RuleSet>` pair serves every session (the demo's "master database
//! shared by many clerks"), a [`SessionManager`] tracks in-flight
//! interactive sessions with idle eviction, a [`WorkerPool`] fans batch
//! `clean` requests across workers, and an [`AnalysisCache`] memoizes
//! region searches and consistency verdicts per rule set.
//!
//! The service is transport-agnostic: [`CleaningService::handle`] maps a
//! typed [`Request`] to a JSON response, and
//! [`CleaningService::handle_line`] wraps that in wire parsing — the TCP
//! server and the in-process client both speak through it, so tests
//! exercise the exact production code path without sockets.

use crate::cache::{ruleset_fingerprint, AnalysisCache};
use crate::metrics::ServiceMetrics;
use crate::protocol::{Request, PROTOCOL_VERSION};
use crate::session::{SessionError, SessionManager};
use crate::wire::Json;
use cerfix::{
    check_consistency, find_regions, CompiledRules, ConsistencyOptions, DataMonitor,
    FixpointReport, MasterData, MonitorSession, Region, RegionFinderOptions, SessionStatus,
    WorkerPool,
};
use cerfix_relation::{SchemaRef, Tuple, Value};
use cerfix_rules::RuleSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for a [`CleaningService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the batch pool.
    pub workers: usize,
    /// Idle time after which a session may be evicted.
    pub session_ttl: Duration,
    /// Maximum live sessions.
    pub max_sessions: usize,
    /// Default k for region requests and monitor suggestions.
    pub region_top_k: usize,
    /// Pre-compute regions at startup (first sessions then start warm,
    /// matching the demo's "pre-computed to reduce the cost").
    pub precompute_regions: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            session_ttl: Duration::from_secs(15 * 60),
            max_sessions: 10_000,
            region_top_k: 8,
            precompute_regions: true,
        }
    }
}

struct ServiceInner {
    master: Arc<MasterData>,
    rules: Arc<RuleSet>,
    /// Compiled execution plan shared by every per-request monitor
    /// (masks + index snapshots resolved once, at startup).
    plan: Arc<CompiledRules>,
    /// Pre-computed certain regions handed to every monitor (shared:
    /// each monitor construction is a refcount bump, not a deep clone).
    regions: std::sync::Arc<[Region]>,
    fingerprint: u64,
    pool: WorkerPool,
    sessions: SessionManager,
    cache: AnalysisCache,
    metrics: ServiceMetrics,
    config: ServiceConfig,
    shutdown: AtomicBool,
}

/// The concurrent multi-session cleaning service. Cheap to clone (an
/// `Arc` handle); all clones share sessions, cache, pool and metrics.
#[derive(Clone)]
pub struct CleaningService {
    inner: Arc<ServiceInner>,
}

impl std::fmt::Debug for CleaningService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleaningService")
            .field("rules", &self.inner.rules.len())
            .field("master_rows", &self.inner.master.len())
            .field("workers", &self.inner.pool.threads())
            .field("live_sessions", &self.inner.sessions.len())
            .finish()
    }
}

impl CleaningService {
    /// Build a service over shared master data and rules.
    pub fn new(
        master: Arc<MasterData>,
        rules: Arc<RuleSet>,
        config: ServiceConfig,
    ) -> CleaningService {
        master.warm_indexes(rules.iter().map(|(_, r)| r));
        let fingerprint = ruleset_fingerprint(&rules);
        let cache = AnalysisCache::new();
        let metrics = ServiceMetrics::new();
        // Compile the execution plan once at startup (indexes are warm,
        // so this just resolves snapshots and builds the rule masks).
        let (plan, _) = cache.plan(fingerprint, master.generation(), &metrics, || {
            CompiledRules::compile(&rules, &master)
        });
        let regions = if config.precompute_regions {
            let universe = universe_from_master(rules.input_schema(), &master);
            let (result, _) = cache.regions(fingerprint, config.region_top_k, &metrics, || {
                find_regions(
                    &rules,
                    &master,
                    &universe,
                    &RegionFinderOptions {
                        top_k: config.region_top_k,
                        ..Default::default()
                    },
                )
            });
            result.regions.clone()
        } else {
            Vec::new()
        };
        let regions: std::sync::Arc<[Region]> = regions.into();
        CleaningService {
            inner: Arc::new(ServiceInner {
                pool: WorkerPool::new(config.workers),
                sessions: SessionManager::new(config.session_ttl, config.max_sessions),
                fingerprint,
                cache,
                metrics,
                regions,
                plan,
                master,
                rules,
                config,
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// The service's input schema (what session tuples must match).
    pub fn input_schema(&self) -> &SchemaRef {
        self.inner.rules.input_schema()
    }

    /// Live session count.
    pub fn live_sessions(&self) -> usize {
        self.inner.sessions.len()
    }

    /// Worker threads in the batch pool.
    pub fn workers(&self) -> usize {
        self.inner.pool.threads()
    }

    /// Counters.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// True once a `shutdown` request has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Evict idle sessions now; returns how many were reaped. The TCP
    /// server calls this periodically; embedders with their own runtime
    /// can too.
    pub fn sweep_idle_sessions(&self) -> usize {
        let evicted = self.inner.sessions.evict_idle();
        if evicted > 0 {
            self.inner.metrics.sessions_evicted(evicted as u64);
        }
        evicted
    }

    fn monitor(&self) -> DataMonitor<'_> {
        DataMonitor::from_plan(
            &self.inner.rules,
            &self.inner.master,
            Arc::clone(&self.inner.plan),
        )
        .with_shared_regions(std::sync::Arc::clone(&self.inner.regions))
    }

    /// Handle one wire line: parse, dispatch, render. Never panics on
    /// malformed input — errors come back as `{"ok":false,...}` lines.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match Request::parse_line(line) {
            Ok(request) => self.handle(&request),
            Err(e) => {
                self.inner.metrics.request();
                self.error(e.to_string())
            }
        };
        response.render()
    }

    /// Dispatch one typed request.
    pub fn handle(&self, request: &Request) -> Json {
        self.inner.metrics.request();
        let result = match request {
            Request::Hello => Ok(self.hello()),
            Request::SessionCreate { tuple } => self.session_create(tuple),
            Request::SessionGet { session } => self.session_get(*session),
            Request::SessionValidate {
                session,
                validations,
            } => self.session_validate(*session, validations),
            Request::SessionFix { session } => self.session_validate(*session, &[]),
            Request::SessionCommit { session } => self.session_commit(*session),
            Request::SessionAbort { session } => self.session_abort(*session),
            Request::Clean { tuples, trust } => self.clean_batch(tuples.clone(), trust),
            Request::Regions { top_k } => Ok(self.regions(*top_k)),
            Request::Check { mode } => self.check(mode.as_deref()),
            Request::Metrics => Ok(self.metrics_response()),
            Request::Shutdown => {
                self.inner.shutdown.store(true, Ordering::Release);
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("stopping", Json::Bool(true)),
                ]))
            }
        };
        result.unwrap_or_else(|message| self.error(message))
    }

    fn error(&self, message: String) -> Json {
        self.inner.metrics.error();
        Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message))])
    }

    fn hello(&self) -> Json {
        Json::obj([
            ("ok", Json::Bool(true)),
            ("service", Json::str("cerfix-server")),
            ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
            ("workers", Json::Num(self.workers() as f64)),
            ("rules", Json::Num(self.inner.rules.len() as f64)),
            ("master_rows", Json::Num(self.inner.master.len() as f64)),
            ("input_arity", Json::Num(self.input_schema().arity() as f64)),
            (
                "attributes",
                Json::Arr(
                    self.input_schema()
                        .attributes()
                        .iter()
                        .map(|a| Json::str(a.name()))
                        .collect(),
                ),
            ),
        ])
    }

    fn session_create(&self, values: &[Value]) -> Result<Json, String> {
        let schema = self.input_schema().clone();
        if values.len() != schema.arity() {
            return Err(format!(
                "tuple has {} values but schema `{}` has arity {}",
                values.len(),
                schema.name(),
                schema.arity()
            ));
        }
        let tuple = Tuple::new(schema, values.to_vec()).map_err(|e| e.to_string())?;
        let id = self
            .inner
            .sessions
            .create(MonitorSession::new(0, tuple))
            .map_err(|e| e.to_string())?;
        self.inner.metrics.session_created();
        // The monitor uses tuple_id for audit attribution; align it with
        // the server-assigned id.
        self.with_monitor_session(id, |_, session| {
            session.tuple_id = id as usize;
        })?;
        self.session_view(id, None)
    }

    fn with_monitor_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&DataMonitor<'_>, &mut MonitorSession) -> R,
    ) -> Result<R, String> {
        let monitor = self.monitor();
        self.inner
            .sessions
            .with_session(id, |session| f(&monitor, session))
            .map_err(|e: SessionError| e.to_string())
    }

    /// The common session snapshot, with optional fixpoint-report extras.
    fn session_view(&self, id: u64, report: Option<FixpointReport>) -> Result<Json, String> {
        let schema = self.input_schema().clone();
        self.with_monitor_session(id, |monitor, session| {
            let status = monitor.status(session);
            let mut fields: Vec<(&'static str, Json)> = vec![
                ("ok", Json::Bool(true)),
                ("session", Json::Num(id as f64)),
                (
                    "status",
                    Json::str(match &status {
                        SessionStatus::AwaitingUser { .. } => "awaiting_user",
                        SessionStatus::Complete => "complete",
                        SessionStatus::Stuck { .. } => "stuck",
                    }),
                ),
                (
                    "tuple",
                    Json::Arr(
                        session
                            .tuple
                            .values()
                            .iter()
                            .map(Json::from_value)
                            .collect(),
                    ),
                ),
                ("rounds", Json::Num(session.rounds as f64)),
                (
                    "validated",
                    Json::Arr(
                        session
                            .validated
                            .iter()
                            .map(|a| Json::str(schema.attr_name(a)))
                            .collect(),
                    ),
                ),
            ];
            match status {
                SessionStatus::AwaitingUser { suggestion } => fields.push((
                    "suggestion",
                    Json::Arr(
                        suggestion
                            .iter()
                            .map(|&a| Json::str(schema.attr_name(a)))
                            .collect(),
                    ),
                )),
                SessionStatus::Stuck { unvalidated } => fields.push((
                    "unvalidated",
                    Json::Arr(
                        unvalidated
                            .iter()
                            .map(|&a| Json::str(schema.attr_name(a)))
                            .collect(),
                    ),
                )),
                SessionStatus::Complete => {}
            }
            if let Some(report) = report {
                fields.push((
                    "fixes",
                    Json::Arr(
                        report
                            .fixes
                            .iter()
                            .map(|fix| {
                                Json::obj([
                                    ("attr", Json::str(schema.attr_name(fix.attr))),
                                    ("old", Json::from_value(&fix.old)),
                                    ("new", Json::from_value(&fix.new)),
                                    ("rule", Json::Num(fix.rule as f64)),
                                    ("master_row", Json::Num(fix.master_row as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ));
                fields.push((
                    "newly_validated",
                    Json::Arr(
                        report
                            .newly_validated
                            .iter()
                            .map(|&a| Json::str(schema.attr_name(a)))
                            .collect(),
                    ),
                ));
            }
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        })
    }

    fn session_get(&self, id: u64) -> Result<Json, String> {
        self.session_view(id, None)
    }

    fn resolve_attr(&self, name: &str) -> Result<usize, String> {
        let schema = self.input_schema();
        if let Some(id) = schema.attr_id(name) {
            return Ok(id);
        }
        // Tolerate numeric attribute ids sent as strings.
        if let Ok(id) = name.parse::<usize>() {
            if id < schema.arity() {
                return Ok(id);
            }
        }
        Err(format!(
            "unknown attribute `{name}` (schema `{}`)",
            schema.name()
        ))
    }

    fn session_validate(&self, id: u64, validations: &[(String, Value)]) -> Result<Json, String> {
        let resolved: Vec<(usize, Value)> = validations
            .iter()
            .map(|(name, value)| Ok((self.resolve_attr(name)?, value.clone())))
            .collect::<Result<_, String>>()?;
        let report = self
            .with_monitor_session(id, |monitor, session| {
                monitor.apply_validation(session, &resolved)
            })?
            .map_err(|e| e.to_string())?;
        self.inner.metrics.cells_fixed(report.fixes.len() as u64);
        self.session_view(id, Some(report))
    }

    fn session_commit(&self, id: u64) -> Result<Json, String> {
        let session = self.inner.sessions.remove(id).map_err(|e| e.to_string())?;
        self.inner.metrics.session_committed();
        let schema = self.input_schema();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("session", Json::Num(id as f64)),
            ("complete", Json::Bool(session.is_complete())),
            (
                "tuple",
                Json::Arr(
                    session
                        .tuple
                        .values()
                        .iter()
                        .map(Json::from_value)
                        .collect(),
                ),
            ),
            ("rounds", Json::Num(session.rounds as f64)),
            (
                "user_validated",
                Json::Num(session.user_validated.len() as f64),
            ),
            (
                "auto_validated",
                Json::Num(session.auto_validated.len() as f64),
            ),
            (
                "validated",
                Json::Arr(
                    session
                        .validated
                        .iter()
                        .map(|a| Json::str(schema.attr_name(a)))
                        .collect(),
                ),
            ),
        ]))
    }

    fn session_abort(&self, id: u64) -> Result<Json, String> {
        self.inner.sessions.remove(id).map_err(|e| e.to_string())?;
        self.inner.metrics.session_aborted();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("session", Json::Num(id as f64)),
        ]))
    }

    /// Batch clean: each tuple gets its `trust` columns validated as-is,
    /// then the correcting process runs to its fixpoint. Tuples fan out
    /// across the worker pool; outcomes return in input order.
    fn clean_batch(&self, tuples: Vec<Vec<Value>>, trust: &[String]) -> Result<Json, String> {
        let schema = self.input_schema().clone();
        let trusted: Vec<usize> = trust
            .iter()
            .map(|name| self.resolve_attr(name))
            .collect::<Result<_, String>>()?;
        let n = tuples.len();
        let inner = Arc::clone(&self.inner);
        let trusted = Arc::new(trusted);
        let schema_for_jobs = schema.clone();
        let outcomes: Vec<Result<Json, String>> =
            self.inner.pool.map_ordered(tuples, move |idx, values| {
                clean_one(&inner, &schema_for_jobs, &trusted, idx, values)
            });
        let mut rendered = Vec::with_capacity(n);
        let mut complete = 0u64;
        let mut cells_fixed = 0u64;
        for outcome in outcomes {
            let json = outcome?;
            if json.get("complete").and_then(Json::as_bool) == Some(true) {
                complete += 1;
            }
            cells_fixed += json.get("cells_fixed").and_then(Json::as_u64).unwrap_or(0);
            rendered.push(json);
        }
        self.inner.metrics.tuples_cleaned(n as u64);
        self.inner.metrics.cells_fixed(cells_fixed);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("count", Json::Num(n as f64)),
            ("complete", Json::Num(complete as f64)),
            ("cells_fixed", Json::Num(cells_fixed as f64)),
            ("outcomes", Json::Arr(rendered)),
        ]))
    }

    fn regions(&self, top_k: Option<usize>) -> Json {
        let top_k = top_k.unwrap_or(self.inner.config.region_top_k);
        let inner = &self.inner;
        let (result, cached) =
            inner
                .cache
                .regions(inner.fingerprint, top_k, &inner.metrics, || {
                    // Materializing the truth universe copies every
                    // master row — only pay that on a cache miss.
                    let universe = universe_from_master(inner.rules.input_schema(), &inner.master);
                    find_regions(
                        &inner.rules,
                        &inner.master,
                        &universe,
                        &RegionFinderOptions {
                            top_k,
                            ..Default::default()
                        },
                    )
                });
        let schema = self.input_schema();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("cached", Json::Bool(cached)),
            ("top_k", Json::Num(top_k as f64)),
            (
                "regions",
                Json::Arr(
                    result
                        .regions
                        .iter()
                        .map(|region| {
                            Json::obj([
                                (
                                    "attrs",
                                    Json::Arr(
                                        region
                                            .attrs()
                                            .iter()
                                            .map(|&a| Json::str(schema.attr_name(a)))
                                            .collect(),
                                    ),
                                ),
                                ("size", Json::Num(region.size() as f64)),
                                ("contexts", Json::Num(region.tableau().len() as f64)),
                                ("rendered", Json::str(region.render(schema))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("candidates", Json::Num(result.stats.candidates as f64)),
        ])
    }

    fn check(&self, mode: Option<&str>) -> Result<Json, String> {
        let (mode, options) = match mode.unwrap_or("strict") {
            "strict" => ("strict", ConsistencyOptions::default()),
            "entity-coherent" => ("entity-coherent", ConsistencyOptions::entity_coherent()),
            other => return Err(format!("unknown mode `{other}` (strict | entity-coherent)")),
        };
        let inner = &self.inner;
        let (report, cached) =
            inner
                .cache
                .consistency(inner.fingerprint, mode, &inner.metrics, || {
                    check_consistency(&inner.rules, &inner.master, &options)
                });
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("cached", Json::Bool(cached)),
            ("mode", Json::str(mode)),
            ("consistent", Json::Bool(report.is_consistent())),
            ("conflicts", Json::Num(report.conflicts.len() as f64)),
            ("ambiguities", Json::Num(report.ambiguities.len() as f64)),
            ("budget_exhausted", Json::Bool(report.budget_exhausted)),
        ]))
    }

    fn metrics_response(&self) -> Json {
        let snapshot = self.inner.metrics.snapshot();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("uptime_secs", Json::Num(snapshot.uptime_secs as f64)),
            ("requests", Json::Num(snapshot.requests as f64)),
            ("errors", Json::Num(snapshot.errors as f64)),
            (
                "sessions_created",
                Json::Num(snapshot.sessions_created as f64),
            ),
            (
                "sessions_committed",
                Json::Num(snapshot.sessions_committed as f64),
            ),
            (
                "sessions_aborted",
                Json::Num(snapshot.sessions_aborted as f64),
            ),
            (
                "sessions_evicted",
                Json::Num(snapshot.sessions_evicted as f64),
            ),
            ("live_sessions", Json::Num(self.live_sessions() as f64)),
            ("tuples_cleaned", Json::Num(snapshot.tuples_cleaned as f64)),
            ("cells_fixed", Json::Num(snapshot.cells_fixed as f64)),
            ("cache_hits", Json::Num(snapshot.cache_hits as f64)),
            ("cache_misses", Json::Num(snapshot.cache_misses as f64)),
            ("workers", Json::Num(self.workers() as f64)),
        ])
    }
}

/// One batch-clean job, run on a pool worker.
fn clean_one(
    inner: &Arc<ServiceInner>,
    schema: &SchemaRef,
    trusted: &[usize],
    idx: usize,
    values: Vec<Value>,
) -> Result<Json, String> {
    if values.len() != schema.arity() {
        return Err(format!(
            "tuple {idx} has {} values but schema `{}` has arity {}",
            values.len(),
            schema.name(),
            schema.arity()
        ));
    }
    let tuple = Tuple::new(schema.clone(), values).map_err(|e| e.to_string())?;
    let monitor = DataMonitor::from_plan(&inner.rules, &inner.master, Arc::clone(&inner.plan))
        .with_shared_regions(std::sync::Arc::clone(&inner.regions));
    let mut session = monitor.start(idx, tuple);
    let validations: Vec<(usize, Value)> = trusted
        .iter()
        .filter_map(|&a| {
            let v = session.tuple.get(a);
            (!v.is_null()).then(|| (a, v.clone()))
        })
        .collect();
    let report = monitor
        .apply_validation(&mut session, &validations)
        .map_err(|e| e.to_string())?;
    Ok(Json::obj([
        ("index", Json::Num(idx as f64)),
        ("complete", Json::Bool(session.is_complete())),
        ("cells_fixed", Json::Num(report.fixes.len() as f64)),
        ("validated", Json::Num(session.validated.len() as f64)),
        (
            "tuple",
            Json::Arr(
                session
                    .tuple
                    .values()
                    .iter()
                    .map(Json::from_value)
                    .collect(),
            ),
        ),
    ]))
}

/// Master rows reinterpreted over the input schema (by attribute name) —
/// the truth universe for region certification, mirroring the CLI.
pub(crate) fn universe_from_master(input: &SchemaRef, master: &MasterData) -> Vec<Tuple> {
    let mapping: Vec<Option<usize>> = input
        .attributes()
        .iter()
        .map(|a| master.schema().attr_id(a.name()))
        .collect();
    master
        .relation()
        .iter()
        .map(|(_, s)| {
            let values: Vec<Value> = mapping
                .iter()
                .map(|m| m.map(|id| s.get(id).clone()).unwrap_or(Value::Null))
                .collect();
            Tuple::new(input.clone(), values).expect("string schema accepts all values")
        })
        .collect()
}
