//! The cleaning service: shared state + request dispatch.
//!
//! A [`CleaningService`] is the long-lived, shared, concurrent front end
//! over the core [`DataMonitor`]: one immutable `Arc<MasterData>` plus a
//! hot-swappable [`EngineState`] (rule set, compiled plan, pre-computed
//! regions) serves every session (the demo's "master database shared by
//! many clerks"), a [`SessionManager`] tracks in-flight interactive
//! sessions with idle eviction, a [`WorkerPool`] fans batch `clean`
//! requests across workers, and an [`AnalysisCache`] memoizes region
//! searches and consistency verdicts per rule set.
//!
//! The service is transport-agnostic: [`CleaningService::handle`] maps a
//! typed [`Request`] to a JSON response, and
//! [`CleaningService::handle_line`] wraps that in wire parsing — the TCP
//! server and the in-process client both speak through it, so tests
//! exercise the exact production code path without sockets.
//!
//! ## Durability (optional)
//!
//! Built with [`CleaningService::with_storage`], the service write-ahead
//! journals every session mutation (create / validate / commit / abort /
//! evict / rules-reload) through [`cerfix_storage::Storage`], spills
//! audit provenance to disk behind a bounded in-memory window, and
//! periodically snapshots live session state (truncating the journal).
//! On startup it replays snapshot + journal through the same
//! deterministic correcting process that produced them, so every
//! uncommitted session resumes with exactly the validated `AttrSet`s
//! and pending fixes it had. `session.commit` waits for its group
//! fsync — an acknowledged commit survives kill-9. The default
//! [`CleaningService::new`] remains purely in-memory.
//!
//! A `storage gate` (an `RwLock<()>`) makes snapshots atomic against
//! concurrent mutation: every mutating op holds it in read mode across
//! *mutate + journal-append*, the snapshotter holds it in write mode
//! across *export-sessions + write-snapshot + truncate-journal*, and a
//! rule reload holds it in write mode across *swap + journal-append* so
//! the journal's event order is the order events were applied in.

use crate::admission::{priority, Priority, Shedder};
use crate::cache::{ruleset_fingerprint, AnalysisCache};
use crate::client::{Client, RetryPolicy};
use crate::diag::{DiagSink, Level, Subsystem};
use crate::metrics::{
    op_index, prom_header, prom_histogram_from_buckets, prom_metric, prom_sample, ServiceMetrics,
    LATENCY_OPS,
};
use crate::protocol::{scan_line, HotOp, Request, RequestScratch, PROTOCOL_VERSION};
use crate::replication::{hex_encode, lock_followers, ReplicationState, Role};
use crate::session::{SessionError, SessionManager};
use crate::timeseries::{Sample, TimeSeries};
use crate::trace::{Span, TraceSink};
use crate::wire::scan::{ObjectScanner, RawValue};
use crate::wire::{render_response_into, Json, JsonWriter};
use cerfix::{
    check_consistency, recheck_regions, search_regions, AuditLog, AuditRecord, AuditSink,
    CellEvent, CompiledRules, ConsistencyOptions, DataMonitor, FixpointReport, MasterData,
    MonitorSession, Region, RegionFinderOptions, RegionSearch, SessionStatus, WorkerPool,
};
use cerfix_relation::{AttrSet, SchemaRef, Tuple, Value};
use cerfix_rules::{parse_rules, render_er_dsl, RuleDecl, RuleSet};
use cerfix_storage::{
    JournalEvent, RecoveredState, SessionSnapshot, SnapshotData, Storage, StorageConfig, SyncError,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Most audit records one `audit.read` returns when the client asks for
/// more (or doesn't say).
const AUDIT_READ_MAX: u64 = 4096;
/// Default `audit.read` page size.
const AUDIT_READ_DEFAULT: u64 = 256;
/// Default `cluster.status` peer-dial timeout (`config.set
/// peer_timeout_ms` overrides at runtime).
const DEFAULT_PEER_TIMEOUT_MS: u64 = 750;
/// Default bound a graceful drain waits for in-flight sessions before
/// shutting down anyway (`server.drain {"wait_ms": …}` overrides).
const DEFAULT_DRAIN_WAIT_MS: u64 = 10_000;

/// Tunables for a [`CleaningService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the batch pool.
    pub workers: usize,
    /// Idle time after which a session may be evicted.
    pub session_ttl: Duration,
    /// Maximum live sessions.
    pub max_sessions: usize,
    /// Default k for region requests and monitor suggestions.
    pub region_top_k: usize,
    /// Pre-compute regions at startup (first sessions then start warm,
    /// matching the demo's "pre-computed to reduce the cost").
    pub precompute_regions: bool,
    /// Capacity of the in-memory request-trace ring (spans kept for
    /// `trace.read`), rounded up to a power of two. `0` disables
    /// tracing entirely.
    pub trace_buffer: usize,
    /// Requests slower than this are also kept in the slow-request
    /// ring, which plain traffic cannot wash out.
    pub slow_ms: u64,
    /// Tail this primary's journal instead of accepting mutations
    /// (requires storage). `None` — the default — makes this node a
    /// primary.
    pub replicate_from: Option<String>,
    /// Replication cluster size N (nodes counting this one). When
    /// N > 1, a commit acknowledgement additionally waits until
    /// ⌈(N+1)/2⌉ cluster members (counting this primary) have fsynced
    /// it; `1` keeps today's local-fsync durability.
    pub cluster_size: usize,
    /// How long a quorum-ack commit waits for follower acks before
    /// failing with `quorum_timeout` (the commit stays applied and
    /// locally durable).
    pub ack_timeout: Duration,
    /// Address this node advertises in `replica.sync` requests — the
    /// key the primary tracks its replication lag under (and the
    /// address `cluster.status` fan-out dials it back on).
    pub advertise: Option<String>,
    /// Capacity of the in-memory diagnostic-log ring (events kept for
    /// `log.read`), rounded up to a power of two. `0` disables the
    /// ring; the stderr mirror stays on either way.
    pub diag_buffer: usize,
    /// Optional durable diagnostic sink: every admitted event is also
    /// appended, one line per event, to this file.
    pub diag_file: Option<PathBuf>,
    /// How far behind its primary a follower may fall before its
    /// health probe reports not-ready (measured as time since its
    /// durable cursor last covered the primary's).
    pub max_lag: Duration,
    /// Free-space watermark under the data directory: when available
    /// bytes drop below this the service degrades to read-only
    /// (mutations answered `degraded: disk_full`) before the disk is
    /// actually full, and recovers automatically when space returns.
    /// `0` disables the watermark; an ENOSPC write still degrades.
    pub min_free_bytes: u64,
    /// Worker-queue depth at which the admission shedder starts
    /// refusing heavy reads with a retryable `overloaded` error (twice
    /// this depth also sheds session mutations). `0` — the default —
    /// derives the watermark from the worker count.
    pub shed_watermark: usize,
    /// Global TCP connection quota across both front-ends; connections
    /// over it are refused with an `overloaded` error line. `0`
    /// disables the quota.
    pub max_connections: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            session_ttl: Duration::from_secs(15 * 60),
            max_sessions: 10_000,
            region_top_k: 8,
            precompute_regions: true,
            trace_buffer: 1024,
            slow_ms: 500,
            replicate_from: None,
            cluster_size: 1,
            ack_timeout: Duration::from_secs(5),
            advertise: None,
            diag_buffer: 1024,
            diag_file: None,
            max_lag: Duration::from_secs(10),
            min_free_bytes: 0,
            shed_watermark: 0,
            max_connections: 0,
        }
    }
}

/// The swappable execution state: what `rules.reload` and
/// `master.append` replace atomically while sessions stay live. The
/// master rides inside so every request observes a (rules, plan, master,
/// regions) quadruple that is mutually consistent — a monitor never
/// serves a plan compiled against a different master generation.
struct EngineState {
    rules: Arc<RuleSet>,
    /// The master repository this state was compiled against.
    master: Arc<MasterData>,
    /// Compiled execution plan shared by every per-request monitor
    /// (masks + index snapshots resolved once per ruleset).
    plan: Arc<CompiledRules>,
    /// Pre-computed certain regions handed to every monitor (shared:
    /// each monitor construction is a refcount bump, not a deep clone).
    regions: Arc<[Region]>,
    /// The full region search behind `regions` (None when region
    /// pre-computation is disabled) — the state master-delta
    /// re-certification patches.
    search: Option<Arc<RegionSearch>>,
    fingerprint: u64,
}

/// A registered shutdown wakeup (see `ServiceInner::shutdown_hooks`).
type ShutdownHook = Box<dyn Fn() + Send + Sync>;

/// Durable storage plus the gate that serializes snapshots against
/// mutating ops (see module docs).
struct StorageBinding {
    storage: Storage,
    gate: RwLock<()>,
}

struct ServiceInner {
    engine: RwLock<Arc<EngineState>>,
    /// Serializes engine swaps (`rules.reload`, `master.append`): each
    /// swap is read-modify-write over the current state, so two
    /// concurrent swaps must not interleave (a lost master append would
    /// silently drop rows).
    swap_lock: Mutex<()>,
    /// Master rows appended since boot, in order — snapshots carry them
    /// so journal truncation cannot lose the append history.
    master_appended: Mutex<Vec<Vec<Value>>>,
    /// The input schema never changes across reloads (rule sets are
    /// re-parsed against it), so it is cached here unguarded.
    input_schema: SchemaRef,
    pool: WorkerPool,
    sessions: SessionManager,
    cache: AnalysisCache,
    metrics: ServiceMetrics,
    /// Shared provenance stream: every per-request monitor records into
    /// it. Windowed over the disk spill when storage is attached,
    /// unbounded in memory otherwise.
    audit: Arc<AuditLog>,
    /// Per-request trace spans (stage timings + engine-stat deltas) in
    /// a lock-free ring; read by `trace.read`.
    trace: TraceSink,
    /// Structured diagnostic log (leveled, rate-limited events; read
    /// by `log.read`, mirrored to stderr and an optional file).
    diag: DiagSink,
    /// Periodic metric snapshots for server-side rate math (sampled by
    /// the housekeeper, read by `metrics.history`).
    timeseries: TimeSeries,
    /// Last health verdict: 0 = never probed, 1 = ready, 2 = not
    /// ready. Transitions between the two probed states are logged.
    last_ready: AtomicU64,
    /// Degraded read-only latch: set on ENOSPC (or the free-space
    /// watermark), cleared by the housekeeper once the journal writes
    /// cleanly again and space is back above the watermark. While set,
    /// mutations are answered `degraded: disk_full` and reads keep
    /// serving.
    degraded: AtomicBool,
    /// Whether the current journal poisoning has been announced to the
    /// diag log (one `error` event per poisoning, not one per probe).
    poison_logged: AtomicBool,
    /// Audit-spill write errors already surfaced to the diag log — the
    /// housekeeper logs only the delta against the spill's own total.
    spill_errors_seen: AtomicU64,
    storage: Option<StorageBinding>,
    /// Replication state: role, the primary's follower/ack registry and
    /// fencing watermark, a follower's tail-thread handle.
    replication: ReplicationState,
    /// The boot-time master and rules, retained so a snapshot resync
    /// can rebuild from scratch (`SnapshotData::master_appended` is
    /// relative to the boot master — replaying it onto an
    /// already-appended master would double-apply rows).
    boot_master: Arc<MasterData>,
    boot_rules: Arc<RuleSet>,
    config: ServiceConfig,
    /// The queue-depth-driven load shedder (admission control).
    shedder: Shedder,
    /// Graceful-drain latch: set by `server.drain`. While set, front
    /// ends refuse fresh connections and `session.create` answers
    /// `draining`; in-flight sessions keep being served until the drain
    /// monitor (or its bound) triggers shutdown.
    draining: AtomicBool,
    /// Guards the single drain-monitor thread (repeated `server.drain`
    /// calls are idempotent).
    drain_monitor_started: AtomicBool,
    /// `cluster.status` peer-dial timeout, milliseconds (runtime
    /// tunable via `config.set peer_timeout_ms`).
    peer_timeout_ms: AtomicU64,
    shutdown: AtomicBool,
    /// Out-of-band wakeups run when a `shutdown` request is accepted —
    /// how the TCP front ends (epoll wakeup fd, threaded self-connect +
    /// connection teardown) learn about shutdown in milliseconds instead
    /// of on their next poll. Hooks must be idempotent.
    shutdown_hooks: Mutex<Vec<(u64, ShutdownHook)>>,
    next_hook_id: AtomicU64,
}

/// The concurrent multi-session cleaning service. Cheap to clone (an
/// `Arc` handle); all clones share sessions, cache, pool and metrics.
#[derive(Clone)]
pub struct CleaningService {
    inner: Arc<ServiceInner>,
}

impl std::fmt::Debug for CleaningService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleaningService")
            .field("rules", &self.engine().rules.len())
            .field("master_rows", &self.engine().master.len())
            .field("workers", &self.inner.pool.threads())
            .field("live_sessions", &self.inner.sessions.len())
            .field("journaled", &self.inner.storage.is_some())
            .finish()
    }
}

impl CleaningService {
    /// Build an in-memory service over shared master data and rules
    /// (sessions and audit history do not survive the process).
    pub fn new(
        master: Arc<MasterData>,
        rules: Arc<RuleSet>,
        config: ServiceConfig,
    ) -> CleaningService {
        CleaningService::build(master, rules, config, None)
    }

    /// Build a journaled service over a data directory and recover
    /// whatever a previous process left there: the snapshot is loaded,
    /// the journal suffix is replayed through the correcting process,
    /// and every uncommitted session resumes exactly where it was.
    /// `rules` are the boot rules; if the recovered state carries a
    /// hot-reloaded rule set, it wins (the reload is replayed).
    pub fn with_storage(
        master: Arc<MasterData>,
        rules: Arc<RuleSet>,
        config: ServiceConfig,
        storage_config: StorageConfig,
    ) -> std::io::Result<CleaningService> {
        let (storage, recovered) = Storage::open(storage_config)?;
        // Keep the recovered snapshot's bytes: a primary serves them to
        // followers whose cursor predates the current epoch.
        let snapshot_bytes = recovered
            .snapshot
            .as_ref()
            .map(|snapshot| Arc::new(snapshot.encode()));
        let service = CleaningService::build(master, rules, config, Some(storage));
        service
            .recover(recovered)
            .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidData, message))?;
        *service
            .inner
            .replication
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = snapshot_bytes;
        if let Some(primary) = service.inner.config.replicate_from.clone() {
            *service
                .inner
                .replication
                .role
                .write()
                .unwrap_or_else(|e| e.into_inner()) = Role::Follower {
                primary: primary.clone(),
            };
            let tail_service = service.clone();
            let handle = std::thread::Builder::new()
                .name("cerfix-replica-tail".into())
                .spawn(move || crate::replication::run_tail(tail_service, primary))?;
            *service
                .inner
                .replication
                .tail
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(handle);
        }
        Ok(service)
    }

    fn build(
        master: Arc<MasterData>,
        rules: Arc<RuleSet>,
        config: ServiceConfig,
        storage: Option<Storage>,
    ) -> CleaningService {
        let cache = AnalysisCache::new();
        let metrics = ServiceMetrics::new();
        let input_schema = rules.input_schema().clone();
        let boot_master = Arc::clone(&master);
        let boot_rules = Arc::clone(&rules);
        let engine = compile_engine(master, rules, &config, &cache, &metrics);
        let audit = match &storage {
            Some(storage) => Arc::new(AuditLog::with_sink(
                storage.config().audit_window,
                Arc::clone(storage.spill()) as Arc<dyn AuditSink>,
            )),
            None => Arc::new(AuditLog::new()),
        };
        let trace = TraceSink::new(config.trace_buffer, Duration::from_millis(config.slow_ms));
        let diag = DiagSink::new(config.diag_buffer, config.diag_file.as_ref());
        CleaningService {
            inner: Arc::new(ServiceInner {
                pool: WorkerPool::new(config.workers),
                sessions: SessionManager::new(config.session_ttl, config.max_sessions),
                engine: RwLock::new(engine),
                input_schema,
                cache,
                metrics,
                audit,
                trace,
                diag,
                timeseries: TimeSeries::new(),
                last_ready: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
                poison_logged: AtomicBool::new(false),
                spill_errors_seen: AtomicU64::new(0),
                storage: storage.map(|storage| StorageBinding {
                    storage,
                    gate: RwLock::new(()),
                }),
                replication: ReplicationState::new(config.cluster_size, config.ack_timeout),
                boot_master,
                boot_rules,
                swap_lock: Mutex::new(()),
                master_appended: Mutex::new(Vec::new()),
                shedder: Shedder::new(if config.shed_watermark > 0 {
                    config.shed_watermark
                } else {
                    // Auto: trip well before the health probe's
                    // workers*256 saturation bound so shedding starts
                    // while the probe still reports ready.
                    config.workers.max(1) * 64
                }),
                draining: AtomicBool::new(false),
                drain_monitor_started: AtomicBool::new(false),
                peer_timeout_ms: AtomicU64::new(DEFAULT_PEER_TIMEOUT_MS),
                config,
                shutdown: AtomicBool::new(false),
                shutdown_hooks: Mutex::new(Vec::new()),
                next_hook_id: AtomicU64::new(1),
            }),
        }
    }

    /// The current engine state (a cheap refcounted handle; holders keep
    /// serving the rule set they started with across a reload).
    fn engine(&self) -> Arc<EngineState> {
        Arc::clone(&self.inner.engine.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Run `f` with the storage gate held for reading (mutating ops);
    /// a no-op wrapper for in-memory services.
    fn with_gate<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.inner.storage {
            Some(binding) => {
                let _gate = binding.gate.read().unwrap_or_else(|e| e.into_inner());
                f()
            }
            None => f(),
        }
    }

    fn journal(&self, event: &JournalEvent) -> Option<u64> {
        self.inner
            .storage
            .as_ref()
            .map(|binding| binding.storage.append(event))
    }

    /// The service's input schema (what session tuples must match).
    pub fn input_schema(&self) -> &SchemaRef {
        &self.inner.input_schema
    }

    /// Live session count.
    pub fn live_sessions(&self) -> usize {
        self.inner.sessions.len()
    }

    /// Worker threads in the batch pool.
    pub fn workers(&self) -> usize {
        self.inner.pool.threads()
    }

    /// True once a graceful drain has begun: front ends must refuse
    /// fresh connections and new sessions are answered `draining`.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Admit or refuse one fresh TCP connection (drain + global quota).
    /// `Err` carries the one-line JSON error the front end should write
    /// before closing.
    pub fn admit_connection(&self) -> Result<(), String> {
        if self.is_draining() {
            self.inner.metrics.connection_refused();
            return Err("draining: server is draining; connect to another node".to_string());
        }
        let quota = self.inner.config.max_connections;
        if quota > 0 && self.inner.metrics.connections_open() >= quota as u64 {
            self.inner.metrics.connection_refused();
            return Err(format!(
                "overloaded: connection quota of {quota} reached; retry with backoff"
            ));
        }
        Ok(())
    }

    /// True iff this service journals to a data directory.
    pub fn is_journaled(&self) -> bool {
        self.inner.storage.is_some()
    }

    /// This node's replication role.
    pub fn role(&self) -> Role {
        self.inner
            .replication
            .role
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Shared replication state (follower registry, fencing watermark).
    pub(crate) fn replication(&self) -> &ReplicationState {
        &self.inner.replication
    }

    /// This node's durable journal cursor `(epoch, offset)` — what the
    /// tail loop pulls from and acks with. `None` without storage.
    pub(crate) fn durable_cursor(&self) -> Option<(u64, u64)> {
        self.inner
            .storage
            .as_ref()
            .map(|binding| binding.storage.durable_position())
    }

    /// The follower id this node reports in `replica.sync` requests.
    pub(crate) fn advertised(&self) -> String {
        self.inner
            .config
            .advertise
            .clone()
            .unwrap_or_else(|| "follower".into())
    }

    /// Refuse mutations this node must not accept: a follower is
    /// read-only (redirect to its primary), and a deposed primary — one
    /// that has seen a replica cursor from a higher epoch — is fenced.
    fn check_primary(&self) -> Result<(), String> {
        let role = self
            .inner
            .replication
            .role
            .read()
            .unwrap_or_else(|e| e.into_inner());
        if let Role::Follower { primary } = &*role {
            return Err(format!(
                "not_primary: this node is a read-only follower; primary is {primary}"
            ));
        }
        drop(role);
        let seen = self
            .inner
            .replication
            .max_epoch_seen
            .load(Ordering::Acquire);
        let epoch = self
            .inner
            .storage
            .as_ref()
            .map_or(0, |binding| binding.storage.epoch());
        if seen > epoch {
            return Err(format!(
                "stale_epoch: fenced at epoch {epoch} by a replica at epoch {seen}; \
                 this node is no longer primary"
            ));
        }
        Ok(())
    }

    /// Refuse mutations the storage layer cannot honor: on top of
    /// [`check_primary`](Self::check_primary), a degraded (disk-full)
    /// node answers `degraded: disk_full`, and a node whose journal is
    /// poisoned by an fsync failure answers `storage_error` — accepting
    /// a mutation that can never reach disk would be an ack the node
    /// cannot keep. Reads stay unaffected.
    fn check_writable(&self) -> Result<(), String> {
        self.check_primary()?;
        if self.inner.degraded.load(Ordering::Acquire) {
            return Err(
                "degraded: disk_full — service is read-only until disk space returns".to_string(),
            );
        }
        if let Some(binding) = &self.inner.storage {
            if let Some(err) = binding.storage.journal().poisoned() {
                return Err(format!(
                    "storage_error: journal poisoned by fsync failure ({err}); \
                     mutations refused until operator intervention or re-sync"
                ));
            }
        }
        Ok(())
    }

    /// True while the service is in degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Acquire)
    }

    /// True while the journal is poisoned by an fsync failure (distinct
    /// from [`is_degraded`](Self::is_degraded): poison is permanent
    /// until a snapshot rebuilds the journal file).
    pub fn is_poisoned_journal(&self) -> bool {
        self.inner
            .storage
            .as_ref()
            .is_some_and(|binding| binding.storage.journal().poisoned().is_some())
    }

    /// Wait for `seq` to be durable and translate the outcome into the
    /// protocol's error contract. The mutation is already applied in
    /// memory and queued in the journal, so every failure here is an
    /// honest "applied but not yet durable" answer (the quorum-timeout
    /// precedent), never a silent ack:
    ///
    /// * ENOSPC flips the degraded latch (read-only until space
    ///   returns; the queued frame lands on a later flush).
    /// * A poisoned journal (fsync failure) is announced once to the
    ///   diag log and reported as `storage_error` — fsyncgate: the page
    ///   cache may have dropped the dirty page, so retrying locally
    ///   could silently lose the write.
    fn sync_commit(&self, binding: &StorageBinding, seq: u64) -> Result<(), String> {
        match binding.storage.sync(seq) {
            Ok(()) => Ok(()),
            Err(SyncError::WriteFailed { error, enospc }) => {
                if enospc {
                    self.enter_degraded(&format!("journal write: {error}"));
                }
                Err(format!(
                    "storage_error: applied but not durable (journal write failed: {error}); \
                     retry after the disk recovers"
                ))
            }
            Err(SyncError::Poisoned { error }) => {
                self.note_poisoned(&error);
                Err(format!(
                    "storage_error: applied but not durable (journal poisoned: {error})"
                ))
            }
            Err(SyncError::Stopped) => {
                Err("storage_error: applied but not durable (journal stopped)".to_string())
            }
        }
    }

    /// Flip the degraded latch on (idempotent); log the transition.
    fn enter_degraded(&self, cause: &str) {
        if !self.inner.degraded.swap(true, Ordering::AcqRel) {
            self.inner.diag.warn(
                Subsystem::Journal,
                format_args!("degraded to read-only: disk full ({cause})"),
            );
        }
    }

    /// Flip the degraded latch off (idempotent); log the recovery.
    fn leave_degraded(&self) {
        if self.inner.degraded.swap(false, Ordering::AcqRel) {
            self.inner.diag.info(
                Subsystem::Journal,
                format_args!("recovered from read-only degradation: disk space is back"),
            );
        }
    }

    /// Announce a journal poisoning to the diag log exactly once per
    /// poisoning (the latch re-arms if a follower re-sync clears it).
    fn note_poisoned(&self, error: &str) {
        if !self.inner.poison_logged.swap(true, Ordering::AcqRel) {
            self.inner.diag.error(
                Subsystem::Journal,
                format_args!("journal poisoned by fsync failure: {error}"),
            );
        }
    }

    /// Periodic storage-fault sweep, run by the housekeeper alongside
    /// the health probe: announce journal poisoning, surface new
    /// audit-spill write errors, and drive the degraded latch from the
    /// free-space watermark (enter when space is low, leave when space
    /// is back *and* the journal is writing cleanly again). Public so
    /// embedders with their own runtime — and the disk-fault harness —
    /// can run the sweep on their own clock.
    pub fn probe_storage(&self) {
        let Some(binding) = &self.inner.storage else {
            return;
        };
        match binding.storage.journal().poisoned() {
            Some(err) => self.note_poisoned(&err),
            None => self.inner.poison_logged.store(false, Ordering::Release),
        }
        let spill_errors = binding.storage.spill().write_errors();
        let seen = self
            .inner
            .spill_errors_seen
            .swap(spill_errors, Ordering::AcqRel);
        if spill_errors > seen {
            self.inner.metrics.audit_spill_errors(spill_errors);
            self.inner.diag.error(
                Subsystem::Journal,
                format_args!(
                    "audit spill write failed ({} new, {spill_errors} total): {}",
                    spill_errors - seen,
                    binding
                        .storage
                        .spill()
                        .last_error()
                        .unwrap_or_else(|| "unknown".into())
                ),
            );
        }
        let watermark = self.inner.config.min_free_bytes;
        let free = binding
            .storage
            .free_bytes()
            .or_else(|| crate::fsprobe::free_bytes(&binding.storage.config().dir));
        let journal_clean = binding.storage.journal().last_error().is_none();
        match free {
            Some(free) if watermark > 0 && free < watermark => {
                self.enter_degraded(&format!(
                    "{free} free bytes under the {watermark} watermark"
                ));
            }
            Some(free) if journal_clean && free >= watermark => self.leave_degraded(),
            // Probe unavailable: leave only on clean journal writes —
            // the pending frames landing is itself the space signal.
            None if journal_clean => self.leave_degraded(),
            _ => {}
        }
    }

    /// The shared audit log (cell-level provenance of every op).
    pub fn audit(&self) -> &Arc<AuditLog> {
        &self.inner.audit
    }

    /// Counters.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.refresh_storage_gauges();
        self.inner.metrics.snapshot()
    }

    fn refresh_storage_gauges(&self) {
        if let Some(binding) = &self.inner.storage {
            self.inner.metrics.journal_totals(
                binding.storage.journal().bytes_appended(),
                binding.storage.journal().events_appended(),
            );
        }
        self.inner
            .metrics
            .audit_spilled(self.inner.audit.spilled() as u64);
    }

    /// The structured diagnostic log sink (replication and transport
    /// threads emit through it).
    pub(crate) fn diag(&self) -> &DiagSink {
        &self.inner.diag
    }

    /// Record one counter snapshot into the in-process time-series
    /// ring. The TCP front ends call this from their housekeeping loop
    /// (about once a second); embedders with their own runtime can
    /// too. `metrics.history` reads the window back, and
    /// `cluster.status` derives its req/s figure from it.
    pub fn sample_timeseries(&self) {
        self.refresh_storage_gauges();
        self.inner.timeseries.record(self.inner.metrics.snapshot());
    }

    /// Evaluate health now and log ready/not-ready transitions to the
    /// diagnostic log. The housekeeper calls this every sweep so
    /// transitions get recorded even while nobody is probing.
    pub(crate) fn probe_health(&self) -> HealthReport {
        let report = self.health_eval();
        let verdict = if report.ready { 1 } else { 2 };
        let prev = self.inner.last_ready.swap(verdict, Ordering::AcqRel);
        if prev != verdict {
            if report.ready {
                self.inner
                    .diag
                    .info(Subsystem::Health, format_args!("ready"));
            } else {
                self.inner.diag.warn(
                    Subsystem::Health,
                    format_args!("not ready: {}", report.causes.join("; ")),
                );
            }
        }
        report
    }

    /// Compute liveness/readiness from real signals: journal flusher
    /// alive and error-free, fsync p99 under the slow-request budget,
    /// worker queue not saturated, and the role-specific conditions —
    /// a primary must not be fenced by a higher-epoch replica, a
    /// follower must not lag its primary past `max_lag`.
    fn health_eval(&self) -> HealthReport {
        let mut live = true;
        let mut causes = Vec::new();
        if self.shutdown_requested() {
            live = false;
            causes.push("shutting down".to_string());
        }
        if let Some(binding) = &self.inner.storage {
            let journal = binding.storage.journal();
            if let Some(err) = journal.poisoned() {
                // fsyncgate: a failed fsync may have dropped dirty
                // pages, so the journal is permanently untrustworthy —
                // a liveness failure, not a transient hiccup.
                live = false;
                causes.push(format!("storage_error: journal poisoned: {err}"));
            } else if !journal.is_alive() {
                live = false;
                causes.push("journal flusher stopped (disk dead or shut down)".to_string());
            } else if let Some(err) = journal.last_error() {
                // A failed *write* is retried by the flusher with the
                // frames intact — degraded but recoverable, so the node
                // stays live and reports not-ready.
                causes.push(format!("journal write error (retrying): {err}"));
            }
            if self.inner.degraded.load(Ordering::Acquire) {
                causes.push("degraded: disk_full (read-only)".to_string());
            }
            // The slow-request threshold doubles as the fsync budget:
            // commits block on fsync, so a p99 past it means acked
            // writes are regularly crossing the slow line.
            let budget_ns = self.inner.trace.slow_ns();
            let p99_ns = bucket_p99_ns(&journal.flush_profile().fsync_ns_buckets);
            if budget_ns > 0 && p99_ns > budget_ns {
                causes.push(format!(
                    "fsync p99 {}ms over the {}ms budget",
                    p99_ns / 1_000_000,
                    budget_ns / 1_000_000
                ));
            }
        }
        let depth = self.inner.pool.queue_depth();
        let bound = self.workers().max(1) * 256;
        if depth > bound {
            causes.push(format!(
                "worker queue depth {depth} over the saturation bound {bound}"
            ));
        }
        // Probes double as shed-level observations, so the shedder also
        // decays while no admission checks are running.
        if let Some((from, to)) = self.inner.shedder.observe(depth) {
            self.inner.diag.warn(
                Subsystem::Admission,
                format_args!(
                    "shed level {from} -> {to} (worker queue depth {depth}, watermark {})",
                    self.inner.shedder.high()
                ),
            );
        }
        let shed_level = self.inner.shedder.level();
        if shed_level > 0 {
            causes.push(format!(
                "overloaded: shedding at level {shed_level} (worker queue depth {depth}, \
                 watermark {})",
                self.inner.shedder.high()
            ));
        }
        if self.inner.sessions.at_capacity() {
            causes.push(format!(
                "overloaded: session registry at its quota of {}",
                self.inner.sessions.max_sessions()
            ));
        }
        if self.is_draining() {
            causes.push("draining: graceful drain in progress".to_string());
        }
        let role = self.role();
        let mut lag_seconds = 0.0;
        match &role {
            Role::Primary => {
                let seen = self
                    .inner
                    .replication
                    .max_epoch_seen
                    .load(Ordering::Acquire);
                let epoch = self
                    .inner
                    .storage
                    .as_ref()
                    .map_or(0, |binding| binding.storage.epoch());
                if seen > epoch {
                    causes.push(format!(
                        "deposed: fenced at epoch {epoch} by a replica at epoch {seen}"
                    ));
                }
            }
            Role::Follower { primary } => {
                lag_seconds = self
                    .inner
                    .replication
                    .tail_current_at
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .elapsed()
                    .as_secs_f64();
                let max = self.inner.config.max_lag.as_secs_f64();
                if lag_seconds > max {
                    causes.push(format!(
                        "replication lag {lag_seconds:.1}s past max-lag {max:.1}s \
                         (primary {primary})"
                    ));
                }
            }
        }
        let ready = live && causes.is_empty();
        HealthReport {
            live,
            ready,
            causes,
            lag_seconds,
        }
    }

    /// True once a `shutdown` request has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Register a wakeup to run when shutdown is requested (idempotent —
    /// it may fire more than once). Front ends use this to interrupt
    /// blocked accepts/reads immediately instead of noticing shutdown on
    /// a timeout. Returns a token for [`remove_shutdown_hook`](Self::remove_shutdown_hook).
    pub fn add_shutdown_hook(&self, hook: impl Fn() + Send + Sync + 'static) -> u64 {
        let id = self.inner.next_hook_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .shutdown_hooks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((id, Box::new(hook)));
        id
    }

    /// Unregister a shutdown wakeup (a front end leaving `run`).
    pub fn remove_shutdown_hook(&self, id: u64) {
        self.inner
            .shutdown_hooks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(hook_id, _)| *hook_id != id);
    }

    fn notify_shutdown(&self) {
        let hooks = self
            .inner
            .shutdown_hooks
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (_, hook) in hooks.iter() {
            hook();
        }
    }

    /// The raw counters, for front ends recording transport telemetry
    /// (connection gauge, byte counters).
    pub(crate) fn metrics_raw(&self) -> &ServiceMetrics {
        &self.inner.metrics
    }

    /// Run a job on the service worker pool (the epoll reactor's
    /// dispatch path for CPU-heavy request batches). Jobs may themselves
    /// fan out on the pool — `map_ordered` is caller-participating, so
    /// a batched `clean` inside a job cannot deadlock.
    pub(crate) fn submit_job(&self, job: impl FnOnce() + Send + 'static) {
        self.inner.pool.submit(job);
    }

    /// Evict idle sessions now; returns how many were reaped. The TCP
    /// server calls this periodically; embedders with their own runtime
    /// can too. Evictions are journaled so recovery does not resurrect
    /// reaped sessions.
    pub fn sweep_idle_sessions(&self) -> usize {
        let evicted = self.with_gate(|| {
            let evicted = self.inner.sessions.evict_idle();
            if !evicted.is_empty() {
                self.journal(&JournalEvent::SessionsEvicted {
                    sessions: evicted.clone(),
                });
            }
            evicted
        });
        if !evicted.is_empty() {
            self.inner.metrics.sessions_evicted(evicted.len() as u64);
        }
        evicted.len()
    }

    /// Install a snapshot of all live state and truncate the journal,
    /// if storage is attached and the snapshot policy says it is time.
    /// The TCP server calls this from its housekeeping loop.
    pub fn maybe_snapshot(&self) -> std::io::Result<bool> {
        // Followers never snapshot on their own: a snapshot bumps the
        // journal epoch, and a follower's epoch must track the
        // primary's or the stream it tails would fence itself.
        if matches!(self.role(), Role::Follower { .. }) {
            return Ok(false);
        }
        match &self.inner.storage {
            Some(binding) if binding.storage.should_snapshot() => self.snapshot_now(),
            _ => Ok(false),
        }
    }

    /// Unconditionally snapshot now (no-op without storage). Holds the
    /// storage gate in write mode: the captured session set and the
    /// journal truncation are atomic against concurrent mutation.
    pub fn snapshot_now(&self) -> std::io::Result<bool> {
        let Some(binding) = &self.inner.storage else {
            return Ok(false);
        };
        let _gate = binding.gate.write().unwrap_or_else(|e| e.into_inner());
        let engine = self.engine();
        let schema_arity = self.inner.input_schema.arity();
        let sessions = self
            .inner
            .sessions
            .export()
            .into_iter()
            .map(|(id, session)| session_to_snapshot(id, &session, schema_arity))
            .collect();
        let data = SnapshotData {
            epoch: binding.storage.epoch() + 1,
            fingerprint: engine.fingerprint,
            rules_dsl: render_ruleset_dsl(&engine.rules),
            next_session_id: self.inner.sessions.next_id(),
            master_appended: self
                .inner
                .master_appended
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
            sessions,
        };
        binding.storage.install_snapshot(&data)?;
        self.inner.metrics.snapshot_written();
        // Cache the encoded snapshot: it is what a follower whose
        // cursor predates the new epoch gets resynced from.
        *self
            .inner
            .replication
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(data.encode()));
        Ok(true)
    }

    /// Simulate a kill-9 with a cold page cache (crash-recovery tests):
    /// all storage files roll back to their last fsync and go inert.
    /// No-op (returning `false`) without storage.
    pub fn simulate_crash(&self) -> std::io::Result<bool> {
        match &self.inner.storage {
            Some(binding) => binding.storage.simulate_crash().map(|()| true),
            None => Ok(false),
        }
    }

    /// Replay recovered state: snapshot first (rule set, session
    /// states, id allocator), then the journal suffix through the same
    /// deterministic correcting process that produced it live. Replay
    /// runs on detached monitors — provenance already sits in the audit
    /// segment; re-recording it would duplicate the archive.
    fn recover(&self, recovered: RecoveredState) -> Result<(), String> {
        let schema = self.inner.input_schema.clone();
        if let Some(snapshot) = &recovered.snapshot {
            if !snapshot.master_appended.is_empty() {
                self.apply_master_rows(snapshot.master_appended.clone())?;
            }
            let boot = self.engine();
            if snapshot.fingerprint != boot.fingerprint && !snapshot.rules_dsl.is_empty() {
                let engine = self.compile_engine_from_dsl(&snapshot.rules_dsl)?;
                if engine.fingerprint != snapshot.fingerprint {
                    return Err(format!(
                        "snapshot rule set re-parses to fingerprint {:x}, expected {:x}",
                        engine.fingerprint, snapshot.fingerprint
                    ));
                }
                *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = engine;
            }
            for session in &snapshot.sessions {
                let restored = snapshot_to_session(session, &schema)?;
                self.inner.sessions.restore(session.session, restored);
            }
            self.inner
                .sessions
                .advance_next_id(snapshot.next_session_id);
        }
        self.replay_events(&recovered.events, false)?;
        let live = self.inner.sessions.len() as u64;
        self.inner.metrics.sessions_recovered(live);
        Ok(())
    }

    /// Replay a run of journal events in order — boot recovery and the
    /// follower tail both come through here. Adjacent `MasterAppended`
    /// events are coalesced into a single copy-on-append + recompile +
    /// delta re-certification pass: a burst of N appends costs one
    /// recompile instead of N (the merged batch lands on the same
    /// master state the per-event replay would, in the same order).
    fn replay_events(&self, events: &[JournalEvent], live: bool) -> Result<(), String> {
        let schema = self.inner.input_schema.clone();
        let mut i = 0;
        while i < events.len() {
            if let JournalEvent::MasterAppended { rows } = &events[i] {
                let mut batch = rows.clone();
                let mut j = i + 1;
                while let Some(JournalEvent::MasterAppended { rows }) = events.get(j) {
                    batch.extend(rows.iter().cloned());
                    j += 1;
                }
                self.apply_master_rows(batch)?;
                i = j;
                continue;
            }
            self.apply_journal_event(&events[i], &schema, live)?;
            i += 1;
        }
        Ok(())
    }

    /// Apply one replayed journal event. `live` distinguishes the
    /// follower tail (audit-attached monitors, so the follower's
    /// provenance stream regenerates byte-for-byte and `audit.read`
    /// answers match the primary's) from boot recovery (detached
    /// monitors — provenance already sits in the local audit segment;
    /// re-recording it would duplicate the archive).
    fn apply_journal_event(
        &self,
        event: &JournalEvent,
        schema: &SchemaRef,
        live: bool,
    ) -> Result<(), String> {
        match event {
            JournalEvent::SessionCreated { session, values } => {
                let tuple = Tuple::new(schema.clone(), values.clone())
                    .map_err(|e| format!("replay session {session}: {e}"))?;
                self.inner
                    .sessions
                    .restore(*session, MonitorSession::new(*session as usize, tuple));
            }
            JournalEvent::SessionValidated {
                session,
                validations,
            } => {
                let resolved: Vec<(usize, Value)> = validations
                    .iter()
                    .map(|(attr, value)| (*attr as usize, value.clone()))
                    .collect();
                let engine = self.engine();
                // Ignore per-event errors: replaying an op that failed
                // live reproduces the failed state too.
                if live {
                    let monitor = self.monitor_for(&engine);
                    let _ = self
                        .inner
                        .sessions
                        .with_session(*session, |state| monitor.apply_validation(state, &resolved));
                } else {
                    let monitor = DataMonitor::from_plan(
                        &engine.rules,
                        &engine.master,
                        Arc::clone(&engine.plan),
                    )
                    .with_shared_regions(Arc::clone(&engine.regions));
                    let _ = self
                        .inner
                        .sessions
                        .with_session(*session, |state| monitor.apply_validation(state, &resolved));
                }
            }
            JournalEvent::SessionCommitted { session }
            | JournalEvent::SessionAborted { session } => {
                let _ = self.inner.sessions.remove(*session);
            }
            JournalEvent::SessionsEvicted { sessions } => {
                for id in sessions {
                    let _ = self.inner.sessions.remove(*id);
                }
            }
            JournalEvent::RulesReloaded { dsl, fingerprint } => {
                let engine = self.compile_engine_from_dsl(dsl)?;
                if engine.fingerprint != *fingerprint {
                    return Err(format!(
                        "journaled rule set re-parses to fingerprint {:x}, expected {:x}",
                        engine.fingerprint, fingerprint
                    ));
                }
                *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = engine;
            }
            JournalEvent::MasterAppended { rows } => {
                self.apply_master_rows(rows.clone())?;
            }
            JournalEvent::ConfigSet { key, value } => {
                // Unknown keys replay as no-ops: a journal written by a
                // newer build must not fail recovery on an older one.
                let _ = self.apply_config_set(key, *value);
            }
        }
        Ok(())
    }

    /// Follower side of the tail loop: journal the primary's events
    /// byte-for-byte into our own journal (so our positions mirror the
    /// primary's and a restart resumes from our durable cursor), replay
    /// them through the live correcting path, then block on the group
    /// fsync — the cursor our next `replica.sync` acks with only moves
    /// once the events are durable *here*.
    ///
    /// The fsync outcome decides the follower's fate: a failed *write*
    /// is retried in place (the events are already applied, so
    /// re-pulling them from the primary would double-apply
    /// non-idempotent `MasterAppended` rows — the cursor must not move
    /// until this exact frame lands); a *poisoned* journal (fsync
    /// failure) is unrecoverable locally and reported as
    /// [`ReplicaApplyError::Poisoned`] so the tail loop can demand a
    /// snapshot re-sync from the primary instead of dying.
    pub(crate) fn apply_replica_events(
        &self,
        events: Vec<JournalEvent>,
    ) -> Result<(), crate::replication::ReplicaApplyError> {
        use crate::replication::ReplicaApplyError;
        let Some(binding) = &self.inner.storage else {
            return Err(ReplicaApplyError::Diverged(
                "follower has no storage attached".into(),
            ));
        };
        let last_seq = self
            .with_gate(|| -> Result<Option<u64>, String> {
                let mut last = None;
                for event in &events {
                    last = Some(binding.storage.append(event));
                }
                self.replay_events(&events, true)?;
                Ok(last)
            })
            .map_err(ReplicaApplyError::Diverged)?;
        let Some(seq) = last_seq else {
            return Ok(());
        };
        loop {
            match binding.storage.sync(seq) {
                Ok(()) => return Ok(()),
                Err(SyncError::WriteFailed { error, enospc }) => {
                    if enospc {
                        self.enter_degraded(&format!("journal write: {error}"));
                    }
                    if self.shutdown_requested() {
                        return Err(ReplicaApplyError::Stopped);
                    }
                    // The frames are back in the flusher's pending
                    // queue; wait for its retry rather than re-pulling.
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(SyncError::Poisoned { error }) => {
                    self.note_poisoned(&error);
                    return Err(ReplicaApplyError::Poisoned(error));
                }
                Err(SyncError::Stopped) => return Err(ReplicaApplyError::Stopped),
            }
        }
    }

    /// Full resync: a follower whose cursor predates the primary's
    /// journal epoch (a snapshot truncated the events it was owed)
    /// installs the primary's snapshot wholesale. Rebuilds the engine
    /// from the boot master/rules before applying the snapshot's
    /// appended rows — they are relative to boot, and our own appends
    /// are a prefix of the primary's history anyway.
    pub(crate) fn install_replica_snapshot(&self, data: SnapshotData) -> Result<(), String> {
        let Some(binding) = &self.inner.storage else {
            return Err("follower has no storage attached".into());
        };
        if data.epoch <= binding.storage.epoch() {
            return Err(format!(
                "snapshot epoch {} is not ahead of local epoch {}",
                data.epoch,
                binding.storage.epoch()
            ));
        }
        let schema = self.inner.input_schema.clone();
        let encoded = data.encode();
        let gate = binding.gate.write().unwrap_or_else(|e| e.into_inner());
        for (id, _) in self.inner.sessions.export() {
            let _ = self.inner.sessions.remove(id);
        }
        {
            let _swap = self
                .inner
                .swap_lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let engine = compile_engine(
                Arc::clone(&self.inner.boot_master),
                Arc::clone(&self.inner.boot_rules),
                &self.inner.config,
                &self.inner.cache,
                &self.inner.metrics,
            );
            *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = engine;
            self.inner
                .master_appended
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
        if !data.master_appended.is_empty() {
            self.apply_master_rows(data.master_appended.clone())?;
        }
        let boot = self.engine();
        if data.fingerprint != boot.fingerprint && !data.rules_dsl.is_empty() {
            let engine = self.compile_engine_from_dsl(&data.rules_dsl)?;
            if engine.fingerprint != data.fingerprint {
                return Err(format!(
                    "snapshot rule set re-parses to fingerprint {:x}, expected {:x}",
                    engine.fingerprint, data.fingerprint
                ));
            }
            *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = engine;
        }
        for session in &data.sessions {
            let restored = snapshot_to_session(session, &schema)?;
            self.inner.sessions.restore(session.session, restored);
        }
        self.inner.sessions.advance_next_id(data.next_session_id);
        binding
            .storage
            .install_snapshot(&data)
            .map_err(|e| e.to_string())?;
        drop(gate);
        *self
            .inner
            .replication
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(encoded));
        Ok(())
    }

    /// Parse DSL against the service schemas and compile a full engine
    /// state (plan + regions served from the analysis cache) over the
    /// current master.
    fn compile_engine_from_dsl(&self, dsl: &str) -> Result<Arc<EngineState>, String> {
        let boot = self.engine();
        let input = boot.rules.input_schema().clone();
        let master_schema = boot.rules.master_schema().clone();
        let mut set = RuleSet::new(input.clone(), master_schema.clone());
        for decl in parse_rules(dsl, &input, &master_schema).map_err(|e| e.to_string())? {
            match decl {
                RuleDecl::Er(rule) => {
                    set.add(rule).map_err(|e| e.to_string())?;
                }
                other => {
                    return Err(format!(
                        "`{}` is not an editing rule; derive CFDs/MDs before loading",
                        other.name()
                    ))
                }
            }
        }
        Ok(compile_engine(
            Arc::clone(&boot.master),
            Arc::new(set),
            &self.inner.config,
            &self.inner.cache,
            &self.inner.metrics,
        ))
    }

    /// Apply appended master rows (recovery replay): copy-on-append the
    /// current master, recompile, patch cached regions by delta
    /// re-certification, and swap — the same deterministic path the live
    /// `master.append` op takes, minus journaling.
    fn apply_master_rows(&self, rows: Vec<Vec<Value>>) -> Result<(), String> {
        let _swap = self
            .inner
            .swap_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let engine = self.engine();
        let (next, _, _) = append_engine_master(&engine, rows.clone(), &self.inner)?;
        *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = next;
        self.inner
            .master_appended
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(rows);
        Ok(())
    }

    fn monitor_for<'e>(&'e self, engine: &'e EngineState) -> DataMonitor<'e> {
        // `from_shared_parts` (not `from_plan` + builder chain) so the
        // per-request monitor is refcount bumps only — no allocation on
        // the warmed path.
        DataMonitor::from_shared_parts(
            &engine.rules,
            &engine.master,
            Arc::clone(&engine.plan),
            Arc::clone(&engine.regions),
            Arc::clone(&self.inner.audit),
        )
    }

    /// Handle one wire line: parse, dispatch, render. Never panics on
    /// malformed input — errors come back as `{"ok":false,...}` lines.
    ///
    /// Convenience wrapper over
    /// [`handle_line_into`](Self::handle_line_into) that allocates fresh
    /// buffers; connection loops hold reusable ones instead.
    pub fn handle_line(&self, line: &str) -> String {
        let mut out = String::new();
        let mut scratch = RequestScratch::default();
        self.handle_line_into(line, &mut out, &mut scratch);
        out
    }

    /// Handle one wire line, rendering the response into `out`
    /// (appended; callers clear between requests) with `scratch` as the
    /// reusable parse buffer. This is the production entry point for
    /// both TCP front ends: the hot session ops (`session.get` / `fix` /
    /// `validate` / `commit` / `abort`) run a borrowed slice-parse and a
    /// direct render — zero steady-state allocations per request in
    /// memory mode — while everything else takes the tree parser.
    ///
    /// A client-supplied top-level `"id"` field is echoed verbatim as
    /// the first field of the response, so pipelining clients can
    /// correlate responses (which always arrive in request order per
    /// connection) without counting lines.
    pub fn handle_line_into(&self, line: &str, out: &mut String, scratch: &mut RequestScratch) {
        self.handle_line_at(line, out, scratch, Instant::now());
    }

    /// [`handle_line_into`](Self::handle_line_into) with an explicit
    /// receipt instant: `received` is when the line arrived (socket
    /// read, or worker-pool submit for batched heavy ops), so the
    /// receipt→dispatch gap is accounted as queue wait and a client
    /// `deadline_ms` is measured from arrival — work whose caller has
    /// already given up is shed before any engine or fsync cost.
    pub fn handle_line_at(
        &self,
        line: &str,
        out: &mut String,
        scratch: &mut RequestScratch,
        received: Instant,
    ) {
        let started = Instant::now();
        let scanned = scan_line(line);
        let queue_wait = started.saturating_duration_since(received);
        self.inner.metrics.observe_queue_wait(queue_wait);
        let mut span = Span {
            parse_ns: started.elapsed().as_nanos() as u64,
            queue_ns: queue_wait.as_nanos() as u64,
            ..Span::default()
        };
        // Deadline check before any engine, journal or fsync cost is
        // paid. `deadline_ms: 0` is deterministically expired; an
        // absurd deadline that overflows `Instant` arithmetic can
        // never expire and is simply dropped.
        if let Some(deadline) = scanned
            .deadline_ms
            .and_then(|ms| received.checked_add(Duration::from_millis(ms)))
        {
            if started >= deadline {
                let ms = scanned.deadline_ms.unwrap_or(0);
                let op = scanned.op.unwrap_or("other");
                self.inner.metrics.request();
                self.inner.metrics.shed_deadline();
                self.write_error(
                    &format!("deadline_exceeded: deadline of {ms}ms expired before work began"),
                    scanned.id,
                    out,
                );
                let elapsed = started.elapsed();
                self.inner.metrics.observe_latency(op, elapsed);
                self.finish_span(&mut span, op, scanned.id, elapsed);
                return;
            }
            span.deadline = Some(deadline);
        }
        // Admission: when the scanner produced a plain op string the
        // shed decision costs two atomic loads, before even the hot
        // path runs. Lines it could not classify are checked after the
        // tree parse instead (never twice).
        if let Some(op) = scanned.op {
            if let Some(message) = self.shed_check(op) {
                self.inner.metrics.request();
                self.inner.metrics.shed_overload();
                self.write_error(&message, scanned.id, out);
                let elapsed = started.elapsed();
                self.inner.metrics.observe_latency(op, elapsed);
                self.finish_span(&mut span, op, scanned.id, elapsed);
                return;
            }
        }
        if let Some(hot) = scanned.hot {
            if self.try_hot(&hot, scanned.id, out, scratch, started, &mut span) {
                return;
            }
        }
        self.inner.metrics.request();
        let op = match Request::parse_line(line) {
            Ok(request) => {
                // Tree parse counts as parse time too.
                span.parse_ns = started.elapsed().as_nanos() as u64;
                let late_shed = if scanned.op.is_none() {
                    self.shed_check(request.op())
                } else {
                    None
                };
                let response = match late_shed {
                    Some(message) => {
                        self.inner.metrics.shed_overload();
                        self.error(message)
                    }
                    None => self.dispatch(&request, &mut span),
                };
                let render_started = Instant::now();
                render_response_into(&response, scanned.id, out);
                span.serialize_ns = render_started.elapsed().as_nanos() as u64;
                request.op()
            }
            Err(e) => {
                // A well-formed request naming an op we don't know is
                // `other` traffic; `parse_error` is malformed JSON.
                let op = if e.0.starts_with("unknown op ") {
                    "other"
                } else {
                    "parse_error"
                };
                let response = self.error(e.0);
                render_response_into(&response, scanned.id, out);
                op
            }
        };
        let elapsed = started.elapsed();
        self.inner.metrics.observe_latency(op, elapsed);
        self.finish_span(&mut span, op, scanned.id, elapsed);
    }

    /// Close out a request's trace span: charge its engine-stat delta
    /// to its op class and, when tracing is on, derive the trace id and
    /// residual dispatch time and publish it into the ring. Atomics
    /// only — no allocation, hot-path safe.
    fn finish_span(&self, span: &mut Span, op: &str, raw_id: Option<&str>, total: Duration) {
        let op_idx = op_index(op);
        if span.stats != cerfix::EngineStats::default() {
            self.inner.metrics.add_engine_stats(op_idx, &span.stats);
        }
        if !self.inner.trace.enabled() {
            return;
        }
        span.trace_id = self.inner.trace.trace_id(raw_id);
        span.op = op_idx;
        span.total_ns = total.as_nanos() as u64;
        span.dispatch_ns = span.total_ns.saturating_sub(
            span.parse_ns + span.engine_ns + span.fsync_ns + span.quorum_ns + span.serialize_ns,
        );
        self.inner.trace.record(span);
    }

    /// Dispatch one typed request.
    pub fn handle(&self, request: &Request) -> Json {
        self.inner.metrics.request();
        let started = Instant::now();
        let mut span = Span::default();
        let response = self.dispatch(request, &mut span);
        let elapsed = started.elapsed();
        self.inner.metrics.observe_latency(request.op(), elapsed);
        self.finish_span(&mut span, request.op(), None, elapsed);
        response
    }

    fn dispatch(&self, request: &Request, span: &mut Span) -> Json {
        let result = match request {
            Request::Hello => Ok(self.hello()),
            Request::SessionCreate { tuple } => self
                .check_writable()
                .and_then(|()| self.session_create(tuple)),
            Request::SessionGet { session } => self.session_get(*session),
            Request::SessionValidate {
                session,
                validations,
            } => self
                .check_writable()
                .and_then(|()| self.session_validate(*session, validations, span)),
            Request::SessionFix { session } => self
                .check_writable()
                .and_then(|()| self.session_validate(*session, &[], span)),
            Request::SessionCommit { session } => self
                .check_writable()
                .and_then(|()| self.session_commit(*session, span)),
            Request::SessionAbort { session } => self
                .check_writable()
                .and_then(|()| self.session_abort(*session)),
            Request::Clean { tuples, trust } => self.clean_batch(tuples.clone(), trust),
            Request::Regions { top_k } => Ok(self.regions(*top_k)),
            Request::Check { mode } => self.check(mode.as_deref()),
            Request::AuditRead { start, count } => Ok(self.audit_read(*start, *count)),
            Request::RulesReload { rules } => self
                .check_writable()
                .and_then(|()| self.rules_reload(rules)),
            Request::MasterAppend { tuples } => self
                .check_writable()
                .and_then(|()| self.master_append(tuples)),
            Request::ReplicaSync {
                follower,
                epoch,
                offset,
                max,
                resync,
            } => self.replica_sync(follower, *epoch, *offset, *max, *resync),
            Request::ReplicaPromote => self.replica_promote(),
            Request::Metrics => Ok(self.metrics_response()),
            Request::MetricsProm => Ok(self.metrics_prom_response()),
            Request::TraceRead { limit } => Ok(self.trace_read(*limit)),
            Request::Health => Ok(self.health_response()),
            Request::LogRead {
                limit,
                level,
                subsystem,
            } => self.log_read(*limit, level.as_deref(), subsystem.as_deref()),
            Request::MetricsHistory { limit } => Ok(self.metrics_history(*limit)),
            Request::ClusterStatus { fanout } => Ok(self.cluster_status(*fanout)),
            Request::ConfigSet { key, value } => self
                .check_writable()
                .and_then(|()| self.config_set(key, *value)),
            Request::Scrub => self.scrub_response(),
            Request::Drain { wait_ms } => self.server_drain(*wait_ms),
            Request::Shutdown => {
                self.inner.shutdown.store(true, Ordering::Release);
                self.notify_shutdown();
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("stopping", Json::Bool(true)),
                ]))
            }
        };
        result.unwrap_or_else(|message| self.error(message))
    }

    /// Admission decision for one request: feed the shedder the current
    /// queue depth, then shed by priority class. `Some` carries the
    /// retryable `overloaded` error. Two atomic loads when the shedder
    /// is disarmed — cheap enough for every request.
    fn shed_check(&self, op: &str) -> Option<String> {
        let depth = self.inner.pool.queue_depth();
        if let Some((from, to)) = self.inner.shedder.observe(depth) {
            self.inner.diag.warn(
                Subsystem::Admission,
                format_args!(
                    "shed level {from} -> {to} (worker queue depth {depth}, watermark {})",
                    self.inner.shedder.high()
                ),
            );
        }
        let class = priority(op);
        if !self.inner.shedder.sheds(class) {
            return None;
        }
        let what = match class {
            Priority::Heavy => "heavy reads",
            _ => "session mutations",
        };
        Some(format!(
            "overloaded: shedding {what} at level {} (worker queue depth {depth} over watermark {}); retry with backoff",
            self.inner.shedder.level(),
            self.inner.shedder.high(),
        ))
    }

    /// `server.drain`: begin a graceful drain. Idempotent — the first
    /// call latches the draining flag (front ends stop admitting
    /// connections, `session.create` answers `draining`) and starts a
    /// monitor thread that waits for in-flight sessions to finish (or
    /// for the bound to expire), takes a final snapshot, and then runs
    /// the normal shutdown path. Acked work is never dropped: every
    /// acknowledged commit is already durable, and the final snapshot
    /// preserves still-open sessions for the restarted process.
    fn server_drain(&self, wait_ms: Option<u64>) -> Result<Json, String> {
        let bound = Duration::from_millis(wait_ms.unwrap_or(DEFAULT_DRAIN_WAIT_MS));
        let newly = !self.inner.draining.swap(true, Ordering::AcqRel);
        if newly {
            self.inner.metrics.drain_started();
            self.inner.diag.info(
                Subsystem::Admission,
                format_args!(
                    "drain started: {} live sessions, bound {:?}",
                    self.live_sessions(),
                    bound
                ),
            );
        }
        if !self
            .inner
            .drain_monitor_started
            .swap(true, Ordering::AcqRel)
        {
            let service = self.clone();
            std::thread::Builder::new()
                .name("cerfix-drain".into())
                .spawn(move || {
                    let deadline = Instant::now() + bound;
                    while Instant::now() < deadline
                        && service.live_sessions() > 0
                        && !service.shutdown_requested()
                    {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    let remaining = service.live_sessions();
                    if remaining > 0 {
                        service.inner.diag.warn(
                            Subsystem::Admission,
                            format_args!(
                                "drain bound expired with {remaining} sessions still open; \
                                 snapshotting them for hand-off"
                            ),
                        );
                    }
                    // The final snapshot hands still-open sessions to
                    // the restarted process; shutdown then stops the
                    // front ends, which snapshot once more on exit
                    // (idempotent).
                    let _ = service.snapshot_now();
                    service.inner.diag.info(
                        Subsystem::Admission,
                        format_args!("drain complete; shutting down"),
                    );
                    service.inner.shutdown.store(true, Ordering::Release);
                    service.notify_shutdown();
                })
                .map_err(|e| format!("storage_error: drain monitor spawn failed: {e}"))?;
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("draining", Json::Bool(true)),
            ("sessions", Json::Num(self.live_sessions() as f64)),
            ("wait_ms", Json::Num(bound.as_millis() as f64)),
        ]))
    }

    fn error(&self, message: String) -> Json {
        self.inner.metrics.error();
        Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message))])
    }

    /// Render an error response directly (fast-path twin of
    /// [`error`](Self::error); byte-identical output).
    fn write_error(&self, message: &str, raw_id: Option<&str>, out: &mut String) {
        self.inner.metrics.error();
        let mut w = JsonWriter::new(out);
        w.begin_response(raw_id);
        w.key("ok");
        w.bool_val(false);
        w.key("error");
        w.str_val(message);
        w.end_obj();
    }

    /// `replica.sync`: serve journal events past the follower's durable
    /// cursor `(epoch, offset)`. The cursor doubles as the follower's
    /// acknowledgement — everything before it is fsynced over there —
    /// so this call also feeds the quorum-ack commit gate. A cursor
    /// whose epoch predates ours gets the current snapshot instead
    /// (its events were truncated away); one ahead of ours means we
    /// have been deposed, and the request fences us.
    fn replica_sync(
        &self,
        follower: &str,
        epoch: u64,
        offset: u64,
        max: Option<u64>,
        resync: bool,
    ) -> Result<Json, String> {
        let Some(binding) = &self.inner.storage else {
            return Err("replication requires a journaled server (--data-dir)".into());
        };
        self.inner
            .replication
            .max_epoch_seen
            .fetch_max(epoch, Ordering::AcqRel);
        if resync {
            // The follower's journal is poisoned or corrupt: cut a
            // fresh snapshot (the epoch bump guarantees it installs
            // over there, and installing truncates — and thereby
            // un-poisons — the follower's journal) and serve it.
            self.inner.diag.info(
                Subsystem::Replication,
                format_args!("follower {follower} requested a forced snapshot re-sync"),
            );
            self.snapshot_now().map_err(|e| e.to_string())?;
            let snapshot = self.cached_snapshot()?;
            let cur_epoch = binding.storage.epoch();
            let (_, durable) = binding.storage.durable_position();
            self.record_follower(follower, epoch, offset, cur_epoch, durable);
            return Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("epoch", Json::Num(cur_epoch as f64)),
                ("from", Json::Num(offset as f64)),
                ("durable", Json::Num(durable as f64)),
                ("snapshot", Json::Str(hex_encode(&snapshot))),
                ("events", Json::Arr(Vec::new())),
            ]));
        }
        let max = max.unwrap_or(512).clamp(1, 2048) as usize;
        let read = binding
            .storage
            .read_journal_from(offset, max)
            .map_err(|e| format!("journal read failed: {e}"))?;
        self.record_follower(follower, epoch, offset, read.epoch, read.durable_events);
        if epoch > read.epoch {
            return Err(format!(
                "stale_epoch: follower {follower} is at epoch {epoch}, this node is at {}",
                read.epoch
            ));
        }
        if epoch < read.epoch {
            let snapshot = self.cached_snapshot()?;
            return Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("epoch", Json::Num(read.epoch as f64)),
                ("from", Json::Num(offset as f64)),
                ("durable", Json::Num(read.durable_events as f64)),
                ("snapshot", Json::Str(hex_encode(&snapshot))),
                ("events", Json::Arr(Vec::new())),
            ]));
        }
        let frames: Vec<Json> = read
            .events
            .iter()
            .map(|event| Json::Str(hex_encode(&event.encode())))
            .collect();
        self.inner
            .metrics
            .replication_events_served(frames.len() as u64);
        // `from` echoes the requested cursor: a follower rejects any
        // response whose echo mismatches its cursor, so a duplicated or
        // reordered response on a faulty network can never re-apply.
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("epoch", Json::Num(read.epoch as f64)),
            ("from", Json::Num(offset as f64)),
            ("durable", Json::Num(read.durable_events as f64)),
            ("events", Json::Arr(frames)),
        ]))
    }

    /// Update the follower registry from a sync request's cursor and
    /// wake any commit waiting on quorum acks.
    fn record_follower(
        &self,
        follower: &str,
        epoch: u64,
        offset: u64,
        cur_epoch: u64,
        cur_durable: u64,
    ) {
        let caught_up = epoch > cur_epoch || (epoch == cur_epoch && offset >= cur_durable);
        let now = Instant::now();
        let mut followers = lock_followers(&self.inner.replication);
        let entry =
            followers
                .entry(follower.to_string())
                .or_insert(crate::replication::FollowerStatus {
                    epoch,
                    offset,
                    last_seen: now,
                    caught_up_at: now,
                });
        entry.epoch = epoch;
        entry.offset = offset;
        entry.last_seen = now;
        if caught_up {
            entry.caught_up_at = now;
        }
        drop(followers);
        self.inner.replication.ack_cv.notify_all();
    }

    /// The committed snapshot bytes a stale follower resyncs from. If
    /// none are cached (this epoch's snapshot predates this process and
    /// left no file we recovered), cut a fresh one — that both seeds
    /// the cache and gives the follower the newest possible epoch.
    fn cached_snapshot(&self) -> Result<Arc<Vec<u8>>, String> {
        let cached = self
            .inner
            .replication
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(cached) = cached {
            return Ok(cached);
        }
        self.snapshot_now().map_err(|e| e.to_string())?;
        self.inner
            .replication
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .ok_or_else(|| "no snapshot available for resync".into())
    }

    /// The commit's replication coordinates: `(epoch, position)` of the
    /// journal frame `seq` — what follower acks are measured against.
    /// Must run inside the storage gate (same critical section as the
    /// append), so a concurrent snapshot cannot shift the mapping.
    fn commit_position(&self, seq: u64) -> Option<(u64, u64)> {
        self.inner
            .storage
            .as_ref()
            .map(|binding| (binding.storage.epoch(), binding.storage.position_of(seq)))
    }

    /// Block until ⌈(N+1)/2⌉ cluster members have a durable copy of the
    /// commit at `(epoch, position)`. Our own fsync already counts, so
    /// quorum − 1 follower acks are needed; a follower ack is a sync
    /// cursor at or past the position (or from a later epoch — the
    /// commit rode inside the snapshot that started it). On timeout the
    /// commit stays applied and locally durable, but the client gets a
    /// `quorum_timeout` error instead of an acknowledgement.
    fn wait_for_quorum(&self, epoch: u64, position: u64, span: &mut Span) -> Result<(), String> {
        let repl = &self.inner.replication;
        let needed = repl.quorum().saturating_sub(1);
        if needed == 0 {
            return Ok(());
        }
        let started = Instant::now();
        // A client deadline tightens (never widens) the ack-timeout
        // bound: the caller has stopped listening past it, so waiting
        // longer only burns a dispatch slot.
        let mut deadline = started + repl.ack_timeout;
        let mut deadline_cut = false;
        if let Some(client_deadline) = span.deadline {
            if client_deadline < deadline {
                deadline = client_deadline;
                deadline_cut = true;
            }
        }
        let mut followers = lock_followers(repl);
        loop {
            let acked = followers
                .values()
                .filter(|f| f.epoch > epoch || (f.epoch == epoch && f.offset >= position))
                .count();
            if acked >= needed {
                drop(followers);
                let elapsed = started.elapsed();
                self.inner.metrics.observe_ack_latency(elapsed);
                span.quorum_ns += elapsed.as_nanos() as u64;
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                drop(followers);
                span.quorum_ns += started.elapsed().as_nanos() as u64;
                if deadline_cut {
                    self.inner.metrics.shed_deadline();
                    return Err(format!(
                        "deadline_exceeded: commit is durable locally but the request \
                         deadline expired with only {acked}/{needed} follower acks"
                    ));
                }
                self.inner.metrics.quorum_timeout();
                return Err(format!(
                    "quorum_timeout: commit is durable locally but only {acked}/{needed} \
                     follower acks arrived within {:?}",
                    repl.ack_timeout
                ));
            }
            followers = repl
                .ack_cv
                .wait_timeout(followers, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// `replica.promote`: turn this follower into the primary. Stops
    /// and joins the tail thread first (no replicated event can land
    /// after the transition), then cuts a snapshot — the epoch bump is
    /// the fence: our next sync against the old primary (or any peer's)
    /// carries the higher epoch and makes it refuse further mutations.
    /// Idempotent on a node that is already primary.
    fn replica_promote(&self) -> Result<Json, String> {
        let Some(binding) = &self.inner.storage else {
            return Err("replication requires a journaled server (--data-dir)".into());
        };
        let repl = &self.inner.replication;
        let was_follower = matches!(
            &*repl.role.read().unwrap_or_else(|e| e.into_inner()),
            Role::Follower { .. }
        );
        if was_follower {
            repl.stop.store(true, Ordering::Release);
            let handle = repl
                .tail
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
            *repl.role.write().unwrap_or_else(|e| e.into_inner()) = Role::Primary;
            self.snapshot_now().map_err(|e| e.to_string())?;
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("role", Json::str("primary")),
            ("epoch", Json::Num(binding.storage.epoch() as f64)),
            ("promoted", Json::Bool(was_follower)),
        ]))
    }

    /// Execute a hot-scanned request directly. Returns false when the
    /// line must fall back to the tree parser (so wire-level error
    /// messages stay identical); in that case nothing was executed,
    /// counted or written.
    fn try_hot(
        &self,
        hot: &HotOp<'_>,
        raw_id: Option<&str>,
        out: &mut String,
        scratch: &mut RequestScratch,
        started: Instant,
        span: &mut Span,
    ) -> bool {
        // The mutation gate applies on the hot path too: a follower's
        // fast-scanned `session.commit` must bounce exactly like the
        // tree-parsed one, and so must a degraded or storage-poisoned
        // node's (reads — `session.get` — stay allowed).
        let gate_err = match *hot {
            HotOp::SessionGet { .. } => None,
            _ => self.check_writable().err(),
        };
        if let Some(message) = gate_err {
            self.inner.metrics.request();
            self.write_error(&message, raw_id, out);
            let elapsed = started.elapsed();
            self.inner.metrics.observe_latency(hot.op(), elapsed);
            self.finish_span(span, hot.op(), raw_id, elapsed);
            return true;
        }
        match *hot {
            HotOp::SessionValidate {
                session,
                validations,
            } => {
                match self.resolve_validations_into(validations, scratch) {
                    Ok(true) => {}
                    // Wire shape the scanner does not vouch for: let the
                    // tree parser own it (and its error message).
                    Ok(false) => return false,
                    Err(message) => {
                        self.inner.metrics.request();
                        self.write_error(&message, raw_id, out);
                        let elapsed = started.elapsed();
                        self.inner
                            .metrics
                            .observe_latency("session.validate", elapsed);
                        self.finish_span(span, "session.validate", raw_id, elapsed);
                        return true;
                    }
                }
                self.inner.metrics.request();
                self.hot_validate(session, raw_id, out, scratch, span);
            }
            HotOp::SessionFix { session } => {
                scratch.validations.clear();
                self.inner.metrics.request();
                self.hot_validate(session, raw_id, out, scratch, span);
            }
            HotOp::SessionGet { session } => {
                self.inner.metrics.request();
                self.hot_view(session, None, raw_id, out);
            }
            HotOp::SessionCommit { session } => {
                self.inner.metrics.request();
                self.hot_commit(session, raw_id, out, span);
            }
            HotOp::SessionAbort { session } => {
                self.inner.metrics.request();
                self.hot_abort(session, raw_id, out);
            }
        }
        let elapsed = started.elapsed();
        self.inner.metrics.observe_latency(hot.op(), elapsed);
        // The hot paths render while they execute, so serialization time
        // rides inside the span's residual dispatch share.
        self.finish_span(span, hot.op(), raw_id, elapsed);
        true
    }

    /// Re-scan a `validations` object span into `scratch.validations`.
    /// `Ok(true)` = resolved; `Ok(false)` = fall back to the tree
    /// parser; `Err` = a service-level error (unknown attribute) with
    /// the same message the tree path produces.
    fn resolve_validations_into(
        &self,
        span: &str,
        scratch: &mut RequestScratch,
    ) -> Result<bool, String> {
        scratch.validations.clear();
        let Some(mut scanner) = ObjectScanner::new(span) else {
            return Ok(false);
        };
        while let Some((key, value, _)) = scanner.next_field() {
            let attr = {
                let Some(name) = key.unescape_into(&mut scratch.unescape) else {
                    return Ok(false);
                };
                self.resolve_attr(name)?
            };
            let value = match value {
                RawValue::Null => Value::Null,
                RawValue::Bool(b) => Value::Bool(b),
                RawValue::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => {
                    Value::Int(n as i64)
                }
                RawValue::Num(n) => Value::Float(n),
                RawValue::Str(s) => {
                    let Some(content) = s.unescape_into(&mut scratch.unescape) else {
                        return Ok(false);
                    };
                    Value::str(content)
                }
                // Containers as cell values: tree path owns the error.
                RawValue::Arr(_) | RawValue::Obj(_) => return Ok(false),
            };
            scratch.validations.push((attr, value));
        }
        Ok(scanner.ok())
    }

    fn hot_validate(
        &self,
        id: u64,
        raw_id: Option<&str>,
        out: &mut String,
        scratch: &mut RequestScratch,
        span: &mut Span,
    ) {
        match self.apply_validations_resolved(id, &scratch.validations, span) {
            Ok(report) => {
                self.inner.metrics.cells_fixed(report.fixes.len() as u64);
                self.hot_view(id, Some(&report), raw_id, out);
            }
            Err(message) => self.write_error(&message, raw_id, out),
        }
    }

    /// Direct-render twin of [`session_view`](Self::session_view)
    /// (byte-identical output, guarded by tests). Writes nothing before
    /// the session lookup succeeds, so error responses stay clean.
    fn hot_view(
        &self,
        id: u64,
        report: Option<&FixpointReport>,
        raw_id: Option<&str>,
        out: &mut String,
    ) {
        let engine = self.engine();
        let monitor = self.monitor_for(&engine);
        let schema = self.input_schema();
        let result = self.inner.sessions.with_session(id, |session| {
            let status = monitor.status(session);
            let mut w = JsonWriter::new(out);
            w.begin_response(raw_id);
            w.key("ok");
            w.bool_val(true);
            w.key("session");
            w.num(id as f64);
            w.key("status");
            w.str_val(match &status {
                SessionStatus::AwaitingUser { .. } => "awaiting_user",
                SessionStatus::Complete => "complete",
                SessionStatus::Stuck { .. } => "stuck",
            });
            w.key("tuple");
            w.begin_arr();
            for v in session.tuple.values() {
                w.value(v);
            }
            w.end_arr();
            w.key("rounds");
            w.num(session.rounds as f64);
            w.key("validated");
            w.begin_arr();
            for a in session.validated.iter() {
                w.str_val(schema.attr_name(a));
            }
            w.end_arr();
            match status {
                SessionStatus::AwaitingUser { suggestion } => {
                    w.key("suggestion");
                    w.begin_arr();
                    for &a in &suggestion {
                        w.str_val(schema.attr_name(a));
                    }
                    w.end_arr();
                }
                SessionStatus::Stuck { unvalidated } => {
                    w.key("unvalidated");
                    w.begin_arr();
                    for &a in &unvalidated {
                        w.str_val(schema.attr_name(a));
                    }
                    w.end_arr();
                }
                SessionStatus::Complete => {}
            }
            if let Some(report) = report {
                w.key("fixes");
                w.begin_arr();
                for fix in &report.fixes {
                    w.begin_obj();
                    w.key("attr");
                    w.str_val(schema.attr_name(fix.attr));
                    w.key("old");
                    w.value(&fix.old);
                    w.key("new");
                    w.value(&fix.new);
                    w.key("rule");
                    w.num(fix.rule as f64);
                    w.key("master_row");
                    w.num(fix.master_row as f64);
                    w.end_obj();
                }
                w.end_arr();
                w.key("newly_validated");
                w.begin_arr();
                for &a in &report.newly_validated {
                    w.str_val(schema.attr_name(a));
                }
                w.end_arr();
            }
            w.end_obj();
        });
        if let Err(e) = result {
            self.write_error(&e.to_string(), raw_id, out);
        }
    }

    /// Direct-render twin of [`session_commit`](Self::session_commit).
    fn hot_commit(&self, id: u64, raw_id: Option<&str>, out: &mut String, span: &mut Span) {
        let result = self.with_gate(|| -> Result<_, String> {
            let session = self.inner.sessions.remove(id).map_err(|e| e.to_string())?;
            let seq = self.journal(&JournalEvent::SessionCommitted { session: id });
            let commit = seq.and_then(|seq| self.commit_position(seq).map(|pos| (seq, pos)));
            Ok((session, commit))
        });
        match result {
            Ok((session, commit)) => {
                self.inner.metrics.session_committed();
                if let (Some(binding), Some((seq, (epoch, position)))) =
                    (&self.inner.storage, commit)
                {
                    let sync_started = Instant::now();
                    let synced = self.sync_commit(binding, seq);
                    span.fsync_ns += sync_started.elapsed().as_nanos() as u64;
                    if let Err(message) = synced {
                        // Applied in memory and queued in the journal,
                        // but NOT durable — the ack must say so.
                        self.write_error(&message, raw_id, out);
                        return;
                    }
                    if self.inner.replication.cluster > 1 {
                        if let Err(message) = self.wait_for_quorum(epoch, position, span) {
                            self.write_error(&message, raw_id, out);
                            return;
                        }
                    }
                }
                let schema = self.input_schema();
                let mut w = JsonWriter::new(out);
                w.begin_response(raw_id);
                w.key("ok");
                w.bool_val(true);
                w.key("session");
                w.num(id as f64);
                w.key("complete");
                w.bool_val(session.is_complete());
                w.key("tuple");
                w.begin_arr();
                for v in session.tuple.values() {
                    w.value(v);
                }
                w.end_arr();
                w.key("rounds");
                w.num(session.rounds as f64);
                w.key("user_validated");
                w.num(session.user_validated.len() as f64);
                w.key("auto_validated");
                w.num(session.auto_validated.len() as f64);
                w.key("validated");
                w.begin_arr();
                for a in session.validated.iter() {
                    w.str_val(schema.attr_name(a));
                }
                w.end_arr();
                w.end_obj();
            }
            Err(message) => self.write_error(&message, raw_id, out),
        }
    }

    /// Direct-render twin of [`session_abort`](Self::session_abort).
    fn hot_abort(&self, id: u64, raw_id: Option<&str>, out: &mut String) {
        let result = self.with_gate(|| -> Result<(), String> {
            self.inner.sessions.remove(id).map_err(|e| e.to_string())?;
            self.journal(&JournalEvent::SessionAborted { session: id });
            Ok(())
        });
        match result {
            Ok(()) => {
                self.inner.metrics.session_aborted();
                let mut w = JsonWriter::new(out);
                w.begin_response(raw_id);
                w.key("ok");
                w.bool_val(true);
                w.key("session");
                w.num(id as f64);
                w.end_obj();
            }
            Err(message) => self.write_error(&message, raw_id, out),
        }
    }

    fn hello(&self) -> Json {
        let engine = self.engine();
        let role = self.role();
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("service", Json::str("cerfix-server")),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
            (
                "uptime_secs",
                Json::Num(self.inner.metrics.uptime_secs() as f64),
            ),
            ("workers", Json::Num(self.workers() as f64)),
            ("rules", Json::Num(engine.rules.len() as f64)),
            ("ruleset", Json::str(format!("{:016x}", engine.fingerprint))),
            ("master_rows", Json::Num(engine.master.len() as f64)),
            (
                "master_generation",
                Json::Num(engine.master.generation() as f64),
            ),
            ("input_arity", Json::Num(self.input_schema().arity() as f64)),
            (
                "storage",
                Json::str(if self.is_journaled() {
                    "journaled"
                } else {
                    "memory"
                }),
            ),
            ("role", Json::str(role.name())),
        ];
        if let Some(binding) = &self.inner.storage {
            fields.push(("epoch", Json::Num(binding.storage.epoch() as f64)));
        }
        if let Role::Follower { primary } = &role {
            fields.push(("primary", Json::str(primary.clone())));
        }
        // A self-re-pointing client treats a draining node like a
        // follower: go elsewhere.
        if self.is_draining() {
            fields.push(("draining", Json::Bool(true)));
        }
        fields.push((
            "attributes",
            Json::Arr(
                self.input_schema()
                    .attributes()
                    .iter()
                    .map(|a| Json::str(a.name()))
                    .collect(),
            ),
        ));
        Json::obj(fields)
    }

    fn session_create(&self, values: &[Value]) -> Result<Json, String> {
        // In-flight sessions finish during a drain; fresh ones belong
        // on another node.
        if self.is_draining() {
            self.inner.metrics.session_refused_draining();
            return Err(
                "draining: server is draining; create the session on another node".to_string(),
            );
        }
        let schema = self.input_schema().clone();
        if values.len() != schema.arity() {
            return Err(format!(
                "tuple has {} values but schema `{}` has arity {}",
                values.len(),
                schema.name(),
                schema.arity()
            ));
        }
        let tuple = Tuple::new(schema, values.to_vec()).map_err(|e| e.to_string())?;
        let id = self.with_gate(|| -> Result<u64, String> {
            let id = self
                .inner
                .sessions
                .create(MonitorSession::new(0, tuple.clone()))
                .map_err(|e| e.to_string())?;
            // The monitor uses tuple_id for audit attribution; align it
            // with the server-assigned id.
            self.inner
                .sessions
                .with_session(id, |session| session.tuple_id = id as usize)
                .map_err(|e| e.to_string())?;
            self.journal(&JournalEvent::SessionCreated {
                session: id,
                values: values.to_vec(),
            });
            Ok(id)
        })?;
        self.inner.metrics.session_created();
        self.session_view(id, None)
    }

    fn with_monitor_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&DataMonitor<'_>, &mut MonitorSession) -> R,
    ) -> Result<R, String> {
        let engine = self.engine();
        let monitor = self.monitor_for(&engine);
        self.inner
            .sessions
            .with_session(id, |session| f(&monitor, session))
            .map_err(|e: SessionError| e.to_string())
    }

    /// The common session snapshot, with optional fixpoint-report extras.
    fn session_view(&self, id: u64, report: Option<FixpointReport>) -> Result<Json, String> {
        let schema = self.input_schema().clone();
        self.with_monitor_session(id, |monitor, session| {
            let status = monitor.status(session);
            let mut fields: Vec<(&'static str, Json)> = vec![
                ("ok", Json::Bool(true)),
                ("session", Json::Num(id as f64)),
                (
                    "status",
                    Json::str(match &status {
                        SessionStatus::AwaitingUser { .. } => "awaiting_user",
                        SessionStatus::Complete => "complete",
                        SessionStatus::Stuck { .. } => "stuck",
                    }),
                ),
                (
                    "tuple",
                    Json::Arr(
                        session
                            .tuple
                            .values()
                            .iter()
                            .map(Json::from_value)
                            .collect(),
                    ),
                ),
                ("rounds", Json::Num(session.rounds as f64)),
                (
                    "validated",
                    Json::Arr(
                        session
                            .validated
                            .iter()
                            .map(|a| Json::str(schema.attr_name(a)))
                            .collect(),
                    ),
                ),
            ];
            match status {
                SessionStatus::AwaitingUser { suggestion } => fields.push((
                    "suggestion",
                    Json::Arr(
                        suggestion
                            .iter()
                            .map(|&a| Json::str(schema.attr_name(a)))
                            .collect(),
                    ),
                )),
                SessionStatus::Stuck { unvalidated } => fields.push((
                    "unvalidated",
                    Json::Arr(
                        unvalidated
                            .iter()
                            .map(|&a| Json::str(schema.attr_name(a)))
                            .collect(),
                    ),
                )),
                SessionStatus::Complete => {}
            }
            if let Some(report) = report {
                fields.push((
                    "fixes",
                    Json::Arr(
                        report
                            .fixes
                            .iter()
                            .map(|fix| {
                                Json::obj([
                                    ("attr", Json::str(schema.attr_name(fix.attr))),
                                    ("old", Json::from_value(&fix.old)),
                                    ("new", Json::from_value(&fix.new)),
                                    ("rule", Json::Num(fix.rule as f64)),
                                    ("master_row", Json::Num(fix.master_row as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ));
                fields.push((
                    "newly_validated",
                    Json::Arr(
                        report
                            .newly_validated
                            .iter()
                            .map(|&a| Json::str(schema.attr_name(a)))
                            .collect(),
                    ),
                ));
            }
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        })
    }

    fn session_get(&self, id: u64) -> Result<Json, String> {
        self.session_view(id, None)
    }

    fn resolve_attr(&self, name: &str) -> Result<usize, String> {
        let schema = self.input_schema();
        if let Some(id) = schema.attr_id(name) {
            return Ok(id);
        }
        // Tolerate numeric attribute ids sent as strings.
        if let Ok(id) = name.parse::<usize>() {
            if id < schema.arity() {
                return Ok(id);
            }
        }
        Err(format!(
            "unknown attribute `{name}` (schema `{}`)",
            schema.name()
        ))
    }

    fn session_validate(
        &self,
        id: u64,
        validations: &[(String, Value)],
        span: &mut Span,
    ) -> Result<Json, String> {
        let resolved: Vec<(usize, Value)> = validations
            .iter()
            .map(|(name, value)| Ok((self.resolve_attr(name)?, value.clone())))
            .collect::<Result<_, String>>()?;
        let report = self.apply_validations_resolved(id, &resolved, span)?;
        self.inner.metrics.cells_fixed(report.fixes.len() as u64);
        self.session_view(id, Some(report))
    }

    /// Apply already-resolved validations to a session — the shared core
    /// of the tree and hot `session.validate`/`session.fix` paths.
    /// Journals *before* applying, inside the session lock: a mixed
    /// batch can mutate some cells and then fail, and replay must
    /// reproduce exactly that — the event is the attempt, and the
    /// deterministic engine re-derives its outcome.
    fn apply_validations_resolved(
        &self,
        id: u64,
        resolved: &[(usize, Value)],
        span: &mut Span,
    ) -> Result<FixpointReport, String> {
        let report = self.with_gate(|| {
            let engine = self.engine();
            let monitor = self.monitor_for(&engine);
            self.inner
                .sessions
                .with_session(id, |session| {
                    // Only build the owned event when a journal exists —
                    // the memory-mode hot path stays allocation-free.
                    if self.inner.storage.is_some() {
                        self.journal(&JournalEvent::SessionValidated {
                            session: id,
                            validations: resolved
                                .iter()
                                .map(|(attr, value)| (*attr as u32, value.clone()))
                                .collect(),
                        });
                    }
                    let engine_started = Instant::now();
                    let result = monitor.apply_validation(session, resolved);
                    span.engine_ns += engine_started.elapsed().as_nanos() as u64;
                    result
                })
                .map_err(|e: SessionError| e.to_string())
        })?;
        let report = report.map_err(|e| e.to_string())?;
        span.stats += report.stats;
        Ok(report)
    }

    fn session_commit(&self, id: u64, span: &mut Span) -> Result<Json, String> {
        let (session, commit) = self.with_gate(|| -> Result<_, String> {
            let session = self.inner.sessions.remove(id).map_err(|e| e.to_string())?;
            let seq = self.journal(&JournalEvent::SessionCommitted { session: id });
            let commit = seq.and_then(|seq| self.commit_position(seq).map(|pos| (seq, pos)));
            Ok((session, commit))
        })?;
        self.inner.metrics.session_committed();
        // Commit is the protocol's durability point: wait for the group
        // fsync (outside the gate — a snapshot may proceed meanwhile),
        // then — under quorum-ack durability — for a majority of the
        // cluster to hold durable copies too.
        if let (Some(binding), Some((seq, (epoch, position)))) = (&self.inner.storage, commit) {
            let sync_started = Instant::now();
            let synced = self.sync_commit(binding, seq);
            span.fsync_ns += sync_started.elapsed().as_nanos() as u64;
            // Applied in memory and queued in the journal, but NOT
            // durable — the ack must say so (quorum-timeout precedent).
            synced?;
            if self.inner.replication.cluster > 1 {
                self.wait_for_quorum(epoch, position, span)?;
            }
        }
        let schema = self.input_schema();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("session", Json::Num(id as f64)),
            ("complete", Json::Bool(session.is_complete())),
            (
                "tuple",
                Json::Arr(
                    session
                        .tuple
                        .values()
                        .iter()
                        .map(Json::from_value)
                        .collect(),
                ),
            ),
            ("rounds", Json::Num(session.rounds as f64)),
            (
                "user_validated",
                Json::Num(session.user_validated.len() as f64),
            ),
            (
                "auto_validated",
                Json::Num(session.auto_validated.len() as f64),
            ),
            (
                "validated",
                Json::Arr(
                    session
                        .validated
                        .iter()
                        .map(|a| Json::str(schema.attr_name(a)))
                        .collect(),
                ),
            ),
        ]))
    }

    fn session_abort(&self, id: u64) -> Result<Json, String> {
        self.with_gate(|| -> Result<(), String> {
            self.inner.sessions.remove(id).map_err(|e| e.to_string())?;
            self.journal(&JournalEvent::SessionAborted { session: id });
            Ok(())
        })?;
        self.inner.metrics.session_aborted();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("session", Json::Num(id as f64)),
        ]))
    }

    /// Batch clean: each tuple gets its `trust` columns validated as-is,
    /// then the correcting process runs to its fixpoint. Tuples fan out
    /// across the worker pool; outcomes return in input order. Batch
    /// cleans are request/response (no session survives them), so they
    /// are not journaled — but their provenance does flow into the
    /// shared audit log under reserved tuple ids.
    fn clean_batch(&self, tuples: Vec<Vec<Value>>, trust: &[String]) -> Result<Json, String> {
        let schema = self.input_schema().clone();
        let trusted: Vec<usize> = trust
            .iter()
            .map(|name| self.resolve_attr(name))
            .collect::<Result<_, String>>()?;
        let n = tuples.len();
        let inner = Arc::clone(&self.inner);
        let engine = self.engine();
        let trusted = Arc::new(trusted);
        let schema_for_jobs = schema.clone();
        let audit_base = self.inner.sessions.allocate_ids(n as u64);
        let outcomes: Vec<Result<Json, String>> =
            self.inner.pool.map_ordered(tuples, move |idx, values| {
                clean_one(
                    &inner,
                    &engine,
                    &schema_for_jobs,
                    &trusted,
                    audit_base as usize + idx,
                    idx,
                    values,
                )
            });
        let mut rendered = Vec::with_capacity(n);
        let mut complete = 0u64;
        let mut cells_fixed = 0u64;
        for outcome in outcomes {
            let json = outcome?;
            if json.get("complete").and_then(Json::as_bool) == Some(true) {
                complete += 1;
            }
            cells_fixed += json.get("cells_fixed").and_then(Json::as_u64).unwrap_or(0);
            rendered.push(json);
        }
        self.inner.metrics.tuples_cleaned(n as u64);
        self.inner.metrics.cells_fixed(cells_fixed);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("count", Json::Num(n as f64)),
            ("complete", Json::Num(complete as f64)),
            ("cells_fixed", Json::Num(cells_fixed as f64)),
            ("outcomes", Json::Arr(rendered)),
        ]))
    }

    fn regions(&self, top_k: Option<usize>) -> Json {
        let top_k = top_k.unwrap_or(self.inner.config.region_top_k);
        let inner = &self.inner;
        let engine = self.engine();
        // One full search per (ruleset, master generation) serves every
        // top_k (the search retains the untruncated ranking); a master
        // append re-keys the cache, so stale regions are unservable.
        let (search, cached) = inner.cache.regions(
            engine.fingerprint,
            engine.master.generation(),
            &inner.metrics,
            || {
                // Materializing the truth universe copies every master
                // row — only pay that on a cache miss.
                let universe = universe_from_master(engine.rules.input_schema(), &engine.master);
                search_regions(
                    &engine.rules,
                    &engine.master,
                    &universe,
                    &region_options(&self.inner.config),
                )
            },
        );
        let schema = self.input_schema();
        let stats = &search.result.stats;
        Json::obj([
            ("ok", Json::Bool(true)),
            ("cached", Json::Bool(cached)),
            ("top_k", Json::Num(top_k as f64)),
            (
                "regions",
                Json::Arr(
                    search
                        .ranked()
                        .iter()
                        .take(top_k)
                        .map(|region| {
                            Json::obj([
                                (
                                    "attrs",
                                    Json::Arr(
                                        region
                                            .attrs()
                                            .iter()
                                            .map(|&a| Json::str(schema.attr_name(a)))
                                            .collect(),
                                    ),
                                ),
                                ("size", Json::Num(region.size() as f64)),
                                ("contexts", Json::Num(region.tableau().len() as f64)),
                                ("rendered", Json::str(region.render(schema))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("candidates", Json::Num(stats.candidates as f64)),
            ("closure_probes", Json::Num(stats.closure_probes as f64)),
            (
                "certification_fixpoints",
                Json::Num(stats.engine.fixpoint_runs as f64),
            ),
            ("recertified", Json::Num(stats.recertified as f64)),
            (
                "master_generation",
                Json::Num(search.master_generation() as f64),
            ),
        ])
    }

    fn check(&self, mode: Option<&str>) -> Result<Json, String> {
        let (mode, options) = match mode.unwrap_or("strict") {
            "strict" => ("strict", ConsistencyOptions::default()),
            "entity-coherent" => ("entity-coherent", ConsistencyOptions::entity_coherent()),
            other => return Err(format!("unknown mode `{other}` (strict | entity-coherent)")),
        };
        let inner = &self.inner;
        let engine = self.engine();
        let (report, cached) = inner.cache.consistency(
            engine.fingerprint,
            engine.master.generation(),
            mode,
            &inner.metrics,
            || check_consistency(&engine.rules, &engine.master, &options),
        );
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("cached", Json::Bool(cached)),
            ("mode", Json::str(mode)),
            ("consistent", Json::Bool(report.is_consistent())),
            ("conflicts", Json::Num(report.conflicts.len() as f64)),
            ("ambiguities", Json::Num(report.ambiguities.len() as f64)),
            ("budget_exhausted", Json::Bool(report.budget_exhausted)),
        ]))
    }

    /// Ranged read over the provenance stream: `start` is a global
    /// append index; records below the in-memory window come from the
    /// disk spill. Clients page by advancing `start` past the returned
    /// records (`next` field).
    fn audit_read(&self, start: u64, count: Option<u64>) -> Json {
        let count = count.unwrap_or(AUDIT_READ_DEFAULT).min(AUDIT_READ_MAX);
        let audit = &self.inner.audit;
        let records = audit.read_range(start as usize, count as usize);
        let schema = self.input_schema();
        let rendered: Vec<Json> = records
            .iter()
            .enumerate()
            .map(|(offset, record)| render_audit_record(start + offset as u64, record, schema))
            .collect();
        let next = start + rendered.len() as u64;
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("start", Json::Num(start as f64)),
            ("count", Json::Num(rendered.len() as f64)),
            ("next", Json::Num(next as f64)),
            ("total", Json::Num(audit.len() as f64)),
            ("spilled", Json::Num(audit.spilled() as f64)),
        ];
        // A failing spill means records this read serves from the disk
        // archive may be missing: a short page must not read as "end of
        // history", so the response says the archive is truncated.
        if let Some(binding) = &self.inner.storage {
            if let Some(err) = binding.storage.spill().last_error() {
                fields.push(("truncated", Json::Bool(true)));
                fields.push((
                    "warning",
                    Json::str(format!(
                        "audit archive may be incomplete: spill writes failing ({err})"
                    )),
                ));
            }
        }
        fields.push(("records", Json::Arr(rendered)));
        Json::obj(fields)
    }

    /// `scrub`: verify every checksum in the data directory online.
    /// Only the durable prefix of the append-only files is read, so
    /// in-flight writes are never misdiagnosed as damage. Corruption
    /// findings are logged and counted, and reported as typed
    /// `{file, offset, detail}` entries — torn tails stay legal.
    fn scrub_response(&self) -> Result<Json, String> {
        let Some(binding) = &self.inner.storage else {
            return Err("scrub requires a journaled server (--data-dir)".into());
        };
        let report = binding
            .storage
            .scrub()
            .map_err(|e| format!("scrub failed to read the data directory: {e}"))?;
        self.inner
            .metrics
            .scrub_run(report.corruptions.len() as u64);
        if !report.clean() {
            self.inner.diag.error(
                Subsystem::Journal,
                format_args!(
                    "scrub found {} corrupt region(s): {}",
                    report.corruptions.len(),
                    report
                        .corruptions
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ),
            );
        }
        let corruptions: Vec<Json> = report
            .corruptions
            .iter()
            .map(|c| {
                Json::obj([
                    ("file", Json::str(c.file.clone())),
                    ("offset", Json::Num(c.offset as f64)),
                    ("detail", Json::str(c.detail.clone())),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("clean", Json::Bool(report.clean())),
            ("journal_frames", Json::Num(report.journal_frames as f64)),
            (
                "journal_torn_bytes",
                Json::Num(report.journal_torn_bytes as f64),
            ),
            ("snapshot_present", Json::Bool(report.snapshot_present)),
            ("audit_records", Json::Num(report.audit_records as f64)),
            (
                "audit_torn_bytes",
                Json::Num(report.audit_torn_bytes as f64),
            ),
            ("corruptions", Json::Arr(corruptions)),
        ]))
    }

    /// Parse, compile and atomically install a new rule set. The swap
    /// and its journal event happen under the storage write gate, so
    /// every journaled session event is on the correct side of the
    /// reload during replay.
    fn rules_reload(&self, dsl: &str) -> Result<Json, String> {
        // Serialize against other engine swaps (a concurrent
        // master.append must not be overwritten by a state compiled over
        // the old master), then parse + compile outside the storage gate:
        // this is the expensive part (plan compilation, optional region
        // pre-computation).
        let _swap = self
            .inner
            .swap_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let engine = self.compile_engine_from_dsl(dsl)?;
        let (rules_len, fingerprint, regions_len) =
            (engine.rules.len(), engine.fingerprint, engine.regions.len());
        let seq = match &self.inner.storage {
            Some(binding) => {
                let gate = binding.gate.write().unwrap_or_else(|e| e.into_inner());
                *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = engine;
                let seq = binding.storage.append(&JournalEvent::RulesReloaded {
                    dsl: dsl.to_string(),
                    fingerprint,
                });
                drop(gate);
                Some(seq)
            }
            None => {
                *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = engine;
                None
            }
        };
        if let (Some(binding), Some(seq)) = (&self.inner.storage, seq) {
            self.sync_commit(binding, seq)?; // a reload ack must survive restart
        }
        self.inner.metrics.rules_reload();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("rules", Json::Num(rules_len as f64)),
            ("ruleset", Json::str(format!("{fingerprint:016x}"))),
            ("regions", Json::Num(regions_len as f64)),
        ]))
    }

    /// Append rows to the master repository: copy-on-append, recompile
    /// against the new generation, patch cached regions by delta
    /// re-certification, swap atomically, journal. Serialized with other
    /// engine swaps; in-flight requests keep the consistent old state.
    fn master_append(&self, tuples: &[Vec<Value>]) -> Result<Json, String> {
        if tuples.is_empty() {
            return Err("`tuples` must contain at least one row".into());
        }
        let swap = self
            .inner
            .swap_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let engine = self.engine();
        let (next, appended, recertified) =
            append_engine_master(&engine, tuples.to_vec(), &self.inner)?;
        let (master_rows, generation) = (next.master.len(), next.master.generation());
        let seq = match &self.inner.storage {
            Some(binding) => {
                let gate = binding.gate.write().unwrap_or_else(|e| e.into_inner());
                *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = next;
                let seq = binding.storage.append(&JournalEvent::MasterAppended {
                    rows: tuples.to_vec(),
                });
                // Still under the gate: a concurrent snapshot must see the
                // rows (it truncates the journal epoch holding the event —
                // extending afterwards would let a crash drop acked rows).
                self.inner
                    .master_appended
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(tuples.iter().cloned());
                drop(gate);
                Some(seq)
            }
            None => {
                *self.inner.engine.write().unwrap_or_else(|e| e.into_inner()) = next;
                self.inner
                    .master_appended
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(tuples.iter().cloned());
                None
            }
        };
        // Prior-generation analyses are unreachable once the swap lands
        // (the cache key embeds the generation): retire them so periodic
        // appends cannot grow the cache without bound.
        self.inner
            .cache
            .retire_generations(engine.fingerprint, generation);
        drop(swap);
        if let (Some(binding), Some(seq)) = (&self.inner.storage, seq) {
            self.sync_commit(binding, seq)?; // an append ack must survive restart
        }
        self.inner.metrics.master_append();
        if let Some(n) = recertified {
            self.inner.metrics.regions_recertified(n);
            self.inner.metrics.regions_cache_patched();
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("appended", Json::Num(appended as f64)),
            ("master_rows", Json::Num(master_rows as f64)),
            ("generation", Json::Num(generation as f64)),
            ("regions_patched", Json::Bool(recertified.is_some())),
            (
                "regions_recertified",
                Json::Num(recertified.unwrap_or(0) as f64),
            ),
        ]))
    }

    fn metrics_response(&self) -> Json {
        let snapshot = self.metrics();
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
            ("uptime_secs", Json::Num(snapshot.uptime_secs as f64)),
            ("requests", Json::Num(snapshot.requests as f64)),
            ("errors", Json::Num(snapshot.errors as f64)),
            (
                "sessions_created",
                Json::Num(snapshot.sessions_created as f64),
            ),
            (
                "sessions_committed",
                Json::Num(snapshot.sessions_committed as f64),
            ),
            (
                "sessions_aborted",
                Json::Num(snapshot.sessions_aborted as f64),
            ),
            (
                "sessions_evicted",
                Json::Num(snapshot.sessions_evicted as f64),
            ),
            (
                "sessions_recovered",
                Json::Num(snapshot.sessions_recovered as f64),
            ),
            ("live_sessions", Json::Num(self.live_sessions() as f64)),
            ("tuples_cleaned", Json::Num(snapshot.tuples_cleaned as f64)),
            ("cells_fixed", Json::Num(snapshot.cells_fixed as f64)),
            ("cache_hits", Json::Num(snapshot.cache_hits as f64)),
            ("cache_misses", Json::Num(snapshot.cache_misses as f64)),
            (
                "connections_open",
                Json::Num(snapshot.connections_open as f64),
            ),
            (
                "connections_total",
                Json::Num(snapshot.connections_total as f64),
            ),
            ("bytes_in", Json::Num(snapshot.bytes_in as f64)),
            ("bytes_out", Json::Num(snapshot.bytes_out as f64)),
            (
                "requests_shed_overload",
                Json::Num(snapshot.requests_shed_overload as f64),
            ),
            (
                "requests_shed_deadline",
                Json::Num(snapshot.requests_shed_deadline as f64),
            ),
            (
                "sessions_refused_draining",
                Json::Num(snapshot.sessions_refused_draining as f64),
            ),
            ("drains_started", Json::Num(snapshot.drains_started as f64)),
            (
                "connections_refused",
                Json::Num(snapshot.connections_refused as f64),
            ),
            ("shed_level", Json::Num(self.inner.shedder.level() as f64)),
            ("draining", Json::Bool(self.is_draining())),
            ("workers", Json::Num(self.workers() as f64)),
            ("audit_records", Json::Num(self.inner.audit.len() as f64)),
            (
                "audit_spilled_records",
                Json::Num(snapshot.audit_spilled_records as f64),
            ),
            ("rules_reloaded", Json::Num(snapshot.rules_reloaded as f64)),
            ("master_appends", Json::Num(snapshot.master_appends as f64)),
            (
                "regions_recertified",
                Json::Num(snapshot.regions_recertified as f64),
            ),
            (
                "regions_cache_patched",
                Json::Num(snapshot.regions_cache_patched as f64),
            ),
            (
                "storage",
                Json::str(if self.is_journaled() {
                    "journaled"
                } else {
                    "memory"
                }),
            ),
        ];
        if let Some(binding) = &self.inner.storage {
            fields.extend([
                ("journal_bytes", Json::Num(snapshot.journal_bytes as f64)),
                ("journal_events", Json::Num(snapshot.journal_events as f64)),
                ("journal_epoch", Json::Num(binding.storage.epoch() as f64)),
                (
                    "snapshots_written",
                    Json::Num(snapshot.snapshots_written as f64),
                ),
                ("degraded", Json::Bool(self.is_degraded())),
                (
                    "journal_poisoned",
                    Json::Bool(binding.storage.journal().poisoned().is_some()),
                ),
                (
                    "audit_spill_errors",
                    Json::Num(binding.storage.spill().write_errors() as f64),
                ),
                ("scrubs_run", Json::Num(snapshot.scrubs_run as f64)),
                (
                    "scrub_corruptions",
                    Json::Num(snapshot.scrub_corruptions as f64),
                ),
            ]);
        }
        let repl = &self.inner.replication;
        let role = self.role();
        fields.push(("role", Json::str(role.name())));
        if let Role::Follower { primary } = &role {
            fields.push(("primary", Json::str(primary.clone())));
        }
        fields.push(("cluster_size", Json::Num(repl.cluster as f64)));
        fields.push(("quorum", Json::Num(repl.quorum() as f64)));
        fields.push((
            "replication_events_served",
            Json::Num(snapshot.replication_events_served as f64),
        ));
        fields.push((
            "quorum_timeouts",
            Json::Num(snapshot.quorum_timeouts as f64),
        ));
        // Per-follower lag, as the primary sees it: cursor coordinates
        // from the last sync, events not yet acked, and how long the
        // follower has been behind (0 while caught up).
        {
            let followers = lock_followers(repl);
            if !followers.is_empty() {
                let (cur_epoch, cur_durable) = self.durable_cursor().unwrap_or((0, 0));
                fields.push((
                    "replication",
                    Json::Obj(
                        followers
                            .iter()
                            .map(|(name, f)| {
                                let current = f.epoch > cur_epoch
                                    || (f.epoch == cur_epoch && f.offset >= cur_durable);
                                let lag_events = match f.epoch.cmp(&cur_epoch) {
                                    std::cmp::Ordering::Greater => 0,
                                    std::cmp::Ordering::Equal => {
                                        cur_durable.saturating_sub(f.offset)
                                    }
                                    std::cmp::Ordering::Less => cur_durable,
                                };
                                let lag_seconds = if current {
                                    0.0
                                } else {
                                    f.caught_up_at.elapsed().as_secs_f64()
                                };
                                (
                                    name.clone(),
                                    Json::obj([
                                        ("epoch", Json::Num(f.epoch as f64)),
                                        ("offset", Json::Num(f.offset as f64)),
                                        ("lag_events", Json::Num(lag_events as f64)),
                                        ("lag_seconds", Json::Num(lag_seconds)),
                                        (
                                            "last_seen_secs",
                                            Json::Num(f.last_seen.elapsed().as_secs_f64()),
                                        ),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ));
            }
        }
        // Per-op service-latency summaries (ops with traffic only): how
        // long requests spend in the service, transport excluded.
        if !snapshot.latency.is_empty() {
            fields.push((
                "latency",
                Json::Obj(
                    snapshot
                        .latency
                        .iter()
                        .map(|l| {
                            (
                                l.op.to_string(),
                                Json::obj([
                                    ("count", Json::Num(l.count as f64)),
                                    ("p50_us", Json::Num(l.p50_ns as f64 / 1000.0)),
                                    ("p99_us", Json::Num(l.p99_ns as f64 / 1000.0)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ));
        }
        // Search diagnostics of the active engine's region state, so
        // operators can watch the incremental data phase (and delta
        // re-certification after master appends) doing less work.
        let engine = self.engine();
        if let Some(search) = &engine.search {
            let stats = &search.result.stats;
            fields.push((
                "region_search",
                Json::obj([
                    ("contexts", Json::Num(stats.contexts as f64)),
                    ("candidates", Json::Num(stats.candidates as f64)),
                    ("truth_profiles", Json::Num(stats.truth_profiles as f64)),
                    ("closure_probes", Json::Num(stats.closure_probes as f64)),
                    ("lattice_hits", Json::Num(stats.lattice_hits as f64)),
                    (
                        "certification_fixpoints",
                        Json::Num(stats.engine.fixpoint_runs as f64),
                    ),
                    ("recertified", Json::Num(stats.recertified as f64)),
                    (
                        "candidates_reused",
                        Json::Num(stats.candidates_reused as f64),
                    ),
                    (
                        "master_generation",
                        Json::Num(search.master_generation() as f64),
                    ),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// `metrics.prom`: the full Prometheus text exposition (every
    /// histogram bucket, not just p50/p99), shipped inside a one-line
    /// JSON envelope so it rides the wire protocol — operators (or a
    /// scrape sidecar) unwrap `body` and serve it over HTTP.
    fn metrics_prom_response(&self) -> Json {
        self.refresh_storage_gauges();
        let mut body = String::with_capacity(16 * 1024);
        self.inner.metrics.render_prom(&mut body);
        prom_header(
            &mut body,
            "cerfix_build_info",
            "Build metadata (value is always 1).",
            "gauge",
        );
        prom_sample(
            &mut body,
            "cerfix_build_info",
            Some(("version", env!("CARGO_PKG_VERSION"))),
            1.0,
        );
        prom_metric(
            &mut body,
            "cerfix_protocol_version",
            "Wire protocol version this server speaks.",
            "gauge",
            PROTOCOL_VERSION as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_sessions_live",
            "Interactive sessions currently live.",
            "gauge",
            self.live_sessions() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_workers",
            "Worker threads in the batch pool.",
            "gauge",
            self.workers() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_worker_queue_depth",
            "Jobs waiting in the worker-pool queue right now.",
            "gauge",
            self.inner.pool.queue_depth() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_shed_level",
            "Admission shed level: 0 admit all, 1 shed heavy reads, 2 shed sessions too.",
            "gauge",
            self.inner.shedder.level() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_shed_watermark",
            "Worker-queue depth at which the shedder enters level 1.",
            "gauge",
            self.inner.shedder.high() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_draining",
            "1 while a graceful drain is in progress.",
            "gauge",
            if self.is_draining() { 1.0 } else { 0.0 },
        );
        prom_metric(
            &mut body,
            "cerfix_audit_records",
            "Audit records reachable (memory window + spill).",
            "gauge",
            self.inner.audit.len() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_trace_spans_recorded_total",
            "Request spans published into the trace ring.",
            "counter",
            self.inner.trace.ring().recorded() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_trace_slow_spans_total",
            "Spans that crossed the slow-request threshold.",
            "counter",
            self.inner.trace.slow().recorded() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_diag_events_emitted_total",
            "Diagnostic events admitted into the structured log.",
            "counter",
            self.inner.diag.emitted() as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_diag_events_suppressed_total",
            "Diagnostic events dropped by the per-subsystem rate limiter.",
            "counter",
            self.inner.diag.suppressed() as f64,
        );
        let health = self.probe_health();
        prom_metric(
            &mut body,
            "cerfix_healthy",
            "1 when this node is ready to serve its role, else 0.",
            "gauge",
            if health.ready { 1.0 } else { 0.0 },
        );
        prom_metric(
            &mut body,
            "cerfix_live",
            "1 while the process and its journal flusher are up.",
            "gauge",
            if health.live { 1.0 } else { 0.0 },
        );
        prom_header(
            &mut body,
            "cerfix_degraded",
            "1 while the service is degraded to read-only, by cause.",
            "gauge",
        );
        prom_sample(
            &mut body,
            "cerfix_degraded",
            Some(("cause", "disk_full")),
            if self.is_degraded() { 1.0 } else { 0.0 },
        );
        prom_metric(
            &mut body,
            "cerfix_journal_poisoned",
            "1 once a journal fsync failure has permanently poisoned the writer.",
            "gauge",
            self.inner.storage.as_ref().map_or(0.0, |binding| {
                if binding.storage.journal().poisoned().is_some() {
                    1.0
                } else {
                    0.0
                }
            }),
        );
        let role = self.role();
        prom_header(
            &mut body,
            "cerfix_role",
            "Replication role of this node (1 for the labelled role).",
            "gauge",
        );
        prom_sample(&mut body, "cerfix_role", Some(("role", role.name())), 1.0);
        prom_metric(
            &mut body,
            "cerfix_cluster_size",
            "Configured replication cluster size N.",
            "gauge",
            self.inner.replication.cluster as f64,
        );
        prom_metric(
            &mut body,
            "cerfix_replication_quorum",
            "Durable copies a quorum-ack commit waits for.",
            "gauge",
            self.inner.replication.quorum() as f64,
        );
        {
            let followers = lock_followers(&self.inner.replication);
            if !followers.is_empty() {
                let (cur_epoch, cur_durable) = self.durable_cursor().unwrap_or((0, 0));
                prom_header(
                    &mut body,
                    "cerfix_replication_lag_seconds",
                    "Seconds since this follower last covered everything durable here.",
                    "gauge",
                );
                for (name, f) in followers.iter() {
                    let current =
                        f.epoch > cur_epoch || (f.epoch == cur_epoch && f.offset >= cur_durable);
                    let lag = if current {
                        0.0
                    } else {
                        f.caught_up_at.elapsed().as_secs_f64()
                    };
                    prom_sample(
                        &mut body,
                        "cerfix_replication_lag_seconds",
                        Some(("follower", name)),
                        lag,
                    );
                }
                prom_header(
                    &mut body,
                    "cerfix_replication_lag_events",
                    "Durable journal events this follower has not acknowledged.",
                    "gauge",
                );
                for (name, f) in followers.iter() {
                    let lag_events = match f.epoch.cmp(&cur_epoch) {
                        std::cmp::Ordering::Greater => 0,
                        std::cmp::Ordering::Equal => cur_durable.saturating_sub(f.offset),
                        std::cmp::Ordering::Less => cur_durable,
                    };
                    prom_sample(
                        &mut body,
                        "cerfix_replication_lag_events",
                        Some(("follower", name)),
                        lag_events as f64,
                    );
                }
            }
        }
        if let Some(binding) = &self.inner.storage {
            prom_metric(
                &mut body,
                "cerfix_journal_epoch",
                "Journal truncation epoch (bumps on snapshot).",
                "gauge",
                binding.storage.epoch() as f64,
            );
            let profile = binding.storage.journal().flush_profile();
            let fsync: Vec<(f64, u64)> = profile
                .fsync_ns_buckets
                .iter()
                .map(|&(upper, count)| (upper as f64 * 1e-9, count))
                .collect();
            prom_histogram_from_buckets(
                &mut body,
                "cerfix_journal_fsync_duration_seconds",
                "Group-commit write+fsync latency per flush cycle.",
                &fsync,
                profile.fsync_ns_total as f64 * 1e-9,
            );
            let batch: Vec<(f64, u64)> = profile
                .batch_events_buckets
                .iter()
                .map(|&(upper, count)| (upper as f64, count))
                .collect();
            prom_histogram_from_buckets(
                &mut body,
                "cerfix_journal_flush_batch_events",
                "Events retired per group-commit flush (batch size).",
                &batch,
                profile.batch_events_total as f64,
            );
        }
        Json::obj([
            ("ok", Json::Bool(true)),
            ("content_type", Json::str("text/plain; version=0.0.4")),
            ("body", Json::Str(body)),
        ])
    }

    /// `trace.read`: decode the most recent request spans (newest
    /// first) plus the slow-request ring for operators.
    fn trace_read(&self, limit: Option<u64>) -> Json {
        let sink = &self.inner.trace;
        let limit = limit.unwrap_or(64).min(4096) as usize;
        let spans = sink.ring().read_recent(limit);
        let slow = sink.slow().read_recent(limit.min(64));
        Json::obj([
            ("ok", Json::Bool(true)),
            ("enabled", Json::Bool(sink.enabled())),
            ("slow_ms", Json::Num((sink.slow_ns() / 1_000_000) as f64)),
            ("recorded", Json::Num(sink.ring().recorded() as f64)),
            ("spans", Json::Arr(spans.iter().map(span_json).collect())),
            ("slow", Json::Arr(slow.iter().map(span_json).collect())),
        ])
    }

    /// `health`: liveness/readiness verdict with the reasons spelled
    /// out. Probing also logs ready/not-ready transitions.
    fn health_response(&self) -> Json {
        let report = self.probe_health();
        let role = self.role();
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("role", Json::str(role.name())),
            ("live", Json::Bool(report.live)),
            ("ready", Json::Bool(report.ready)),
            ("degraded", Json::Bool(self.is_degraded())),
            (
                "causes",
                Json::Arr(report.causes.iter().map(Json::str).collect()),
            ),
        ];
        if let Some(binding) = &self.inner.storage {
            fields.push(("epoch", Json::Num(binding.storage.epoch() as f64)));
        }
        if let Role::Follower { primary } = &role {
            fields.push(("primary", Json::str(primary.clone())));
            fields.push(("lag_seconds", Json::Num(report.lag_seconds)));
            fields.push((
                "max_lag_seconds",
                Json::Num(self.inner.config.max_lag.as_secs_f64()),
            ));
        }
        Json::obj(fields)
    }

    /// `log.read`: the most recent diagnostic events (newest first),
    /// optionally filtered by minimum level and subsystem.
    fn log_read(
        &self,
        limit: Option<u64>,
        level: Option<&str>,
        subsystem: Option<&str>,
    ) -> Result<Json, String> {
        let min_level = match level {
            Some(name) => Level::parse(name)
                .ok_or_else(|| format!("unknown level `{name}` (debug | info | warn | error)"))?,
            None => Level::Debug,
        };
        let subsystem = match subsystem {
            Some(name) => Some(Subsystem::parse(name).ok_or_else(|| {
                format!(
                    "unknown subsystem `{name}` \
                     (server | net | journal | replication | health | config | admission)"
                )
            })?),
            None => None,
        };
        let limit = limit.unwrap_or(64).min(4096) as usize;
        let sink = &self.inner.diag;
        let ring = sink.ring();
        let events = ring.read_recent(limit, min_level, subsystem);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("enabled", Json::Bool(ring.enabled())),
            ("recorded", Json::Num(ring.recorded() as f64)),
            ("emitted", Json::Num(sink.emitted() as f64)),
            ("suppressed", Json::Num(sink.suppressed() as f64)),
            (
                "events",
                Json::Arr(
                    events
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("seq", Json::Num(e.seq as f64)),
                                ("unix_ms", Json::Num(e.unix_ms as f64)),
                                ("level", Json::str(e.level.as_str())),
                                ("subsystem", Json::str(e.subsystem.as_str())),
                                ("message", Json::str(e.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]))
    }

    /// `metrics.history`: the retained time-series window, oldest
    /// sample first — consumers diff consecutive samples into rates.
    fn metrics_history(&self, limit: Option<u64>) -> Json {
        let limit = limit.unwrap_or(120).min(600) as usize;
        let samples = self.inner.timeseries.history(limit);
        Json::obj([
            ("ok", Json::Bool(true)),
            ("retained", Json::Num(self.inner.timeseries.len() as f64)),
            (
                "samples",
                Json::Arr(samples.iter().map(sample_json).collect()),
            ),
        ])
    }

    /// `cluster.status`: this node's status document plus — unless the
    /// request says `fanout: false` — one per known peer, fetched with
    /// a short non-retrying dial so one dead peer cannot stall the
    /// answer. A primary fans out to its follower registry. A follower
    /// asks its primary, whose document lists every follower the
    /// primary has seen, then dials its siblings from that list — so
    /// one request to *any* member reaches the whole group. Peers are
    /// always asked with `fanout: false`, so the fan-out never recurses.
    fn cluster_status(&self, fanout: bool) -> Json {
        let repl = &self.inner.replication;
        let mut nodes = vec![self.node_status()];
        if fanout {
            match self.role() {
                Role::Primary => {
                    for peer in self.peer_addrs() {
                        nodes.push(self.peer_status(&peer));
                    }
                }
                Role::Follower { primary } => {
                    let primary_doc = self.peer_status(&primary);
                    let me = self.inner.config.advertise.as_deref();
                    let mut siblings: Vec<String> = match primary_doc.get("followers") {
                        Some(Json::Obj(entries)) => entries
                            .iter()
                            .map(|(name, _)| name.clone())
                            .filter(|name| Some(name.as_str()) != me)
                            .collect(),
                        _ => Vec::new(),
                    };
                    siblings.sort();
                    nodes.push(primary_doc);
                    for sibling in siblings {
                        nodes.push(self.peer_status(&sibling));
                    }
                }
            }
        }
        Json::obj([
            ("ok", Json::Bool(true)),
            ("cluster_size", Json::Num(repl.cluster as f64)),
            ("quorum", Json::Num(repl.quorum() as f64)),
            ("nodes", Json::Arr(nodes)),
        ])
    }

    /// A primary's peers: every follower that ever synced, keyed by the
    /// address it advertised.
    fn peer_addrs(&self) -> Vec<String> {
        let followers = lock_followers(&self.inner.replication);
        let mut addrs: Vec<String> = followers.keys().cloned().collect();
        addrs.sort();
        addrs
    }

    /// This node's own `cluster.status` document.
    fn node_status(&self) -> Json {
        let report = self.probe_health();
        let role = self.role();
        let snapshot = self.metrics();
        let rate = self.inner.timeseries.request_rate(&snapshot);
        let epoch = self
            .inner
            .storage
            .as_ref()
            .map_or(0, |binding| binding.storage.epoch());
        let mut fields = vec![
            (
                "addr",
                Json::str(
                    self.inner
                        .config
                        .advertise
                        .clone()
                        .unwrap_or_else(|| "local".into()),
                ),
            ),
            ("ok", Json::Bool(true)),
            ("role", Json::str(role.name())),
            ("epoch", Json::Num(epoch as f64)),
            ("live", Json::Bool(report.live)),
            ("ready", Json::Bool(report.ready)),
            ("degraded", Json::Bool(self.is_degraded())),
            (
                "causes",
                Json::Arr(report.causes.iter().map(Json::str).collect()),
            ),
            ("lag_seconds", Json::Num(report.lag_seconds)),
            ("requests", Json::Num(snapshot.requests as f64)),
            ("req_per_sec", Json::Num(rate)),
            ("sessions", Json::Num(self.live_sessions() as f64)),
        ];
        if let Role::Follower { primary } = &role {
            fields.push(("primary", Json::str(primary.clone())));
        }
        if matches!(role, Role::Primary) {
            let followers = lock_followers(&self.inner.replication);
            if !followers.is_empty() {
                let (cur_epoch, cur_durable) = self.durable_cursor().unwrap_or((0, 0));
                fields.push((
                    "followers",
                    Json::Obj(
                        followers
                            .iter()
                            .map(|(name, f)| {
                                let current = f.epoch > cur_epoch
                                    || (f.epoch == cur_epoch && f.offset >= cur_durable);
                                let lag_events = match f.epoch.cmp(&cur_epoch) {
                                    std::cmp::Ordering::Greater => 0,
                                    std::cmp::Ordering::Equal => {
                                        cur_durable.saturating_sub(f.offset)
                                    }
                                    std::cmp::Ordering::Less => cur_durable,
                                };
                                let lag_seconds = if current {
                                    0.0
                                } else {
                                    f.caught_up_at.elapsed().as_secs_f64()
                                };
                                (
                                    name.clone(),
                                    Json::obj([
                                        ("epoch", Json::Num(f.epoch as f64)),
                                        ("offset", Json::Num(f.offset as f64)),
                                        ("lag_events", Json::Num(lag_events as f64)),
                                        ("lag_seconds", Json::Num(lag_seconds)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ));
            }
        }
        Json::obj(fields)
    }

    /// Fetch one peer's self-view for the fan-out; an unreachable peer
    /// becomes an `ok: false` document instead of an error.
    fn peer_status(&self, addr: &str) -> Json {
        let fetch = || -> Result<Json, String> {
            let policy = RetryPolicy {
                retries: 0,
                request_timeout: Some(Duration::from_millis(
                    self.inner.peer_timeout_ms.load(Ordering::Relaxed).max(1),
                )),
                ..RetryPolicy::default()
            };
            let mut client = Client::connect_with(addr, policy).map_err(|e| e.to_string())?;
            let response = client
                .request(&Request::ClusterStatus { fanout: false })
                .map_err(|e| e.to_string())?;
            response
                .get("nodes")
                .and_then(Json::as_arr)
                .and_then(|nodes| nodes.first())
                .cloned()
                .ok_or_else(|| "malformed cluster.status reply".to_string())
        };
        match fetch() {
            Ok(mut doc) => {
                // The registry key we dialed is authoritative for the
                // address column (a peer without `--advertise` reports
                // the "local" placeholder).
                if let Json::Obj(fields) = &mut doc {
                    for (key, value) in fields.iter_mut() {
                        if key == "addr" {
                            *value = Json::str(addr);
                        }
                    }
                }
                doc
            }
            Err(error) => Json::obj([
                ("addr", Json::str(addr)),
                ("ok", Json::Bool(false)),
                ("error", Json::Str(error)),
            ]),
        }
    }

    /// `config.set`: apply a runtime tunable and journal it, so the
    /// setting survives restart and propagates to followers through
    /// the replication stream.
    fn config_set(&self, key: &str, value: u64) -> Result<Json, String> {
        let seq = self.with_gate(|| -> Result<Option<u64>, String> {
            self.apply_config_set(key, value)?;
            Ok(self.journal(&JournalEvent::ConfigSet {
                key: key.to_string(),
                value,
            }))
        })?;
        if let (Some(binding), Some(seq)) = (&self.inner.storage, seq) {
            self.sync_commit(binding, seq)?; // an acked tunable must survive restart
        }
        self.inner
            .diag
            .info(Subsystem::Config, format_args!("{key} set to {value}"));
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("key", Json::str(key)),
            ("value", Json::Num(value as f64)),
        ]))
    }

    /// Apply one runtime tunable — the shared core of the live
    /// `config.set` op and journal replay (boot recovery, follower
    /// tail).
    fn apply_config_set(&self, key: &str, value: u64) -> Result<(), String> {
        match key {
            "slow_ms" => self
                .inner
                .trace
                .set_slow_ns(value.saturating_mul(1_000_000)),
            // Resizing discards the ring's contents, so a replayed or
            // repeated set of the current size must be a no-op.
            "trace_buffer" => {
                if self.inner.trace.capacity() != value as usize {
                    self.inner.trace.resize(value as usize);
                }
            }
            "diag_buffer" => {
                if self.inner.diag.capacity() != value as usize {
                    self.inner.diag.resize(value as usize);
                }
            }
            // Clamped to >= 1ms: a zero dial timeout would mark every
            // peer permanently down.
            "peer_timeout_ms" => self
                .inner
                .peer_timeout_ms
                .store(value.max(1), Ordering::Relaxed),
            other => {
                return Err(format!(
                    "unknown config key `{other}` \
                     (slow_ms | trace_buffer | diag_buffer | peer_timeout_ms)"
                ))
            }
        }
        Ok(())
    }
}

/// One health evaluation: alive, ready, and the reasons it is not.
pub(crate) struct HealthReport {
    /// Process and journal flusher are up.
    pub live: bool,
    /// Fit to serve its role right now.
    pub ready: bool,
    /// Human-readable reasons `ready` is false (empty when ready).
    pub causes: Vec<String>,
    /// A follower's lag behind its primary in seconds (0 on primaries).
    pub lag_seconds: f64,
}

/// 99th-percentile upper bound from `(exclusive upper bound, count)`
/// histogram buckets; 0 with no observations.
fn bucket_p99_ns(buckets: &[(u64, u64)]) -> u64 {
    let total: u64 = buckets.iter().map(|&(_, count)| count).sum();
    if total == 0 {
        return 0;
    }
    let rank = (total * 99).div_ceil(100).max(1);
    let mut cumulative = 0;
    for &(bound, count) in buckets {
        cumulative += count;
        if cumulative >= rank {
            return bound;
        }
    }
    buckets.last().map_or(0, |&(bound, _)| bound)
}

/// One time-series sample as wire JSON: the counters rate math needs,
/// plus the per-op latency summaries for rate/p99 columns.
fn sample_json(sample: &Sample) -> Json {
    let s = &sample.snapshot;
    Json::obj([
        ("unix_ms", Json::Num(sample.unix_ms as f64)),
        ("uptime_secs", Json::Num(s.uptime_secs as f64)),
        ("requests", Json::Num(s.requests as f64)),
        ("errors", Json::Num(s.errors as f64)),
        ("sessions_committed", Json::Num(s.sessions_committed as f64)),
        ("cells_fixed", Json::Num(s.cells_fixed as f64)),
        ("journal_events", Json::Num(s.journal_events as f64)),
        ("quorum_timeouts", Json::Num(s.quorum_timeouts as f64)),
        ("connections_open", Json::Num(s.connections_open as f64)),
        (
            "latency",
            Json::Obj(
                s.latency
                    .iter()
                    .map(|l| {
                        (
                            l.op.to_string(),
                            Json::obj([
                                ("count", Json::Num(l.count as f64)),
                                ("p50_us", Json::Num(l.p50_ns as f64 / 1000.0)),
                                ("p99_us", Json::Num(l.p99_ns as f64 / 1000.0)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One trace span as wire JSON. The trace id rides as a decimal string
/// so 64-bit hashed ids survive f64-only JSON consumers exactly.
fn span_json(span: &Span) -> Json {
    Json::obj([
        ("trace", Json::str(span.trace_id.to_string())),
        ("synthetic", Json::Bool(span.synthetic_id())),
        (
            "op",
            Json::str(LATENCY_OPS[span.op.min(LATENCY_OPS.len() - 1)]),
        ),
        ("total_ns", Json::Num(span.total_ns as f64)),
        ("parse_ns", Json::Num(span.parse_ns as f64)),
        ("dispatch_ns", Json::Num(span.dispatch_ns as f64)),
        ("engine_ns", Json::Num(span.engine_ns as f64)),
        ("fsync_ns", Json::Num(span.fsync_ns as f64)),
        ("quorum_ns", Json::Num(span.quorum_ns as f64)),
        ("serialize_ns", Json::Num(span.serialize_ns as f64)),
        ("queue_ns", Json::Num(span.queue_ns as f64)),
        ("fixpoint_runs", Json::Num(span.stats.fixpoint_runs as f64)),
        ("rule_attempts", Json::Num(span.stats.rule_attempts as f64)),
        (
            "master_lookups",
            Json::Num(span.stats.master_lookups as f64),
        ),
        ("index_probes", Json::Num(span.stats.index_probes as f64)),
    ])
}

/// The region-search options a service runs with: its configured top-k
/// and its worker count as the data-phase parallelism.
fn region_options(config: &ServiceConfig) -> RegionFinderOptions {
    RegionFinderOptions {
        top_k: config.region_top_k,
        threads: config.workers,
        ..Default::default()
    }
}

/// Compile the full engine state for `rules` over `master`: plan and
/// (optionally) pre-computed regions, both served from the analysis
/// cache so a reload back to a previously-seen rule set is cheap.
fn compile_engine(
    master: Arc<MasterData>,
    rules: Arc<RuleSet>,
    config: &ServiceConfig,
    cache: &AnalysisCache,
    metrics: &ServiceMetrics,
) -> Arc<EngineState> {
    master.warm_indexes(rules.iter().map(|(_, r)| r));
    let fingerprint = ruleset_fingerprint(&rules);
    let (plan, _) = cache.plan(fingerprint, master.generation(), metrics, || {
        CompiledRules::compile(&rules, &master)
    });
    let (regions, search) = if config.precompute_regions {
        let (search, _) = cache.regions(fingerprint, master.generation(), metrics, || {
            let universe = universe_from_master(rules.input_schema(), &master);
            search_regions(&rules, &master, &universe, &region_options(config))
        });
        (search.top(config.region_top_k), Some(search))
    } else {
        (Vec::new(), None)
    };
    Arc::new(EngineState {
        regions: regions.into(),
        search,
        fingerprint,
        plan,
        rules,
        master,
    })
}

/// Copy-on-append `rows` onto `engine`'s master and compile the
/// successor engine state. Cached regions for the old generation are
/// patched by delta re-certification — only candidates whose entailed
/// rules watch a touched index key (or whose context gained truths) are
/// re-probed — and the patched search is installed under the new
/// generation. Returns `(next state, rows appended, candidates
/// re-certified)`.
fn append_engine_master(
    engine: &EngineState,
    rows: Vec<Vec<Value>>,
    inner: &ServiceInner,
) -> Result<(Arc<EngineState>, usize, Option<u64>), String> {
    let master_schema = engine.rules.master_schema().clone();
    let tuples: Vec<Tuple> = rows
        .into_iter()
        .enumerate()
        .map(|(i, values)| {
            if values.len() != master_schema.arity() {
                return Err(format!(
                    "row {i} has {} values but master schema `{}` has arity {}",
                    values.len(),
                    master_schema.name(),
                    master_schema.arity()
                ));
            }
            Tuple::new(master_schema.clone(), values).map_err(|e| e.to_string())
        })
        .collect::<Result<_, String>>()?;
    let appended = tuples.len();
    let (new_master, _delta) = engine
        .master
        .append_copy(tuples)
        .map_err(|e| e.to_string())?;
    let new_master = Arc::new(new_master);
    let (plan, _) = inner.cache.plan(
        engine.fingerprint,
        new_master.generation(),
        &inner.metrics,
        || CompiledRules::compile(&engine.rules, &new_master),
    );
    // Patch the cached region search instead of discarding it: the new
    // universe extends the old one row-for-row, so the delta path
    // re-certifies only what the appended keys can have changed.
    let mut recertified = None;
    // The prior search to patch: the engine's pre-computed one, or — with
    // pre-computation off — whatever an earlier `regions` request cached
    // for the outgoing generation.
    let prior = engine.search.clone().or_else(|| {
        inner
            .cache
            .cached_regions(engine.fingerprint, engine.master.generation())
    });
    let (regions, search) = match &prior {
        Some(prior) => {
            let universe = universe_from_master(engine.rules.input_schema(), &new_master);
            let patched = recheck_regions(
                &engine.rules,
                &new_master,
                &universe,
                prior,
                &region_options(&inner.config),
            );
            recertified = Some(patched.result.stats.recertified as u64);
            let (search, _) = inner.cache.regions(
                engine.fingerprint,
                new_master.generation(),
                &inner.metrics,
                || patched,
            );
            let regions = if engine.search.is_some() {
                search.top(inner.config.region_top_k)
            } else {
                Vec::new() // pre-computation off: monitors stay region-free
            };
            (regions, engine.search.is_some().then_some(search))
        }
        None => (Vec::new(), None),
    };
    Ok((
        Arc::new(EngineState {
            rules: Arc::clone(&engine.rules),
            master: new_master,
            plan,
            regions: regions.into(),
            search,
            fingerprint: engine.fingerprint,
        }),
        appended,
        recertified,
    ))
}

/// Canonical DSL rendering of a whole rule set (journals and snapshots
/// store this; recovery re-parses it).
fn render_ruleset_dsl(rules: &RuleSet) -> String {
    let input = rules.input_schema();
    let master = rules.master_schema();
    rules
        .iter()
        .map(|(_, rule)| render_er_dsl(rule, input, master))
        .collect::<Vec<_>>()
        .join("\n")
}

fn attrset_to_ids(set: &AttrSet) -> Vec<u32> {
    set.iter().map(|a| a as u32).collect()
}

fn ids_to_attrset(ids: &[u32], arity: usize) -> Result<AttrSet, String> {
    let mut set = AttrSet::new();
    for &id in ids {
        if id as usize >= arity {
            return Err(format!("attribute id {id} out of range (arity {arity})"));
        }
        set.insert(id as usize);
    }
    Ok(set)
}

fn session_to_snapshot(id: u64, session: &MonitorSession, arity: usize) -> SessionSnapshot {
    debug_assert_eq!(session.tuple.arity(), arity);
    SessionSnapshot {
        session: id,
        tuple_id: session.tuple_id as u64,
        rounds: session.rounds as u64,
        values: session.tuple.values().to_vec(),
        validated: attrset_to_ids(&session.validated),
        user_validated: attrset_to_ids(&session.user_validated),
        auto_validated: attrset_to_ids(&session.auto_validated),
    }
}

fn snapshot_to_session(
    snapshot: &SessionSnapshot,
    schema: &SchemaRef,
) -> Result<MonitorSession, String> {
    let tuple = Tuple::new(schema.clone(), snapshot.values.clone())
        .map_err(|e| format!("snapshot session {}: {e}", snapshot.session))?;
    let arity = schema.arity();
    let mut session = MonitorSession::new(snapshot.tuple_id as usize, tuple);
    session.rounds = snapshot.rounds as usize;
    session.validated = ids_to_attrset(&snapshot.validated, arity)?;
    session.user_validated = ids_to_attrset(&snapshot.user_validated, arity)?;
    session.auto_validated = ids_to_attrset(&snapshot.auto_validated, arity)?;
    Ok(session)
}

/// Render one audit record for the `audit.read` wire response.
fn render_audit_record(index: u64, record: &AuditRecord, schema: &SchemaRef) -> Json {
    let attr = if record.attr < schema.arity() {
        Json::str(schema.attr_name(record.attr))
    } else {
        Json::Num(record.attr as f64)
    };
    let mut fields = vec![
        ("index", Json::Num(index as f64)),
        ("tuple", Json::Num(record.tuple_id as f64)),
        ("attr", attr),
        ("round", Json::Num(record.round as f64)),
    ];
    match &record.event {
        CellEvent::UserValidated { old, new } => {
            fields.push(("kind", Json::str("user_validated")));
            fields.push(("old", Json::from_value(old)));
            fields.push(("new", Json::from_value(new)));
        }
        CellEvent::RuleFixed {
            rule,
            master_row,
            old,
            new,
        } => {
            fields.push(("kind", Json::str("rule_fixed")));
            fields.push(("rule", Json::Num(*rule as f64)));
            fields.push(("master_row", Json::Num(*master_row as f64)));
            fields.push(("old", Json::from_value(old)));
            fields.push(("new", Json::from_value(new)));
        }
        CellEvent::RuleConfirmed { rule } => {
            fields.push(("kind", Json::str("rule_confirmed")));
            // `usize::MAX` marks "some rule" (the fixpoint report does
            // not retain which); render as null rather than 2^64.
            if *rule != usize::MAX {
                fields.push(("rule", Json::Num(*rule as f64)));
            } else {
                fields.push(("rule", Json::Null));
            }
        }
    }
    Json::obj(fields)
}

/// One batch-clean job, run on a pool worker.
#[allow(clippy::too_many_arguments)]
fn clean_one(
    inner: &Arc<ServiceInner>,
    engine: &Arc<EngineState>,
    schema: &SchemaRef,
    trusted: &[usize],
    audit_id: usize,
    idx: usize,
    values: Vec<Value>,
) -> Result<Json, String> {
    if values.len() != schema.arity() {
        return Err(format!(
            "tuple {idx} has {} values but schema `{}` has arity {}",
            values.len(),
            schema.name(),
            schema.arity()
        ));
    }
    let tuple = Tuple::new(schema.clone(), values).map_err(|e| e.to_string())?;
    let monitor = DataMonitor::from_plan(&engine.rules, &engine.master, Arc::clone(&engine.plan))
        .with_shared_regions(Arc::clone(&engine.regions))
        .with_audit(Arc::clone(&inner.audit));
    let mut session = monitor.start(audit_id, tuple);
    let validations: Vec<(usize, Value)> = trusted
        .iter()
        .filter_map(|&a| {
            let v = session.tuple.get(a);
            (!v.is_null()).then(|| (a, v.clone()))
        })
        .collect();
    let report = monitor
        .apply_validation(&mut session, &validations)
        .map_err(|e| e.to_string())?;
    Ok(Json::obj([
        ("index", Json::Num(idx as f64)),
        ("complete", Json::Bool(session.is_complete())),
        ("cells_fixed", Json::Num(report.fixes.len() as f64)),
        ("validated", Json::Num(session.validated.len() as f64)),
        (
            "tuple",
            Json::Arr(
                session
                    .tuple
                    .values()
                    .iter()
                    .map(Json::from_value)
                    .collect(),
            ),
        ),
    ]))
}

/// Master rows reinterpreted over the input schema (by attribute name) —
/// the truth universe for region certification, mirroring the CLI.
pub(crate) fn universe_from_master(input: &SchemaRef, master: &MasterData) -> Vec<Tuple> {
    let mapping: Vec<Option<usize>> = input
        .attributes()
        .iter()
        .map(|a| master.schema().attr_id(a.name()))
        .collect();
    master
        .relation()
        .iter()
        .map(|(_, s)| {
            let values: Vec<Value> = mapping
                .iter()
                .map(|m| m.map(|id| s.get(id).clone()).unwrap_or(Value::Null))
                .collect();
            Tuple::new(input.clone(), values).expect("string schema accepts all values")
        })
        .collect()
}
