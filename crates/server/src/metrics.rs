//! Service counters, exported over the `metrics` protocol op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters for one [`CleaningService`](crate::CleaningService).
///
/// All counters are relaxed atomics — they are operational telemetry, not
/// synchronization. `snapshot` reads may tear across counters under
/// concurrent load; each individual counter is always exact.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    sessions_created: AtomicU64,
    sessions_committed: AtomicU64,
    sessions_aborted: AtomicU64,
    sessions_evicted: AtomicU64,
    tuples_cleaned: AtomicU64,
    cells_fixed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Seconds since service start.
    pub uptime_secs: u64,
    /// Protocol requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Sessions created.
    pub sessions_created: u64,
    /// Sessions committed (reached `session.commit`).
    pub sessions_committed: u64,
    /// Sessions aborted by the client.
    pub sessions_aborted: u64,
    /// Sessions reaped by idle eviction.
    pub sessions_evicted: u64,
    /// Tuples processed through the batch `clean` op.
    pub tuples_cleaned: u64,
    /// Cells changed by rules across all ops.
    pub cells_fixed: u64,
    /// Region/consistency cache hits.
    pub cache_hits: u64,
    /// Region/consistency cache misses (computations performed).
    pub cache_misses: u64,
}

impl ServiceMetrics {
    /// Fresh counters, uptime starting now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            sessions_created: AtomicU64::new(0),
            sessions_committed: AtomicU64::new(0),
            sessions_aborted: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            tuples_cleaned: AtomicU64::new(0),
            cells_fixed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    pub(crate) fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_committed(&self) {
        self.sessions_committed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_aborted(&self) {
        self.sessions_aborted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sessions_evicted(&self, n: u64) {
        self.sessions_evicted.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn tuples_cleaned(&self, n: u64) {
        self.tuples_cleaned.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn cells_fixed(&self, n: u64) {
        self.cells_fixed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_committed: self.sessions_committed.load(Ordering::Relaxed),
            sessions_aborted: self.sessions_aborted.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            tuples_cleaned: self.tuples_cleaned.load(Ordering::Relaxed),
            cells_fixed: self.cells_fixed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServiceMetrics::new();
        m.request();
        m.request();
        m.error();
        m.session_created();
        m.sessions_evicted(3);
        m.tuples_cleaned(10);
        m.cells_fixed(7);
        m.cache_hit();
        m.cache_miss();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.sessions_created, 1);
        assert_eq!(s.sessions_evicted, 3);
        assert_eq!(s.tuples_cleaned, 10);
        assert_eq!(s.cells_fixed, 7);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
    }
}
