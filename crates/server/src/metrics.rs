//! Service counters, exported over the `metrics` protocol op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Request-latency histogram buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds. 40 buckets reach ~9 minutes — far past
/// any op this service runs.
const LATENCY_BUCKETS: usize = 40;

/// The op classes latency is tracked for: every protocol op plus the
/// malformed-line class. Indexed by [`op_index`].
pub const LATENCY_OPS: [&str; 16] = [
    "hello",
    "session.create",
    "session.get",
    "session.validate",
    "session.fix",
    "session.commit",
    "session.abort",
    "clean",
    "regions",
    "check",
    "audit.read",
    "rules.reload",
    "master.append",
    "metrics",
    "shutdown",
    "parse_error",
];

fn op_index(op: &str) -> usize {
    LATENCY_OPS
        .iter()
        .position(|&o| o == op)
        .unwrap_or(LATENCY_OPS.len() - 1)
}

/// One op's latency histogram (fixed atomics — observing never locks or
/// allocates, which keeps it on the zero-allocation request path).
#[derive(Debug)]
struct OpHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl OpHistogram {
    fn new() -> OpHistogram {
        OpHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// `(count, p50_ns, p99_ns)` — percentiles report the upper bound of
    /// the covering bucket (conservative to within 2×).
    fn summarize(&self) -> (u64, u64, u64) {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return (0, 0, 0);
        }
        let percentile = |p: u64| -> u64 {
            let rank = (total * p).div_ceil(100).max(1);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return 1u64 << (i + 1).min(63);
                }
            }
            1u64 << LATENCY_BUCKETS // unreachable
        };
        (total, percentile(50), percentile(99))
    }
}

/// Latency summary for one op class, as exported in
/// [`MetricsSnapshot::latency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLatency {
    /// The op name (`"session.validate"`, …, or `"parse_error"`).
    pub op: &'static str,
    /// Requests observed.
    pub count: u64,
    /// Median latency upper bound, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency upper bound, nanoseconds.
    pub p99_ns: u64,
}

/// Monotonic counters for one [`CleaningService`](crate::CleaningService).
///
/// All counters are relaxed atomics — they are operational telemetry,
/// not synchronization. A [`snapshot`](Self::snapshot) is a per-counter-
/// atomic point-in-time copy: each individual counter is always exact,
/// but two counters read microseconds apart may disagree about whether
/// an in-flight request has landed (e.g. `requests` incremented,
/// `cells_fixed` not yet). Consumers that need cross-counter invariants
/// (dashboards diffing committed vs created) should diff two snapshots
/// over an interval rather than comparing counters inside one.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    sessions_created: AtomicU64,
    sessions_committed: AtomicU64,
    sessions_aborted: AtomicU64,
    sessions_evicted: AtomicU64,
    sessions_recovered: AtomicU64,
    tuples_cleaned: AtomicU64,
    cells_fixed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    journal_bytes: AtomicU64,
    journal_events: AtomicU64,
    audit_spilled_records: AtomicU64,
    snapshots_written: AtomicU64,
    rules_reloaded: AtomicU64,
    master_appends: AtomicU64,
    regions_recertified: AtomicU64,
    regions_cache_patched: AtomicU64,
    connections_open: AtomicU64,
    connections_total: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latency: Vec<OpHistogram>,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Seconds since service start.
    pub uptime_secs: u64,
    /// Protocol requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Sessions created.
    pub sessions_created: u64,
    /// Sessions committed (reached `session.commit`).
    pub sessions_committed: u64,
    /// Sessions aborted by the client.
    pub sessions_aborted: u64,
    /// Sessions reaped by idle eviction.
    pub sessions_evicted: u64,
    /// Sessions rebuilt from the journal/snapshot at startup.
    pub sessions_recovered: u64,
    /// Tuples processed through the batch `clean` op.
    pub tuples_cleaned: u64,
    /// Cells changed by rules across all ops.
    pub cells_fixed: u64,
    /// Region/consistency cache hits.
    pub cache_hits: u64,
    /// Region/consistency cache misses (computations performed).
    pub cache_misses: u64,
    /// Bytes appended to the write-ahead journal (0 in memory mode).
    pub journal_bytes: u64,
    /// Events appended to the write-ahead journal.
    pub journal_events: u64,
    /// Audit records evicted from the in-memory window to the disk
    /// spill (0 in memory mode, where the window is unbounded).
    pub audit_spilled_records: u64,
    /// Snapshots installed (journal truncations).
    pub snapshots_written: u64,
    /// Successful `rules.reload` swaps.
    pub rules_reloaded: u64,
    /// Successful `master.append` batches.
    pub master_appends: u64,
    /// Region candidates re-certified by master-delta rechecks (the
    /// probed slice; reused verdicts are not counted).
    pub regions_recertified: u64,
    /// Cached region searches patched in place by delta re-certification
    /// (instead of discarded and recomputed).
    pub regions_cache_patched: u64,
    /// TCP connections currently open (gauge).
    pub connections_open: u64,
    /// TCP connections ever accepted.
    pub connections_total: u64,
    /// Request bytes read off sockets.
    pub bytes_in: u64,
    /// Response bytes written to sockets.
    pub bytes_out: u64,
    /// Per-op request-latency summaries (ops with traffic only).
    pub latency: Vec<OpLatency>,
}

impl ServiceMetrics {
    /// Fresh counters, uptime starting now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            sessions_created: AtomicU64::new(0),
            sessions_committed: AtomicU64::new(0),
            sessions_aborted: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            sessions_recovered: AtomicU64::new(0),
            tuples_cleaned: AtomicU64::new(0),
            cells_fixed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            journal_events: AtomicU64::new(0),
            audit_spilled_records: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            rules_reloaded: AtomicU64::new(0),
            master_appends: AtomicU64::new(0),
            regions_recertified: AtomicU64::new(0),
            regions_cache_patched: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            latency: (0..LATENCY_OPS.len()).map(|_| OpHistogram::new()).collect(),
        }
    }

    /// Record one request's service latency under its op class.
    pub(crate) fn observe_latency(&self, op: &str, elapsed: Duration) {
        self.latency[op_index(op)].observe(elapsed);
    }

    pub(crate) fn connection_opened(&self) {
        self.connections_open.fetch_add(1, Ordering::Relaxed);
        self.connections_total.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_committed(&self) {
        self.sessions_committed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_aborted(&self) {
        self.sessions_aborted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sessions_evicted(&self, n: u64) {
        self.sessions_evicted.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn tuples_cleaned(&self, n: u64) {
        self.tuples_cleaned.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn cells_fixed(&self, n: u64) {
        self.cells_fixed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sessions_recovered(&self, n: u64) {
        self.sessions_recovered.fetch_add(n, Ordering::Relaxed);
    }

    /// Gauges mirrored from the journal (set, not incremented — the
    /// journal owns the monotonic totals).
    pub(crate) fn journal_totals(&self, bytes: u64, events: u64) {
        self.journal_bytes.store(bytes, Ordering::Relaxed);
        self.journal_events.store(events, Ordering::Relaxed);
    }

    /// Gauge mirrored from the audit log's window (records evicted to
    /// the spill).
    pub(crate) fn audit_spilled(&self, n: u64) {
        self.audit_spilled_records.store(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot_written(&self) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn rules_reload(&self) {
        self.rules_reloaded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn master_append(&self) {
        self.master_appends.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn regions_recertified(&self, n: u64) {
        self.regions_recertified.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn regions_cache_patched(&self) {
        self.regions_cache_patched.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_committed: self.sessions_committed.load(Ordering::Relaxed),
            sessions_aborted: self.sessions_aborted.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_recovered: self.sessions_recovered.load(Ordering::Relaxed),
            tuples_cleaned: self.tuples_cleaned.load(Ordering::Relaxed),
            cells_fixed: self.cells_fixed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            journal_events: self.journal_events.load(Ordering::Relaxed),
            audit_spilled_records: self.audit_spilled_records.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            rules_reloaded: self.rules_reloaded.load(Ordering::Relaxed),
            master_appends: self.master_appends.load(Ordering::Relaxed),
            regions_recertified: self.regions_recertified.load(Ordering::Relaxed),
            regions_cache_patched: self.regions_cache_patched.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            latency: LATENCY_OPS
                .iter()
                .zip(&self.latency)
                .filter_map(|(&op, hist)| {
                    let (count, p50_ns, p99_ns) = hist.summarize();
                    (count > 0).then_some(OpLatency {
                        op,
                        count,
                        p50_ns,
                        p99_ns,
                    })
                })
                .collect(),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServiceMetrics::new();
        m.request();
        m.request();
        m.error();
        m.session_created();
        m.sessions_evicted(3);
        m.tuples_cleaned(10);
        m.cells_fixed(7);
        m.cache_hit();
        m.cache_miss();
        m.sessions_recovered(2);
        m.journal_totals(1024, 12);
        m.audit_spilled(5);
        m.snapshot_written();
        m.rules_reload();
        m.master_append();
        m.regions_recertified(6);
        m.regions_cache_patched();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.sessions_created, 1);
        assert_eq!(s.sessions_evicted, 3);
        assert_eq!(s.sessions_recovered, 2);
        assert_eq!(s.tuples_cleaned, 10);
        assert_eq!(s.cells_fixed, 7);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.journal_bytes, 1024);
        assert_eq!(s.journal_events, 12);
        assert_eq!(s.audit_spilled_records, 5);
        assert_eq!(s.snapshots_written, 1);
        assert_eq!(s.rules_reloaded, 1);
        assert_eq!(s.master_appends, 1);
        assert_eq!(s.regions_recertified, 6);
        assert_eq!(s.regions_cache_patched, 1);
    }

    #[test]
    fn latency_and_connection_telemetry() {
        let m = ServiceMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.add_bytes_in(100);
        m.add_bytes_out(300);
        for _ in 0..50 {
            m.observe_latency("session.get", Duration::from_micros(10));
        }
        m.observe_latency("session.get", Duration::from_millis(5));
        let s = m.snapshot();
        assert_eq!(s.connections_open, 1);
        assert_eq!(s.connections_total, 2);
        assert_eq!(s.bytes_in, 100);
        assert_eq!(s.bytes_out, 300);
        let get = s.latency.iter().find(|l| l.op == "session.get").unwrap();
        assert_eq!(get.count, 51);
        // p50 sits in the 10µs bucket [8192, 16384) ns; p99 must catch
        // the 5ms outlier.
        assert_eq!(get.p50_ns, 16_384);
        assert!(get.p99_ns >= 4_000_000, "p99 {} misses outlier", get.p99_ns);
        // Ops with no traffic are omitted.
        assert!(s.latency.iter().all(|l| l.op == "session.get"));
    }

    #[test]
    fn unknown_op_classes_land_in_parse_error() {
        let m = ServiceMetrics::new();
        m.observe_latency("not-a-real-op", Duration::from_micros(1));
        let s = m.snapshot();
        let bucket = s.latency.iter().find(|l| l.op == "parse_error").unwrap();
        assert_eq!(bucket.count, 1);
    }
}
