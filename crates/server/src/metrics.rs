//! Service counters, exported over the `metrics` protocol op and, in
//! Prometheus text format with full histogram buckets, over
//! `metrics.prom` (see [`ServiceMetrics::render_prom`]).

use cerfix::EngineStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Request-latency histogram buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds. 40 buckets reach ~9 minutes — far past
/// any op this service runs.
const LATENCY_BUCKETS: usize = 40;

/// The op classes latency is tracked for: every protocol op, the
/// malformed-line class (`parse_error`), and the class unrecognized ops
/// fall into (`other` — kept distinct so malformed lines and unknown
/// ops are not conflated). Indexed by [`op_index`].
pub const LATENCY_OPS: [&str; 28] = [
    "hello",
    "session.create",
    "session.get",
    "session.validate",
    "session.fix",
    "session.commit",
    "session.abort",
    "clean",
    "regions",
    "check",
    "audit.read",
    "rules.reload",
    "master.append",
    "metrics",
    "metrics.prom",
    "trace.read",
    "replica.sync",
    "replica.promote",
    "health",
    "log.read",
    "metrics.history",
    "cluster.status",
    "config.set",
    "scrub",
    "server.drain",
    "shutdown",
    "parse_error",
    "other",
];

/// The latency class for `op`: its own slot when the op is known,
/// otherwise the `other` class. (`parse_error` is a deliberate class of
/// its own — callers name it explicitly for unparseable lines.)
pub(crate) fn op_index(op: &str) -> usize {
    LATENCY_OPS
        .iter()
        .position(|&o| o == op)
        .unwrap_or(LATENCY_OPS.len() - 1)
}

/// One op's latency histogram (fixed atomics — observing never locks or
/// allocates, which keeps it on the zero-allocation request path).
/// Each bucket carries a count *and* a sum of the observed values, so
/// percentile estimates interpolate to the bucket's empirical mean
/// instead of reporting its upper bound.
#[derive(Debug)]
struct OpHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sums: [AtomicU64; LATENCY_BUCKETS],
}

impl OpHistogram {
    fn new() -> OpHistogram {
        OpHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sums: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sums[bucket].fetch_add(ns, Ordering::Relaxed);
    }

    /// `(count, p50_ns, p99_ns)`. The percentile estimate is the
    /// empirical mean of the covering bucket (clamped to the bucket's
    /// `[2^i, 2^(i+1))` range), so a bucket fed by one repeated value
    /// reports that value exactly rather than the 2×-conservative upper
    /// bound. Allocates one scratch `Vec` of bucket counts — fine for a
    /// `metrics` request, never called on the request hot path.
    fn summarize(&self) -> (u64, u64, u64) {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return (0, 0, 0);
        }
        let percentile = |p: u64| -> u64 {
            let rank = (total * p).div_ceil(100).max(1);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    let lo = 1u64 << i.min(63);
                    let hi = 1u64 << (i + 1).min(63);
                    // Count and sum are two relaxed atomics: a racing
                    // observe can land between the loads, so clamp the
                    // mean back into the bucket's range.
                    let mean = self.sums[i].load(Ordering::Relaxed) / c.max(1);
                    return mean.clamp(lo, hi);
                }
            }
            1u64 << LATENCY_BUCKETS // unreachable
        };
        (total, percentile(50), percentile(99))
    }

    /// Total of every recorded value, nanoseconds.
    fn sum_ns(&self) -> u64 {
        self.sums.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Total observations.
    fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// Latency summary for one op class, as exported in
/// [`MetricsSnapshot::latency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLatency {
    /// The op name (`"session.validate"`, …, or `"parse_error"`).
    pub op: &'static str,
    /// Requests observed.
    pub count: u64,
    /// Median latency upper bound, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency upper bound, nanoseconds.
    pub p99_ns: u64,
}

/// Monotonic counters for one [`CleaningService`](crate::CleaningService).
///
/// All counters are relaxed atomics — they are operational telemetry,
/// not synchronization. A [`snapshot`](Self::snapshot) is a per-counter-
/// atomic point-in-time copy: each individual counter is always exact,
/// but two counters read microseconds apart may disagree about whether
/// an in-flight request has landed (e.g. `requests` incremented,
/// `cells_fixed` not yet). Consumers that need cross-counter invariants
/// (dashboards diffing committed vs created) should diff two snapshots
/// over an interval rather than comparing counters inside one.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    sessions_created: AtomicU64,
    sessions_committed: AtomicU64,
    sessions_aborted: AtomicU64,
    sessions_evicted: AtomicU64,
    sessions_recovered: AtomicU64,
    tuples_cleaned: AtomicU64,
    cells_fixed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    journal_bytes: AtomicU64,
    journal_events: AtomicU64,
    audit_spilled_records: AtomicU64,
    snapshots_written: AtomicU64,
    rules_reloaded: AtomicU64,
    master_appends: AtomicU64,
    regions_recertified: AtomicU64,
    regions_cache_patched: AtomicU64,
    connections_open: AtomicU64,
    connections_total: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    latency: Vec<OpHistogram>,
    /// Per-op-class engine-stat totals, parallel to `latency`:
    /// `[fixpoint_runs, rule_attempts, master_lookups, index_probes]`.
    engine_totals: Vec<[AtomicU64; 4]>,
    /// Worker-pool batch latency: submit → batch fully executed (the
    /// epoll reactor's heavy-op offload path).
    batch_latency: OpHistogram,
    /// Epoll reactor loop-iteration time (work per wakeup, excluding
    /// the blocking wait itself).
    reactor_loop: OpHistogram,
    /// `epoll_wait` calls made by the reactor.
    reactor_polls: AtomicU64,
    /// Cross-thread eventfd wakeups delivered to the reactor.
    reactor_wakeups: AtomicU64,
    /// Quorum-ack wait on commit: local fsync done → quorum of follower
    /// cursors covering the commit position.
    ack_latency: OpHistogram,
    /// Journal events served to follower cursors via `replica.sync`.
    replication_events_served: AtomicU64,
    /// Commits that timed out waiting for a follower quorum (applied
    /// and locally durable, but answered with `quorum_timeout`).
    quorum_timeouts: AtomicU64,
    /// Audit-spill write failures (mirrored from the spill, which owns
    /// the monotonic total).
    audit_spill_errors: AtomicU64,
    /// Integrity scrubs run (the `scrub` protocol op).
    scrubs_run: AtomicU64,
    /// Corrupt regions found by scrubs, cumulative.
    scrub_corruptions: AtomicU64,
    /// Requests shed by the admission shedder with an `overloaded` error.
    requests_shed_overload: AtomicU64,
    /// Requests shed because their `deadline_ms` expired before work
    /// started (or their quorum wait outlived it).
    requests_shed_deadline: AtomicU64,
    /// `session.create` requests refused while draining.
    sessions_refused_draining: AtomicU64,
    /// Graceful drains started via `server.drain`.
    drains_started: AtomicU64,
    /// Connections refused by the global connection quota or drain.
    connections_refused: AtomicU64,
    /// Receipt → dispatch queue wait per request (covers worker-pool
    /// queueing for batched heavy ops; ~0 on the inline path).
    queue_wait: OpHistogram,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Seconds since service start.
    pub uptime_secs: u64,
    /// Protocol requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Sessions created.
    pub sessions_created: u64,
    /// Sessions committed (reached `session.commit`).
    pub sessions_committed: u64,
    /// Sessions aborted by the client.
    pub sessions_aborted: u64,
    /// Sessions reaped by idle eviction.
    pub sessions_evicted: u64,
    /// Sessions rebuilt from the journal/snapshot at startup.
    pub sessions_recovered: u64,
    /// Tuples processed through the batch `clean` op.
    pub tuples_cleaned: u64,
    /// Cells changed by rules across all ops.
    pub cells_fixed: u64,
    /// Region/consistency cache hits.
    pub cache_hits: u64,
    /// Region/consistency cache misses (computations performed).
    pub cache_misses: u64,
    /// Bytes appended to the write-ahead journal (0 in memory mode).
    pub journal_bytes: u64,
    /// Events appended to the write-ahead journal.
    pub journal_events: u64,
    /// Audit records evicted from the in-memory window to the disk
    /// spill (0 in memory mode, where the window is unbounded).
    pub audit_spilled_records: u64,
    /// Snapshots installed (journal truncations).
    pub snapshots_written: u64,
    /// Successful `rules.reload` swaps.
    pub rules_reloaded: u64,
    /// Successful `master.append` batches.
    pub master_appends: u64,
    /// Region candidates re-certified by master-delta rechecks (the
    /// probed slice; reused verdicts are not counted).
    pub regions_recertified: u64,
    /// Cached region searches patched in place by delta re-certification
    /// (instead of discarded and recomputed).
    pub regions_cache_patched: u64,
    /// TCP connections currently open (gauge).
    pub connections_open: u64,
    /// TCP connections ever accepted.
    pub connections_total: u64,
    /// Request bytes read off sockets.
    pub bytes_in: u64,
    /// Response bytes written to sockets.
    pub bytes_out: u64,
    /// Journal events served to follower replication cursors.
    pub replication_events_served: u64,
    /// Commits that timed out waiting for a follower quorum.
    pub quorum_timeouts: u64,
    /// Audit-spill write failures (records retried by the spill's
    /// flusher; nonzero means the archive may lag the window).
    pub audit_spill_errors: u64,
    /// Integrity scrubs run via the `scrub` protocol op.
    pub scrubs_run: u64,
    /// Corrupt regions found by those scrubs, cumulative.
    pub scrub_corruptions: u64,
    /// Requests shed by the admission shedder (`overloaded` errors).
    pub requests_shed_overload: u64,
    /// Requests shed because their `deadline_ms` expired.
    pub requests_shed_deadline: u64,
    /// `session.create` requests refused while draining.
    pub sessions_refused_draining: u64,
    /// Graceful drains started via `server.drain`.
    pub drains_started: u64,
    /// Connections refused by the global quota or drain.
    pub connections_refused: u64,
    /// Per-op request-latency summaries (ops with traffic only).
    pub latency: Vec<OpLatency>,
}

impl ServiceMetrics {
    /// Fresh counters, uptime starting now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            sessions_created: AtomicU64::new(0),
            sessions_committed: AtomicU64::new(0),
            sessions_aborted: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            sessions_recovered: AtomicU64::new(0),
            tuples_cleaned: AtomicU64::new(0),
            cells_fixed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            journal_events: AtomicU64::new(0),
            audit_spilled_records: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            rules_reloaded: AtomicU64::new(0),
            master_appends: AtomicU64::new(0),
            regions_recertified: AtomicU64::new(0),
            regions_cache_patched: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            latency: (0..LATENCY_OPS.len()).map(|_| OpHistogram::new()).collect(),
            engine_totals: (0..LATENCY_OPS.len())
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            batch_latency: OpHistogram::new(),
            reactor_loop: OpHistogram::new(),
            reactor_polls: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            ack_latency: OpHistogram::new(),
            replication_events_served: AtomicU64::new(0),
            quorum_timeouts: AtomicU64::new(0),
            audit_spill_errors: AtomicU64::new(0),
            scrubs_run: AtomicU64::new(0),
            scrub_corruptions: AtomicU64::new(0),
            requests_shed_overload: AtomicU64::new(0),
            requests_shed_deadline: AtomicU64::new(0),
            sessions_refused_draining: AtomicU64::new(0),
            drains_started: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            queue_wait: OpHistogram::new(),
        }
    }

    /// Whole seconds since service start (cheap: one monotonic read).
    pub(crate) fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Record one request's service latency under its op class.
    pub(crate) fn observe_latency(&self, op: &str, elapsed: Duration) {
        self.latency[op_index(op)].observe(elapsed);
    }

    /// Charge a request's engine-stat delta to its op class. Four
    /// relaxed adds, no locks or allocation — hot-path safe (and the
    /// zero-work ops skip even this at the call site).
    pub(crate) fn add_engine_stats(&self, op_idx: usize, stats: &EngineStats) {
        let totals = &self.engine_totals[op_idx.min(LATENCY_OPS.len() - 1)];
        totals[0].fetch_add(stats.fixpoint_runs as u64, Ordering::Relaxed);
        totals[1].fetch_add(stats.rule_attempts as u64, Ordering::Relaxed);
        totals[2].fetch_add(stats.master_lookups as u64, Ordering::Relaxed);
        totals[3].fetch_add(stats.index_probes as u64, Ordering::Relaxed);
    }

    /// Record one worker-pool batch's submit→done latency.
    pub(crate) fn observe_batch_latency(&self, elapsed: Duration) {
        self.batch_latency.observe(elapsed);
    }

    /// Record one reactor loop iteration's working time.
    pub(crate) fn observe_reactor_loop(&self, elapsed: Duration) {
        self.reactor_loop.observe(elapsed);
    }

    /// Count one reactor `epoll_wait` call.
    pub(crate) fn reactor_poll(&self) {
        self.reactor_polls.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one eventfd wakeup delivered to the reactor.
    pub(crate) fn reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one quorum-ack commit wait (local fsync → quorum).
    pub(crate) fn observe_ack_latency(&self, elapsed: Duration) {
        self.ack_latency.observe(elapsed);
    }

    /// Count journal events served to follower cursors.
    pub(crate) fn replication_events_served(&self, n: u64) {
        self.replication_events_served
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Count one commit that timed out waiting for the quorum.
    pub(crate) fn quorum_timeout(&self) {
        self.quorum_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_opened(&self) {
        self.connections_open.fetch_add(1, Ordering::Relaxed);
        self.connections_total.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_committed(&self) {
        self.sessions_committed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_aborted(&self) {
        self.sessions_aborted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sessions_evicted(&self, n: u64) {
        self.sessions_evicted.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn tuples_cleaned(&self, n: u64) {
        self.tuples_cleaned.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn cells_fixed(&self, n: u64) {
        self.cells_fixed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sessions_recovered(&self, n: u64) {
        self.sessions_recovered.fetch_add(n, Ordering::Relaxed);
    }

    /// Gauges mirrored from the journal (set, not incremented — the
    /// journal owns the monotonic totals).
    pub(crate) fn journal_totals(&self, bytes: u64, events: u64) {
        self.journal_bytes.store(bytes, Ordering::Relaxed);
        self.journal_events.store(events, Ordering::Relaxed);
    }

    /// Gauge mirrored from the audit log's window (records evicted to
    /// the spill).
    pub(crate) fn audit_spilled(&self, n: u64) {
        self.audit_spilled_records.store(n, Ordering::Relaxed);
    }

    /// Counter mirrored from the audit spill (write failures — the
    /// spill owns the monotonic total).
    pub(crate) fn audit_spill_errors(&self, n: u64) {
        self.audit_spill_errors.store(n, Ordering::Relaxed);
    }

    /// Count one scrub and the corrupt regions it found.
    pub(crate) fn scrub_run(&self, corruptions: u64) {
        self.scrubs_run.fetch_add(1, Ordering::Relaxed);
        self.scrub_corruptions
            .fetch_add(corruptions, Ordering::Relaxed);
    }

    pub(crate) fn snapshot_written(&self) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn rules_reload(&self) {
        self.rules_reloaded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn master_append(&self) {
        self.master_appends.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn regions_recertified(&self, n: u64) {
        self.regions_recertified.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn regions_cache_patched(&self) {
        self.regions_cache_patched.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request shed by the admission shedder.
    pub(crate) fn shed_overload(&self) {
        self.requests_shed_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request shed for an expired deadline.
    pub(crate) fn shed_deadline(&self) {
        self.requests_shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `session.create` refused while draining.
    pub(crate) fn session_refused_draining(&self) {
        self.sessions_refused_draining
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count one graceful drain started.
    pub(crate) fn drain_started(&self) {
        self.drains_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection refused by quota or drain.
    pub(crate) fn connection_refused(&self) {
        self.connections_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// TCP connections currently open (the quota check reads this).
    pub(crate) fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Record one request's receipt→dispatch queue wait.
    pub(crate) fn observe_queue_wait(&self, elapsed: Duration) {
        self.queue_wait.observe(elapsed);
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_committed: self.sessions_committed.load(Ordering::Relaxed),
            sessions_aborted: self.sessions_aborted.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_recovered: self.sessions_recovered.load(Ordering::Relaxed),
            tuples_cleaned: self.tuples_cleaned.load(Ordering::Relaxed),
            cells_fixed: self.cells_fixed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            journal_events: self.journal_events.load(Ordering::Relaxed),
            audit_spilled_records: self.audit_spilled_records.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            rules_reloaded: self.rules_reloaded.load(Ordering::Relaxed),
            master_appends: self.master_appends.load(Ordering::Relaxed),
            regions_recertified: self.regions_recertified.load(Ordering::Relaxed),
            regions_cache_patched: self.regions_cache_patched.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            replication_events_served: self.replication_events_served.load(Ordering::Relaxed),
            quorum_timeouts: self.quorum_timeouts.load(Ordering::Relaxed),
            audit_spill_errors: self.audit_spill_errors.load(Ordering::Relaxed),
            scrubs_run: self.scrubs_run.load(Ordering::Relaxed),
            scrub_corruptions: self.scrub_corruptions.load(Ordering::Relaxed),
            requests_shed_overload: self.requests_shed_overload.load(Ordering::Relaxed),
            requests_shed_deadline: self.requests_shed_deadline.load(Ordering::Relaxed),
            sessions_refused_draining: self.sessions_refused_draining.load(Ordering::Relaxed),
            drains_started: self.drains_started.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            latency: LATENCY_OPS
                .iter()
                .zip(&self.latency)
                .filter_map(|(&op, hist)| {
                    let (count, p50_ns, p99_ns) = hist.summarize();
                    (count > 0).then_some(OpLatency {
                        op,
                        count,
                        p50_ns,
                        p99_ns,
                    })
                })
                .collect(),
        }
    }
}

impl ServiceMetrics {
    /// Render every counter, gauge and full histogram (all buckets, not
    /// just p50/p99) in Prometheus text exposition format. The service
    /// appends its own process-level gauges (live sessions, queue
    /// depth, journal flush profile, build info) after this.
    pub(crate) fn render_prom(&self, out: &mut String) {
        prom_metric(
            out,
            "cerfix_uptime_seconds",
            "Seconds since service start.",
            "gauge",
            self.started.elapsed().as_secs_f64(),
        );
        let counters: [(&str, &str, &AtomicU64); 29] = [
            (
                "cerfix_requests_total",
                "Protocol requests handled (including failed ones).",
                &self.requests,
            ),
            (
                "cerfix_errors_total",
                "Requests answered with an error.",
                &self.errors,
            ),
            (
                "cerfix_sessions_created_total",
                "Sessions created.",
                &self.sessions_created,
            ),
            (
                "cerfix_sessions_committed_total",
                "Sessions committed.",
                &self.sessions_committed,
            ),
            (
                "cerfix_sessions_aborted_total",
                "Sessions aborted by the client.",
                &self.sessions_aborted,
            ),
            (
                "cerfix_sessions_evicted_total",
                "Sessions reaped by idle eviction.",
                &self.sessions_evicted,
            ),
            (
                "cerfix_sessions_recovered_total",
                "Sessions rebuilt from the journal/snapshot at startup.",
                &self.sessions_recovered,
            ),
            (
                "cerfix_tuples_cleaned_total",
                "Tuples processed through the batch clean op.",
                &self.tuples_cleaned,
            ),
            (
                "cerfix_cells_fixed_total",
                "Cells changed by rules across all ops.",
                &self.cells_fixed,
            ),
            (
                "cerfix_cache_hits_total",
                "Region/consistency cache hits.",
                &self.cache_hits,
            ),
            (
                "cerfix_cache_misses_total",
                "Region/consistency cache misses.",
                &self.cache_misses,
            ),
            (
                "cerfix_snapshots_written_total",
                "Snapshots installed (journal truncations).",
                &self.snapshots_written,
            ),
            (
                "cerfix_rules_reloaded_total",
                "Successful rules.reload swaps.",
                &self.rules_reloaded,
            ),
            (
                "cerfix_master_appends_total",
                "Successful master.append batches.",
                &self.master_appends,
            ),
            (
                "cerfix_regions_recertified_total",
                "Region candidates re-certified by master-delta rechecks.",
                &self.regions_recertified,
            ),
            (
                "cerfix_regions_cache_patched_total",
                "Cached region searches patched in place.",
                &self.regions_cache_patched,
            ),
            (
                "cerfix_connections_total",
                "TCP connections ever accepted.",
                &self.connections_total,
            ),
            (
                "cerfix_bytes_in_total",
                "Request bytes read off sockets.",
                &self.bytes_in,
            ),
            (
                "cerfix_bytes_out_total",
                "Response bytes written to sockets.",
                &self.bytes_out,
            ),
            (
                "cerfix_replication_events_served_total",
                "Journal events served to follower replication cursors.",
                &self.replication_events_served,
            ),
            (
                "cerfix_quorum_timeouts_total",
                "Commits that timed out waiting for a follower quorum.",
                &self.quorum_timeouts,
            ),
            (
                "cerfix_audit_spill_write_errors_total",
                "Audit-spill write failures (records retried by the flusher).",
                &self.audit_spill_errors,
            ),
            (
                "cerfix_scrubs_total",
                "Integrity scrubs run via the scrub protocol op.",
                &self.scrubs_run,
            ),
            (
                "cerfix_scrub_corruptions_total",
                "Corrupt regions found by scrubs.",
                &self.scrub_corruptions,
            ),
            (
                "cerfix_requests_shed_overload_total",
                "Requests shed by the admission shedder with an overloaded error.",
                &self.requests_shed_overload,
            ),
            (
                "cerfix_requests_shed_deadline_total",
                "Requests shed because their deadline_ms expired.",
                &self.requests_shed_deadline,
            ),
            (
                "cerfix_sessions_refused_draining_total",
                "session.create requests refused while draining.",
                &self.sessions_refused_draining,
            ),
            (
                "cerfix_drains_started_total",
                "Graceful drains started via server.drain.",
                &self.drains_started,
            ),
            (
                "cerfix_connections_refused_total",
                "Connections refused by the global quota or drain.",
                &self.connections_refused,
            ),
        ];
        for (name, help, counter) in counters {
            prom_metric(
                out,
                name,
                help,
                "counter",
                counter.load(Ordering::Relaxed) as f64,
            );
        }
        let gauges: [(&str, &str, &AtomicU64); 4] = [
            (
                "cerfix_connections_open",
                "TCP connections currently open.",
                &self.connections_open,
            ),
            (
                "cerfix_journal_bytes",
                "Bytes appended to the write-ahead journal.",
                &self.journal_bytes,
            ),
            (
                "cerfix_journal_events",
                "Events appended to the write-ahead journal.",
                &self.journal_events,
            ),
            (
                "cerfix_audit_spilled_records",
                "Audit records evicted from the in-memory window to disk.",
                &self.audit_spilled_records,
            ),
        ];
        for (name, help, gauge) in gauges {
            prom_metric(
                out,
                name,
                help,
                "gauge",
                gauge.load(Ordering::Relaxed) as f64,
            );
        }
        prom_metric(
            out,
            "cerfix_reactor_polls_total",
            "epoll_wait calls made by the reactor.",
            "counter",
            self.reactor_polls.load(Ordering::Relaxed) as f64,
        );
        prom_metric(
            out,
            "cerfix_reactor_wakeups_total",
            "Cross-thread eventfd wakeups delivered to the reactor.",
            "counter",
            self.reactor_wakeups.load(Ordering::Relaxed) as f64,
        );
        // Per-op request latency: full buckets, ops with traffic only
        // (19 op classes x 40 empty buckets would be pure noise).
        prom_header(
            out,
            "cerfix_request_duration_seconds",
            "Service time per request, by op class.",
            "histogram",
        );
        for (op, hist) in LATENCY_OPS.iter().zip(&self.latency) {
            if hist.count() > 0 {
                hist.render_prom(out, "cerfix_request_duration_seconds", Some(("op", op)));
            }
        }
        prom_header(
            out,
            "cerfix_worker_batch_duration_seconds",
            "Worker-pool batch latency, submit to fully executed.",
            "histogram",
        );
        self.batch_latency
            .render_prom(out, "cerfix_worker_batch_duration_seconds", None);
        prom_header(
            out,
            "cerfix_reactor_loop_duration_seconds",
            "Reactor loop iteration working time (wait excluded).",
            "histogram",
        );
        self.reactor_loop
            .render_prom(out, "cerfix_reactor_loop_duration_seconds", None);
        prom_header(
            out,
            "cerfix_commit_ack_duration_seconds",
            "Quorum-ack wait on commit: local fsync to follower quorum.",
            "histogram",
        );
        self.ack_latency
            .render_prom(out, "cerfix_commit_ack_duration_seconds", None);
        prom_header(
            out,
            "cerfix_request_queue_wait_seconds",
            "Receipt to dispatch queue wait per request.",
            "histogram",
        );
        self.queue_wait
            .render_prom(out, "cerfix_request_queue_wait_seconds", None);
        // Per-op engine-stat totals (ops that did engine work only).
        let stats_names = [
            (
                "cerfix_engine_fixpoint_runs_total",
                "Fixpoint runs, by op class.",
            ),
            (
                "cerfix_engine_rule_attempts_total",
                "Rules attempted by the correcting engine, by op class.",
            ),
            (
                "cerfix_engine_master_lookups_total",
                "Master tuple lookups, by op class.",
            ),
            (
                "cerfix_engine_index_probes_total",
                "Index-served master lookups, by op class.",
            ),
        ];
        for (i, (name, help)) in stats_names.iter().enumerate() {
            prom_header(out, name, help, "counter");
            for (op, totals) in LATENCY_OPS.iter().zip(&self.engine_totals) {
                let value = totals[i].load(Ordering::Relaxed);
                if value > 0 {
                    prom_sample(out, name, Some(("op", op)), value as f64);
                }
            }
        }
    }
}

impl OpHistogram {
    /// Render this histogram's cumulative buckets (in seconds), sum and
    /// count, with an optional extra label.
    fn render_prom(&self, out: &mut String, name: &str, label: Option<(&str, &str)>) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = (1u64 << (i + 1).min(63)) as f64 * 1e-9;
            prom_bucket(out, name, label, le, cumulative);
        }
        out.push_str(name);
        out.push_str("_bucket{");
        if let Some((k, v)) = label {
            push_label(out, k, v);
            out.push(',');
        }
        out.push_str("le=\"+Inf\"} ");
        push_f64(out, cumulative as f64);
        out.push('\n');
        out.push_str(name);
        out.push_str("_sum");
        push_labels(out, label);
        out.push(' ');
        push_f64(out, self.sum_ns() as f64 * 1e-9);
        out.push('\n');
        out.push_str(name);
        out.push_str("_count");
        push_labels(out, label);
        out.push(' ');
        push_f64(out, cumulative as f64);
        out.push('\n');
    }
}

/// Append a `# HELP` / `# TYPE` header pair.
pub(crate) fn prom_header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Append one sample line (optionally labelled).
pub(crate) fn prom_sample(out: &mut String, name: &str, label: Option<(&str, &str)>, value: f64) {
    out.push_str(name);
    push_labels(out, label);
    out.push(' ');
    push_f64(out, value);
    out.push('\n');
}

/// Append a whole single-sample metric: header plus value.
pub(crate) fn prom_metric(out: &mut String, name: &str, help: &str, kind: &str, value: f64) {
    prom_header(out, name, help, kind);
    prom_sample(out, name, None, value);
}

/// Append one cumulative `_bucket` line with its `le` bound.
fn prom_bucket(out: &mut String, name: &str, label: Option<(&str, &str)>, le: f64, count: u64) {
    out.push_str(name);
    out.push_str("_bucket{");
    if let Some((k, v)) = label {
        push_label(out, k, v);
        out.push(',');
    }
    out.push_str("le=\"");
    push_f64(out, le);
    out.push_str("\"} ");
    push_f64(out, count as f64);
    out.push('\n');
}

/// Render a histogram handed over as `(upper_bound, count-in-bucket)`
/// pairs plus a total sum — how the journal's flush profile (owned by
/// the storage crate) is exposed without a crate dependency cycle.
pub(crate) fn prom_histogram_from_buckets(
    out: &mut String,
    name: &str,
    help: &str,
    buckets: &[(f64, u64)],
    sum: f64,
) {
    prom_header(out, name, help, "histogram");
    let mut cumulative = 0u64;
    for &(le, count) in buckets {
        cumulative += count;
        prom_bucket(out, name, None, le, cumulative);
    }
    out.push_str(name);
    out.push_str("_bucket{le=\"+Inf\"} ");
    push_f64(out, cumulative as f64);
    out.push('\n');
    prom_sample(out, &format!("{name}_sum"), None, sum);
    prom_sample(out, &format!("{name}_count"), None, cumulative as f64);
}

fn push_labels(out: &mut String, label: Option<(&str, &str)>) {
    if let Some((k, v)) = label {
        out.push('{');
        push_label(out, k, v);
        out.push('}');
    }
}

/// `key="value"` — label values here are op names and version strings
/// (no quotes, backslashes or newlines), so no escaping is performed.
fn push_label(out: &mut String, key: &str, value: &str) {
    out.push_str(key);
    out.push_str("=\"");
    out.push_str(value);
    out.push('"');
}

/// Shortest-round-trip float formatting; integral values render without
/// a fractional part (Prometheus parses both).
fn push_f64(out: &mut String, value: f64) {
    use std::fmt::Write;
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        let _ = write!(out, "{}", value as i64);
    } else {
        let _ = write!(out, "{value:?}");
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServiceMetrics::new();
        m.request();
        m.request();
        m.error();
        m.session_created();
        m.sessions_evicted(3);
        m.tuples_cleaned(10);
        m.cells_fixed(7);
        m.cache_hit();
        m.cache_miss();
        m.sessions_recovered(2);
        m.journal_totals(1024, 12);
        m.audit_spilled(5);
        m.snapshot_written();
        m.rules_reload();
        m.master_append();
        m.regions_recertified(6);
        m.regions_cache_patched();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.sessions_created, 1);
        assert_eq!(s.sessions_evicted, 3);
        assert_eq!(s.sessions_recovered, 2);
        assert_eq!(s.tuples_cleaned, 10);
        assert_eq!(s.cells_fixed, 7);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.journal_bytes, 1024);
        assert_eq!(s.journal_events, 12);
        assert_eq!(s.audit_spilled_records, 5);
        assert_eq!(s.snapshots_written, 1);
        assert_eq!(s.rules_reloaded, 1);
        assert_eq!(s.master_appends, 1);
        assert_eq!(s.regions_recertified, 6);
        assert_eq!(s.regions_cache_patched, 1);
    }

    #[test]
    fn latency_and_connection_telemetry() {
        let m = ServiceMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.add_bytes_in(100);
        m.add_bytes_out(300);
        for _ in 0..50 {
            m.observe_latency("session.get", Duration::from_micros(10));
        }
        m.observe_latency("session.get", Duration::from_millis(5));
        let s = m.snapshot();
        assert_eq!(s.connections_open, 1);
        assert_eq!(s.connections_total, 2);
        assert_eq!(s.bytes_in, 100);
        assert_eq!(s.bytes_out, 300);
        let get = s.latency.iter().find(|l| l.op == "session.get").unwrap();
        assert_eq!(get.count, 51);
        // p50 sits in the 10µs bucket [8192, 16384) ns; with per-bucket
        // sums the estimate is the bucket's empirical mean — exactly
        // 10µs here, not the 16384ns upper bound. p99 must catch the
        // 5ms outlier (again as the exact mean of its bucket).
        assert_eq!(get.p50_ns, 10_000);
        assert_eq!(get.p99_ns, 5_000_000);
        // Ops with no traffic are omitted.
        assert!(s.latency.iter().all(|l| l.op == "session.get"));
    }

    #[test]
    fn unknown_op_classes_land_in_other_not_parse_error() {
        let m = ServiceMetrics::new();
        m.observe_latency("not-a-real-op", Duration::from_micros(1));
        m.observe_latency("parse_error", Duration::from_micros(1));
        let s = m.snapshot();
        let other = s.latency.iter().find(|l| l.op == "other").unwrap();
        assert_eq!(other.count, 1);
        let parse = s.latency.iter().find(|l| l.op == "parse_error").unwrap();
        assert_eq!(parse.count, 1);
    }

    #[test]
    fn percentiles_clamp_to_bucket_bounds() {
        let h = OpHistogram::new();
        // Values spread inside one bucket: the mean stays in range.
        h.observe(Duration::from_nanos(1025));
        h.observe(Duration::from_nanos(2000));
        let (count, p50, _) = h.summarize();
        assert_eq!(count, 2);
        assert!((1024..=2048).contains(&p50), "p50 {p50} escaped its bucket");
    }

    #[test]
    fn engine_stats_accumulate_per_op_class() {
        let m = ServiceMetrics::new();
        let idx = op_index("session.validate");
        m.add_engine_stats(
            idx,
            &EngineStats {
                fixpoint_runs: 1,
                rule_attempts: 4,
                master_lookups: 5,
                index_probes: 5,
            },
        );
        m.add_engine_stats(
            idx,
            &EngineStats {
                fixpoint_runs: 1,
                rule_attempts: 2,
                master_lookups: 1,
                index_probes: 0,
            },
        );
        let mut prom = String::new();
        m.render_prom(&mut prom);
        assert!(prom.contains("cerfix_engine_fixpoint_runs_total{op=\"session.validate\"} 2"));
        assert!(prom.contains("cerfix_engine_rule_attempts_total{op=\"session.validate\"} 6"));
        assert!(prom.contains("cerfix_engine_master_lookups_total{op=\"session.validate\"} 6"));
        assert!(prom.contains("cerfix_engine_index_probes_total{op=\"session.validate\"} 5"));
    }

    #[test]
    fn prom_rendering_has_full_buckets_and_correct_shapes() {
        let m = ServiceMetrics::new();
        m.request();
        m.observe_latency("session.get", Duration::from_micros(10));
        m.observe_batch_latency(Duration::from_micros(250));
        m.observe_reactor_loop(Duration::from_micros(50));
        m.reactor_poll();
        m.reactor_wakeup();
        m.observe_ack_latency(Duration::from_micros(700));
        m.replication_events_served(12);
        m.quorum_timeout();
        let mut out = String::new();
        m.render_prom(&mut out);
        assert!(out.contains("# TYPE cerfix_requests_total counter"));
        assert!(out.contains("cerfix_requests_total 1"));
        assert!(out.contains("# TYPE cerfix_request_duration_seconds histogram"));
        // Full bucket set for the op with traffic: 40 finite + +Inf.
        let get_buckets = out
            .lines()
            .filter(|l| l.starts_with("cerfix_request_duration_seconds_bucket{op=\"session.get\""))
            .count();
        assert_eq!(get_buckets, LATENCY_BUCKETS + 1);
        // Ops without traffic are omitted from the histogram family.
        assert!(!out.contains("op=\"clean\""));
        assert!(out.contains("cerfix_request_duration_seconds_count{op=\"session.get\"} 1"));
        assert!(out.contains("cerfix_worker_batch_duration_seconds_count 1"));
        assert!(out.contains("cerfix_reactor_loop_duration_seconds_count 1"));
        assert!(out.contains("cerfix_reactor_polls_total 1"));
        assert!(out.contains("cerfix_reactor_wakeups_total 1"));
        // Buckets are cumulative and end at +Inf with the total count.
        assert!(out.contains("cerfix_worker_batch_duration_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(out.contains("cerfix_commit_ack_duration_seconds_count 1"));
        assert!(out.contains("cerfix_replication_events_served_total 12"));
        assert!(out.contains("cerfix_quorum_timeouts_total 1"));
    }
}
