//! Service counters, exported over the `metrics` protocol op.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters for one [`CleaningService`](crate::CleaningService).
///
/// All counters are relaxed atomics — they are operational telemetry,
/// not synchronization. A [`snapshot`](Self::snapshot) is a per-counter-
/// atomic point-in-time copy: each individual counter is always exact,
/// but two counters read microseconds apart may disagree about whether
/// an in-flight request has landed (e.g. `requests` incremented,
/// `cells_fixed` not yet). Consumers that need cross-counter invariants
/// (dashboards diffing committed vs created) should diff two snapshots
/// over an interval rather than comparing counters inside one.
#[derive(Debug)]
pub struct ServiceMetrics {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    sessions_created: AtomicU64,
    sessions_committed: AtomicU64,
    sessions_aborted: AtomicU64,
    sessions_evicted: AtomicU64,
    sessions_recovered: AtomicU64,
    tuples_cleaned: AtomicU64,
    cells_fixed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    journal_bytes: AtomicU64,
    journal_events: AtomicU64,
    audit_spilled_records: AtomicU64,
    snapshots_written: AtomicU64,
    rules_reloaded: AtomicU64,
    master_appends: AtomicU64,
    regions_recertified: AtomicU64,
    regions_cache_patched: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Seconds since service start.
    pub uptime_secs: u64,
    /// Protocol requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Sessions created.
    pub sessions_created: u64,
    /// Sessions committed (reached `session.commit`).
    pub sessions_committed: u64,
    /// Sessions aborted by the client.
    pub sessions_aborted: u64,
    /// Sessions reaped by idle eviction.
    pub sessions_evicted: u64,
    /// Sessions rebuilt from the journal/snapshot at startup.
    pub sessions_recovered: u64,
    /// Tuples processed through the batch `clean` op.
    pub tuples_cleaned: u64,
    /// Cells changed by rules across all ops.
    pub cells_fixed: u64,
    /// Region/consistency cache hits.
    pub cache_hits: u64,
    /// Region/consistency cache misses (computations performed).
    pub cache_misses: u64,
    /// Bytes appended to the write-ahead journal (0 in memory mode).
    pub journal_bytes: u64,
    /// Events appended to the write-ahead journal.
    pub journal_events: u64,
    /// Audit records evicted from the in-memory window to the disk
    /// spill (0 in memory mode, where the window is unbounded).
    pub audit_spilled_records: u64,
    /// Snapshots installed (journal truncations).
    pub snapshots_written: u64,
    /// Successful `rules.reload` swaps.
    pub rules_reloaded: u64,
    /// Successful `master.append` batches.
    pub master_appends: u64,
    /// Region candidates re-certified by master-delta rechecks (the
    /// probed slice; reused verdicts are not counted).
    pub regions_recertified: u64,
    /// Cached region searches patched in place by delta re-certification
    /// (instead of discarded and recomputed).
    pub regions_cache_patched: u64,
}

impl ServiceMetrics {
    /// Fresh counters, uptime starting now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            sessions_created: AtomicU64::new(0),
            sessions_committed: AtomicU64::new(0),
            sessions_aborted: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            sessions_recovered: AtomicU64::new(0),
            tuples_cleaned: AtomicU64::new(0),
            cells_fixed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            journal_events: AtomicU64::new(0),
            audit_spilled_records: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            rules_reloaded: AtomicU64::new(0),
            master_appends: AtomicU64::new(0),
            regions_recertified: AtomicU64::new(0),
            regions_cache_patched: AtomicU64::new(0),
        }
    }

    pub(crate) fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_created(&self) {
        self.sessions_created.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_committed(&self) {
        self.sessions_committed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_aborted(&self) {
        self.sessions_aborted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sessions_evicted(&self, n: u64) {
        self.sessions_evicted.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn tuples_cleaned(&self, n: u64) {
        self.tuples_cleaned.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn cells_fixed(&self, n: u64) {
        self.cells_fixed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sessions_recovered(&self, n: u64) {
        self.sessions_recovered.fetch_add(n, Ordering::Relaxed);
    }

    /// Gauges mirrored from the journal (set, not incremented — the
    /// journal owns the monotonic totals).
    pub(crate) fn journal_totals(&self, bytes: u64, events: u64) {
        self.journal_bytes.store(bytes, Ordering::Relaxed);
        self.journal_events.store(events, Ordering::Relaxed);
    }

    /// Gauge mirrored from the audit log's window (records evicted to
    /// the spill).
    pub(crate) fn audit_spilled(&self, n: u64) {
        self.audit_spilled_records.store(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot_written(&self) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn rules_reload(&self) {
        self.rules_reloaded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn master_append(&self) {
        self.master_appends.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn regions_recertified(&self, n: u64) {
        self.regions_recertified.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn regions_cache_patched(&self) {
        self.regions_cache_patched.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            sessions_created: self.sessions_created.load(Ordering::Relaxed),
            sessions_committed: self.sessions_committed.load(Ordering::Relaxed),
            sessions_aborted: self.sessions_aborted.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_recovered: self.sessions_recovered.load(Ordering::Relaxed),
            tuples_cleaned: self.tuples_cleaned.load(Ordering::Relaxed),
            cells_fixed: self.cells_fixed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            journal_events: self.journal_events.load(Ordering::Relaxed),
            audit_spilled_records: self.audit_spilled_records.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            rules_reloaded: self.rules_reloaded.load(Ordering::Relaxed),
            master_appends: self.master_appends.load(Ordering::Relaxed),
            regions_recertified: self.regions_recertified.load(Ordering::Relaxed),
            regions_cache_patched: self.regions_cache_patched.load(Ordering::Relaxed),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServiceMetrics::new();
        m.request();
        m.request();
        m.error();
        m.session_created();
        m.sessions_evicted(3);
        m.tuples_cleaned(10);
        m.cells_fixed(7);
        m.cache_hit();
        m.cache_miss();
        m.sessions_recovered(2);
        m.journal_totals(1024, 12);
        m.audit_spilled(5);
        m.snapshot_written();
        m.rules_reload();
        m.master_append();
        m.regions_recertified(6);
        m.regions_cache_patched();
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.sessions_created, 1);
        assert_eq!(s.sessions_evicted, 3);
        assert_eq!(s.sessions_recovered, 2);
        assert_eq!(s.tuples_cleaned, 10);
        assert_eq!(s.cells_fixed, 7);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.journal_bytes, 1024);
        assert_eq!(s.journal_events, 12);
        assert_eq!(s.audit_spilled_records, 5);
        assert_eq!(s.snapshots_written, 1);
        assert_eq!(s.rules_reloaded, 1);
        assert_eq!(s.master_appends, 1);
        assert_eq!(s.regions_recertified, 6);
        assert_eq!(s.regions_cache_patched, 1);
    }
}
