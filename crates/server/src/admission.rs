//! Cost-aware admission control: the load shedder.
//!
//! Overload protection works by refusing cheap-to-refuse work early
//! instead of letting the worker queue grow without bound. The
//! [`Shedder`] watches the worker-pool queue depth (the same instrument
//! `health` and `metrics.prom` already export) and moves through three
//! shed levels with hysteresis — the raise thresholds sit above the
//! lower thresholds so the shedder cannot flap on a queue depth that
//! hovers at the boundary:
//!
//! | level | entered at depth | left at depth | sheds                |
//! |-------|------------------|---------------|----------------------|
//! | 0     | —                | `< high/2`    | nothing              |
//! | 1     | `>= high`        | `< high`      | heavy reads          |
//! | 2     | `>= 2*high`      | (to 1)        | heavy reads + session mutations |
//!
//! What gets shed is decided by [`Priority`] class, not arrival order:
//! operational introspection (`health`, `log.read`, `metrics`,
//! `cluster.status`, …) is never shed — an overloaded server that goes
//! dark to its operators cannot be diagnosed; expensive scans (`clean`,
//! `regions`, `check`, `audit.read`) go first; session mutations go
//! only at the highest level. Shed requests get a retryable
//! `overloaded` error that cost no engine, journal or fsync work.

use std::sync::atomic::{AtomicU64, Ordering};

/// Priority class of one protocol op, for shedding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Priority {
    /// Never shed: operational introspection, replication and the
    /// control plane. Shedding these blinds operators and peers at
    /// exactly the moment they need the signal.
    Critical,
    /// Session lifecycle ops: real user work, shed only at level 2.
    Session,
    /// Expensive whole-relation reads: first against the wall.
    Heavy,
}

/// The shed class of `op`. Unknown ops classify as [`Priority::Session`]
/// — they will be rejected by the parser anyway, and classifying them
/// as Critical would let garbage bypass the shedder.
pub(crate) fn priority(op: &str) -> Priority {
    match op {
        "hello" | "health" | "metrics" | "stats" | "metrics.prom" | "metrics.history"
        | "trace.read" | "log.read" | "cluster.status" | "config.set" | "replica.sync"
        | "replica.promote" | "scrub" | "server.drain" | "shutdown" => Priority::Critical,
        "clean" | "regions" | "check" | "audit.read" => Priority::Heavy,
        _ => Priority::Session,
    }
}

/// Queue-depth-driven shed level with hysteresis. All state is one
/// relaxed atomic — `observe` and `sheds` are hot-path safe (two loads
/// and at most one store; races between concurrent observers settle on
/// the next observation).
#[derive(Debug)]
pub(crate) struct Shedder {
    /// Current shed level: 0 (admit all), 1 (shed heavy), 2 (shed
    /// heavy + session mutations).
    level: AtomicU64,
    /// The queue-depth high watermark that enters level 1.
    high: u64,
}

impl Shedder {
    /// A shedder tripping at queue depth `high` (clamped to >= 2 so the
    /// hysteresis bands stay distinct).
    pub(crate) fn new(high: usize) -> Shedder {
        Shedder {
            level: AtomicU64::new(0),
            high: (high as u64).max(2),
        }
    }

    /// The configured high watermark.
    pub(crate) fn high(&self) -> u64 {
        self.high
    }

    /// Current shed level.
    pub(crate) fn level(&self) -> u64 {
        self.level.load(Ordering::Relaxed)
    }

    /// Feed one queue-depth observation. Returns `Some((from, to))`
    /// when the shed level changed, so the caller can log the
    /// transition.
    pub(crate) fn observe(&self, depth: usize) -> Option<(u64, u64)> {
        let depth = depth as u64;
        let level = self.level.load(Ordering::Relaxed);
        let next = match level {
            0 => {
                if depth >= 2 * self.high {
                    2
                } else if depth >= self.high {
                    1
                } else {
                    0
                }
            }
            1 => {
                if depth >= 2 * self.high {
                    2
                } else if depth < self.high / 2 {
                    0
                } else {
                    1
                }
            }
            _ => {
                if depth < self.high / 2 {
                    0
                } else if depth < self.high {
                    1
                } else {
                    2
                }
            }
        };
        if next == level {
            return None;
        }
        self.level.store(next, Ordering::Relaxed);
        Some((level, next))
    }

    /// Does the current level shed this priority class?
    pub(crate) fn sheds(&self, priority: Priority) -> bool {
        match self.level.load(Ordering::Relaxed) {
            0 => false,
            1 => priority == Priority::Heavy,
            _ => priority != Priority::Critical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn introspection_is_never_shed() {
        for op in [
            "hello",
            "health",
            "metrics",
            "stats",
            "metrics.prom",
            "metrics.history",
            "trace.read",
            "log.read",
            "cluster.status",
            "config.set",
            "replica.sync",
            "replica.promote",
            "scrub",
            "server.drain",
            "shutdown",
        ] {
            assert_eq!(priority(op), Priority::Critical, "{op}");
        }
        for op in ["clean", "regions", "check", "audit.read"] {
            assert_eq!(priority(op), Priority::Heavy, "{op}");
        }
        for op in [
            "session.create",
            "session.get",
            "session.validate",
            "session.fix",
            "session.commit",
            "session.abort",
            "rules.reload",
            "master.append",
            "definitely-not-an-op",
        ] {
            assert_eq!(priority(op), Priority::Session, "{op}");
        }
    }

    #[test]
    fn levels_raise_and_lower_with_hysteresis() {
        let shedder = Shedder::new(100);
        assert_eq!(shedder.level(), 0);
        assert!(!shedder.sheds(Priority::Heavy));

        // Depth at the watermark: level 1, heavy shed, sessions admitted.
        assert_eq!(shedder.observe(100), Some((0, 1)));
        assert!(shedder.sheds(Priority::Heavy));
        assert!(!shedder.sheds(Priority::Session));
        assert!(!shedder.sheds(Priority::Critical));

        // Hovering just under the watermark does NOT drop back (hysteresis).
        assert_eq!(shedder.observe(99), None);
        assert_eq!(shedder.level(), 1);

        // Twice the watermark: level 2, sessions shed too, never Critical.
        assert_eq!(shedder.observe(200), Some((1, 2)));
        assert!(shedder.sheds(Priority::Session));
        assert!(!shedder.sheds(Priority::Critical));

        // Falling below the watermark steps down one level at a time.
        assert_eq!(shedder.observe(80), Some((2, 1)));
        // Only below half the watermark does it fully disarm.
        assert_eq!(shedder.observe(60), None);
        assert_eq!(shedder.observe(49), Some((1, 0)));
        assert!(!shedder.sheds(Priority::Heavy));
    }

    #[test]
    fn empty_queue_jumps_straight_to_level_two_and_back() {
        let shedder = Shedder::new(10);
        assert_eq!(shedder.observe(25), Some((0, 2)));
        assert_eq!(shedder.observe(0), Some((2, 0)));
    }
}
