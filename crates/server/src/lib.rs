//! # cerfix-server — a concurrent multi-session cleaning service
//!
//! The CerFix demo runs at the *point of data entry*: one master
//! database and one rule set serve many clerks entering tuples at once.
//! This crate is that deployment shape for the reproduction — a
//! long-lived service over the core [`DataMonitor`](cerfix::DataMonitor)
//! instead of a single-caller library object:
//!
//! * [`CleaningService`] — shared `Arc<MasterData>` + `Arc<RuleSet>`
//!   behind a session manager (create / attach / validate / fix /
//!   commit / abort by session id, with idle eviction), a worker pool
//!   for batch cleans, and a per-ruleset cache of region searches and
//!   consistency verdicts.
//! * [`Server`] — a line-delimited-JSON-over-TCP front end
//!   (`std::net`, no async runtime, no serialization dependency — see
//!   [`wire`]).
//! * [`Client`] / [`LocalClient`] — the same typed client over a socket
//!   or wired directly into an in-process service.
//!
//! The protocol reference lives in the repository README. Start a
//! server from the CLI with:
//!
//! ```text
//! cerfix serve --master M.csv --rules R.dsl --addr 127.0.0.1:7117 --workers 8
//! ```
//!
//! ## In-process example
//!
//! ```
//! use cerfix_server::{CleaningService, LocalClient, ServiceConfig};
//! use cerfix::MasterData;
//! use cerfix_relation::{RelationBuilder, Schema, Value};
//! use cerfix_rules::{parse_rules, RuleDecl, RuleSet};
//! use std::sync::Arc;
//!
//! let input = Schema::of_strings("customer",
//!     ["FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item"]).unwrap();
//! let ms = Schema::of_strings("master",
//!     ["FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender"]).unwrap();
//! let master = MasterData::new(RelationBuilder::new(ms.clone())
//!     .row_strs(["Robert", "Brady", "131", "6884563", "079172485",
//!                "501 Elm St", "Edi", "EH8 4AH", "11/11/55", "M"])
//!     .build().unwrap());
//! let mut rules = RuleSet::new(input.clone(), ms.clone());
//! for decl in parse_rules("er phi1: match zip=zip fix AC:=AC when ()",
//!                         &input, &ms).unwrap() {
//!     if let RuleDecl::Er(r) = decl { rules.add(r).unwrap(); }
//! }
//!
//! let service = CleaningService::new(
//!     Arc::new(master), Arc::new(rules), ServiceConfig::default());
//! let mut client = LocalClient::in_process(&service);
//! let view = client.create_session(
//!     ["Bob", "Brady", "020", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD"]
//!         .iter().map(Value::str).collect()).unwrap();
//! let after = client
//!     .validate(view.session, vec![("zip".into(), Value::str("EH8 4AH"))])
//!     .unwrap();
//! // φ1 copied the certain fix AC := 131 from master data.
//! assert_eq!(after.tuple[2], Value::str("131"));
//! ```

// `deny` (not `forbid`) so the two FFI islands — the epoll reactor's
// raw syscalls and the fsprobe's `statvfs` free-space probe — can carve
// out their `#[allow(unsafe_code)]`; every other module stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admission;
pub mod cache;
mod client;
mod diag;
mod fsprobe;
mod metrics;
mod net;
pub mod protocol;
#[cfg(target_os = "linux")]
mod reactor;
mod replication;
mod service;
mod session;
mod timeseries;
mod trace;
pub mod wire;

pub use cache::{ruleset_fingerprint, AnalysisCache};
pub use client::{
    AuditPage, AuditRecordView, CleanOutcomeView, Client, ClientError, CommitView, LocalClient,
    LocalTransport, RetryBudget, RetryPolicy, SessionView, TcpTransport, Transport,
};
pub use metrics::{MetricsSnapshot, OpLatency, ServiceMetrics};
pub use net::{Frontend, Server, ServerHandle};
pub use protocol::RequestScratch;
pub use protocol::{Request, PROTOCOL_VERSION};
pub use replication::Role;
pub use service::{CleaningService, ServiceConfig};
pub use session::{SessionError, SessionManager};
// Storage types most embedders need, re-exported so `cerfix-server`
// alone is enough to build a journaled service.
pub use cerfix_storage::{Storage, StorageConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix::MasterData;
    use cerfix_relation::{RelationBuilder, Schema, Value};
    use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
    use std::sync::Arc;
    use std::time::Duration;

    /// key → val master data and rule set for a 50-row lookup service.
    fn kv_setup() -> (Arc<MasterData>, Arc<RuleSet>) {
        let input = Schema::of_strings("in", ["key", "val", "note"]).unwrap();
        let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
        let mut builder = RelationBuilder::new(ms.clone());
        for i in 0..50 {
            builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
        }
        let master = MasterData::new(builder.build().unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "kv",
                    &input,
                    &ms,
                    vec![(0, 0)],
                    vec![(1, 1)],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        (Arc::new(master), Arc::new(rules))
    }

    /// key → val lookup service over 50 master rows.
    fn kv_service(workers: usize) -> CleaningService {
        let (master, rules) = kv_setup();
        CleaningService::new(
            master,
            rules,
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    /// Fresh temp data dir for a journaled-service test.
    fn data_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cerfix-server-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Storage config where *nothing* is durable except through explicit
    /// sync points (commit / reload) — makes crash tests deterministic.
    fn manual_storage(dir: &std::path::Path, audit_window: usize) -> StorageConfig {
        let mut cfg = StorageConfig::new(dir);
        cfg.flush_interval = Duration::from_secs(3600);
        cfg.snapshot_interval = Duration::from_secs(3600);
        cfg.snapshot_every_events = u64::MAX;
        cfg.audit_window = audit_window;
        cfg
    }

    fn kv_service_journaled(dir: &std::path::Path, audit_window: usize) -> CleaningService {
        let (master, rules) = kv_setup();
        CleaningService::with_storage(
            master,
            rules,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            manual_storage(dir, audit_window),
        )
        .expect("open storage")
    }

    fn row(key: &str, val: &str, note: &str) -> Vec<Value> {
        vec![Value::str(key), Value::str(val), Value::str(note)]
    }

    #[test]
    fn session_lifecycle_in_process() {
        let service = kv_service(2);
        let mut client = LocalClient::in_process(&service);

        let hello = client.hello().unwrap();
        assert_eq!(
            hello.get("service").and_then(wire::Json::as_str),
            Some("cerfix-server")
        );

        let view = client.create_session(row("k3", "WRONG", "n")).unwrap();
        assert_eq!(view.status, "awaiting_user");
        assert_eq!(view.rounds, 0);
        assert_eq!(service.live_sessions(), 1);

        // Validating key fires the rule: val gets the certain fix v3.
        let after = client
            .validate(view.session, vec![("key".into(), Value::str("k3"))])
            .unwrap();
        assert_eq!(after.tuple[1], Value::str("v3"));
        assert_eq!(after.fixes.len(), 1);
        assert_eq!(after.fixes[0].0, "val");

        // note is rule-free: must be user-validated.
        let done = client
            .validate(view.session, vec![("note".into(), Value::str("n"))])
            .unwrap();
        assert!(done.is_complete());

        let commit = client.commit(view.session).unwrap();
        assert!(commit.complete);
        assert_eq!(commit.tuple, row("k3", "v3", "n"));
        assert_eq!(commit.user_validated, 2);
        assert_eq!(commit.auto_validated, 1);
        assert_eq!(service.live_sessions(), 0);

        // Committed sessions are gone.
        assert!(matches!(
            client.get_session(view.session),
            Err(ClientError::Server(_))
        ));
    }

    #[test]
    fn batch_clean_in_order() {
        let service = kv_service(4);
        let mut client = LocalClient::in_process(&service);
        let tuples: Vec<Vec<Value>> = (0..20)
            .map(|i| row(&format!("k{i}"), "WRONG", "x"))
            .collect();
        let outcomes = client
            .clean(tuples, vec!["key".into(), "note".into()])
            .unwrap();
        assert_eq!(outcomes.len(), 20);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.index as usize, i, "stream order stable");
            assert!(outcome.complete);
            assert_eq!(outcome.cells_fixed, 1);
            assert_eq!(outcome.tuple[1], Value::str(format!("v{i}")));
        }
        assert_eq!(service.metrics().tuples_cleaned, 20);
    }

    #[test]
    fn cache_and_check() {
        let service = kv_service(1);
        let mut client = LocalClient::in_process(&service);
        // Startup pre-computation already populated the default-k entry.
        let (cached, _regions) = client.regions(None).unwrap();
        assert!(cached, "pre-computed at startup");
        let (cached_again, _) = client.regions(None).unwrap();
        assert!(cached_again);
        // A different k is served from the same retained search (the
        // ranking is untruncated in the cache): still a hit.
        let (hit, regions_k1) = client.regions(Some(1)).unwrap();
        assert!(hit, "any top_k comes from the one cached search");
        assert!(regions_k1.len() <= 1);
        let (check_miss, consistent) = client.check(Some("strict")).unwrap();
        assert!(!check_miss);
        assert!(consistent);
        let (check_hit, _) = client.check(Some("strict")).unwrap();
        assert!(check_hit);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let service = kv_service(1);
        let mut client = LocalClient::in_process(&service);
        // Wrong arity.
        assert!(matches!(
            client.create_session(vec![Value::str("only-one")]),
            Err(ClientError::Server(_))
        ));
        // Unknown session.
        assert!(matches!(
            client.get_session(999),
            Err(ClientError::Server(_))
        ));
        // Unknown attribute.
        let view = client.create_session(row("k1", "x", "y")).unwrap();
        assert!(matches!(
            client.validate(view.session, vec![("nope".into(), Value::str("v"))]),
            Err(ClientError::Server(_))
        ));
        // Null validation value is rejected by the monitor.
        assert!(matches!(
            client.validate(view.session, vec![("key".into(), Value::Null)]),
            Err(ClientError::Server(_))
        ));
        // Malformed raw line.
        let response = service.handle_line("this is not json");
        assert!(response.contains("\"ok\":false"));
        assert!(service.metrics().errors >= 4);
    }

    /// The hot slice-parse/direct-render paths must be byte-identical
    /// to the tree parser + tree renderer — two identical services run
    /// the same script, one through `handle_line` (fast-capable), one
    /// through the typed `handle` + `render` (tree only).
    #[test]
    fn hot_paths_render_byte_identical_to_tree() {
        let fast = kv_service(1);
        let tree = kv_service(1);
        let script = [
            r#"{"op":"session.create","tuple":["k3","WRONG","n"]}"#,
            r#"{"op":"session.get","session":1}"#,
            r#"{"op":"session.validate","session":1,"validations":{"key":"k3"}}"#,
            r#"{"op":"session.fix","session":1}"#,
            // Escaped payloads unescape identically ("k3" = "k3").
            r#"{"op":"session.validate","session":1,"validations":{"val":"k3"}}"#,
            r#"{"op":"session.validate","session":1,"validations":{"note":"n"}}"#,
            r#"{"op":"session.get","session":1}"#,
            r#"{"op":"session.commit","session":1}"#,
            r#"{"op":"session.get","session":1}"#, // unknown session error
            r#"{"op":"session.validate","session":99,"validations":{"key":"k1"}}"#,
            r#"{"op":"session.validate","session":1,"validations":{"nope":"v"}}"#,
            r#"{"op":"session.validate","session":1,"validations":{"key":null}}"#,
            r#"{"op":"session.create","tuple":["k5","x","y"]}"#,
            r#"{"op":"session.validate","session":2,"validations":{}}"#,
            r#"{"op":"session.abort","session":2}"#,
        ];
        for line in script {
            let fast_out = fast.handle_line(line);
            let tree_out = tree.handle(&Request::parse_line(line).unwrap()).render();
            assert_eq!(fast_out, tree_out, "line: {line}");
        }
        // Error counters agree too (same error classification).
        assert_eq!(fast.metrics().errors, tree.metrics().errors);
    }

    #[test]
    fn request_ids_echo_on_every_path() {
        let service = kv_service(1);
        let mut client = LocalClient::in_process(&service);
        client.create_session(row("k3", "WRONG", "n")).unwrap();
        // Hot path (session.get), tree path (check), and error path all
        // echo the id as the first response field, verbatim.
        for (line, op_is_error) in [
            (r#"{"op":"session.get","session":1,"id":7}"#, false),
            (r#"{"op":"check","id":"c-1"}"#, false),
            (r#"{"op":"session.get","session":999,"id":1.25}"#, true),
            (r#"{"op":"warp","id":[1,2]}"#, true),
        ] {
            let with_id = service.handle_line(line);
            let id_span = wire::Json::parse(line)
                .ok()
                .and_then(|j| j.get("id").map(|v| v.render()));
            let id_span = id_span.expect("id present");
            assert!(
                with_id.starts_with(&format!("{{\"id\":{id_span},")),
                "{line} → {with_id}"
            );
            assert_eq!(
                with_id.contains("\"ok\":false"),
                op_is_error,
                "{line} → {with_id}"
            );
        }
        // Without an id, no id field appears.
        let without = service.handle_line(r#"{"op":"session.get","session":1}"#);
        assert!(!without.contains("\"id\""));
    }

    #[test]
    fn tcp_round_trip() {
        let service = kv_service(2);
        let handle = Server::spawn("127.0.0.1:0", service).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let view = client.create_session(row("k7", "WRONG", "n")).unwrap();
        let after = client
            .validate(view.session, vec![("key".into(), Value::str("k7"))])
            .unwrap();
        assert_eq!(after.tuple[1], Value::str("v7"));
        // A second connection attaches to the same session.
        let mut other = Client::connect(handle.addr()).unwrap();
        let attached = other.get_session(view.session).unwrap();
        assert_eq!(attached.tuple[1], Value::str("v7"));
        other.abort(view.session).unwrap();
        assert!(matches!(
            client.get_session(view.session),
            Err(ClientError::Server(_))
        ));
        handle.shutdown().unwrap();
    }

    /// The acceptance shape of the storage subsystem: kill the service
    /// mid-batch (simulated kill-9: un-fsynced bytes lost), restart over
    /// the same data dir, and every uncommitted session resumes with
    /// state identical to the uninterrupted run. `audit.read` returns
    /// the same records before and after.
    #[test]
    fn journaled_sessions_survive_crash_and_restart() {
        let dir = data_dir("crash-restart");
        let (s1, s2, s3, views_before, audit_before, metrics_before);
        {
            let service = kv_service_journaled(&dir, 4);
            let mut client = LocalClient::in_process(&service);
            // s1: partially validated (one fix applied, note pending).
            s1 = client.create_session(row("k3", "WRONG", "n")).unwrap();
            client
                .validate(s1.session, vec![("key".into(), Value::str("k3"))])
                .unwrap();
            // s2: fully validated but uncommitted.
            s2 = client.create_session(row("k7", "x", "y")).unwrap();
            client
                .validate(
                    s2.session,
                    vec![
                        ("key".into(), Value::str("k7")),
                        ("note".into(), Value::str("y")),
                    ],
                )
                .unwrap();
            // s3: created, never touched again.
            s3 = client.create_session(row("k9", "z", "w")).unwrap();
            // s4: committed — its commit ack is the durability barrier
            // that group-fsyncs everything above.
            let s4 = client.create_session(row("k1", "q", "r")).unwrap();
            client.commit(s4.session).unwrap();
            views_before = [
                client.get_session(s1.session).unwrap(),
                client.get_session(s2.session).unwrap(),
                client.get_session(s3.session).unwrap(),
            ];
            audit_before = client.audit_read_all(3).unwrap();
            assert!(!audit_before.is_empty());
            metrics_before = service.metrics();
            assert!(metrics_before.journal_events >= 6);
            assert!(metrics_before.journal_bytes > 0);
            service.simulate_crash().unwrap();
        }
        let service = kv_service_journaled(&dir, 4);
        assert_eq!(service.live_sessions(), 3, "s4 committed, rest resumed");
        assert_eq!(service.metrics().sessions_recovered, 3);
        let mut client = LocalClient::in_process(&service);
        for (before, id) in views_before
            .iter()
            .zip([s1.session, s2.session, s3.session])
        {
            let after = client.get_session(id).unwrap();
            assert_eq!(after.status, before.status, "session {id}");
            assert_eq!(after.tuple, before.tuple, "session {id}");
            assert_eq!(after.rounds, before.rounds, "session {id}");
            assert_eq!(after.validated, before.validated, "session {id}");
            assert_eq!(after.suggestion, before.suggestion, "session {id}");
        }
        // The rule-fixed value really is there (s1's val := v3).
        assert_eq!(
            client.get_session(s1.session).unwrap().tuple[1],
            Value::str("v3")
        );
        // Provenance archive identical across the restart.
        let audit_after = client.audit_read_all(3).unwrap();
        assert_eq!(audit_after, audit_before);
        // New ids never collide with recovered ones.
        let fresh = client.create_session(row("k2", "a", "b")).unwrap();
        assert!(fresh.session > s3.session);
        // Sessions keep working after recovery: finish s1.
        let done = client
            .validate(s1.session, vec![("note".into(), Value::str("n"))])
            .unwrap();
        assert!(done.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A snapshot truncates the journal; recovery then starts from the
    /// snapshot and replays only the suffix. State must be identical to
    /// recovery-from-journal-alone.
    #[test]
    fn snapshot_plus_suffix_recovers_exactly() {
        let dir = data_dir("snapshot-suffix");
        let (s1, s2, view1, view2);
        {
            let service = kv_service_journaled(&dir, 1024);
            let mut client = LocalClient::in_process(&service);
            s1 = client.create_session(row("k5", "WRONG", "n")).unwrap();
            client
                .validate(s1.session, vec![("key".into(), Value::str("k5"))])
                .unwrap();
            assert!(service.snapshot_now().unwrap());
            assert_eq!(service.metrics().snapshots_written, 1);
            // Post-snapshot traffic lands in the fresh journal epoch.
            s2 = client.create_session(row("k6", "x", "y")).unwrap();
            client
                .validate(s2.session, vec![("key".into(), Value::str("k6"))])
                .unwrap();
            let barrier = client.create_session(row("k0", "a", "b")).unwrap();
            client.commit(barrier.session).unwrap();
            view1 = client.get_session(s1.session).unwrap();
            view2 = client.get_session(s2.session).unwrap();
            service.simulate_crash().unwrap();
        }
        let service = kv_service_journaled(&dir, 1024);
        assert_eq!(service.live_sessions(), 2);
        let mut client = LocalClient::in_process(&service);
        for (before, id) in [(view1, s1.session), (view2, s2.session)] {
            let after = client.get_session(id).unwrap();
            assert_eq!(after.tuple, before.tuple);
            assert_eq!(after.rounds, before.rounds);
            assert_eq!(after.validated, before.validated);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `audit.read` pages through window + spill transparently, and the
    /// spill counter surfaces in metrics.
    #[test]
    fn audit_read_spans_window_and_spill() {
        let dir = data_dir("audit-pages");
        let service = kv_service_journaled(&dir, 4); // tiny window
        let mut client = LocalClient::in_process(&service);
        let tuples: Vec<Vec<Value>> = (0..10)
            .map(|i| row(&format!("k{i}"), "WRONG", "x"))
            .collect();
        client
            .clean(tuples, vec!["key".into(), "note".into()])
            .unwrap();
        // 10 tuples × (2 user-validated + 1 rule-fixed) = 30 records.
        let all = client.audit_read_all(7).unwrap();
        assert_eq!(all.len(), 30);
        assert_eq!(service.audit().len(), 30);
        assert_eq!(service.audit().spilled(), 26, "window keeps 4");
        assert_eq!(service.metrics().audit_spilled_records, 26);
        // Indices are the global stream positions.
        for (i, record) in all.iter().enumerate() {
            assert_eq!(record.index, i as u64);
        }
        let fixed: Vec<_> = all.iter().filter(|r| r.kind == "rule_fixed").collect();
        assert_eq!(fixed.len(), 10);
        assert!(fixed.iter().all(|r| r.attr == "val"));
        // A ranged page straddling the spill/window boundary.
        let page = client.audit_read(24, Some(4)).unwrap();
        assert_eq!(page.records.len(), 4);
        assert_eq!(page.next, 28);
        assert_eq!(page.total, 30);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `rules.reload` swaps the engine atomically, is journaled, and
    /// recovery replays sessions against the rule set that was active
    /// when their events were journaled.
    #[test]
    fn rules_reload_swaps_and_survives_restart() {
        let dir = data_dir("reload");
        let reversed = "er kv2: match val=val fix key:=key when ()";
        let (sid, view_before, fingerprint);
        {
            let service = kv_service_journaled(&dir, 1024);
            let mut client = LocalClient::in_process(&service);
            // Old rules: validating key fixes val.
            let old = client.create_session(row("k3", "WRONG", "n")).unwrap();
            let after = client
                .validate(old.session, vec![("key".into(), Value::str("k3"))])
                .unwrap();
            assert_eq!(after.tuple[1], Value::str("v3"));
            client.commit(old.session).unwrap();

            let (rules, fp) = client.reload_rules(reversed).unwrap();
            assert_eq!(rules, 1);
            fingerprint = fp;
            assert_eq!(service.metrics().rules_reloaded, 1);

            // New rules: validating val fixes key.
            let new = client.create_session(row("WRONG", "v8", "n")).unwrap();
            let after = client
                .validate(new.session, vec![("val".into(), Value::str("v8"))])
                .unwrap();
            assert_eq!(after.tuple[0], Value::str("k8"), "reversed rule fired");
            sid = new.session;
            view_before = client.get_session(sid).unwrap();
            // reload_rules synced; the later session events need a
            // barrier too.
            let barrier = client.create_session(row("k0", "a", "b")).unwrap();
            client.commit(barrier.session).unwrap();
            service.simulate_crash().unwrap();
        }
        // Reboot with the ORIGINAL rules: the journaled reload must win.
        let service = kv_service_journaled(&dir, 1024);
        let mut client = LocalClient::in_process(&service);
        let hello = client.hello().unwrap();
        assert_eq!(
            hello.get("ruleset").and_then(wire::Json::as_str),
            Some(fingerprint.as_str()),
            "recovered service runs the reloaded rule set"
        );
        let after = client.get_session(sid).unwrap();
        assert_eq!(after.tuple, view_before.tuple);
        assert_eq!(after.validated, view_before.validated);
        // And the reloaded semantics hold for fresh sessions.
        let fresh = client.create_session(row("WRONG", "v4", "n")).unwrap();
        let fixed = client
            .validate(fresh.session, vec![("val".into(), Value::str("v4"))])
            .unwrap();
        assert_eq!(fixed.tuple[0], Value::str("k4"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Idle evictions are journaled: a reaped session must not be
    /// resurrected by recovery.
    #[test]
    fn evicted_sessions_stay_dead_after_recovery() {
        let dir = data_dir("evict-recover");
        let (master, rules) = kv_setup();
        let gone;
        {
            let service = CleaningService::with_storage(
                master.clone(),
                rules.clone(),
                ServiceConfig {
                    workers: 1,
                    session_ttl: Duration::from_millis(10),
                    ..ServiceConfig::default()
                },
                manual_storage(&dir, 1024),
            )
            .unwrap();
            let mut client = LocalClient::in_process(&service);
            gone = client.create_session(row("k1", "a", "b")).unwrap();
            std::thread::sleep(Duration::from_millis(25));
            assert_eq!(service.sweep_idle_sessions(), 1);
            let barrier = client.create_session(row("k0", "a", "b")).unwrap();
            client.commit(barrier.session).unwrap();
            service.simulate_crash().unwrap();
        }
        let service = CleaningService::with_storage(
            master,
            rules,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            manual_storage(&dir, 1024),
        )
        .unwrap();
        assert_eq!(service.live_sessions(), 0, "evicted session not revived");
        let mut client = LocalClient::in_process(&service);
        assert!(matches!(
            client.get_session(gone.session),
            Err(ClientError::Server(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_alias_and_storage_fields() {
        let service = kv_service(1);
        let response = service.handle_line(r#"{"op":"stats"}"#);
        assert!(response.contains("\"storage\":\"memory\""));
        assert!(response.contains("\"audit_spilled_records\":0"));
        assert!(response.contains("\"sessions_recovered\":0"));
        let dir = data_dir("stats");
        let journaled = kv_service_journaled(&dir, 8);
        let response = journaled.handle_line(r#"{"op":"stats"}"#);
        assert!(response.contains("\"storage\":\"journaled\""));
        assert!(response.contains("\"journal_epoch\":0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let input = Schema::of_strings("in", ["a"]).unwrap();
        let ms = Schema::of_strings("m", ["a"]).unwrap();
        let master = MasterData::new(RelationBuilder::new(ms.clone()).build().unwrap());
        let rules = RuleSet::new(input, ms);
        let service = CleaningService::new(
            Arc::new(master),
            Arc::new(rules),
            ServiceConfig {
                workers: 1,
                session_ttl: Duration::from_millis(10),
                ..ServiceConfig::default()
            },
        );
        let mut client = LocalClient::in_process(&service);
        client.create_session(vec![Value::str("x")]).unwrap();
        assert_eq!(service.live_sessions(), 1);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(service.sweep_idle_sessions(), 1);
        assert_eq!(service.live_sessions(), 0);
        assert_eq!(service.metrics().sessions_evicted, 1);
    }

    #[test]
    fn master_append_serves_new_entities_and_patches_regions() {
        let service = kv_service(2);
        let mut client = LocalClient::in_process(&service);
        // Warm the region cache (pre-computed at startup) and prove the
        // new key is unknown.
        let (cached, _) = client.regions(None).unwrap();
        assert!(cached);
        let before = client
            .clean(
                vec![row("k100", "?", "n")],
                vec!["key".into(), "note".into()],
            )
            .unwrap();
        assert!(!before[0].complete, "k100 not in master yet");

        let (appended, master_rows, _) = client
            .master_append(vec![vec![Value::str("k100"), Value::str("v100")]])
            .unwrap();
        assert_eq!(appended, 1);
        assert_eq!(master_rows, 51);

        // The new entity is immediately servable...
        let after = client
            .clean(
                vec![row("k100", "?", "n")],
                vec!["key".into(), "note".into()],
            )
            .unwrap();
        assert!(after[0].complete);
        assert_eq!(after[0].tuple[1], Value::str("v100"));
        // ...and the cached regions were patched by delta
        // re-certification, not discarded: the next regions call hits
        // the new-generation entry.
        let (cached, regions) = client.regions(None).unwrap();
        assert!(cached, "patched search installed under the new generation");
        assert!(!regions.is_empty());
        let metrics = service.metrics();
        assert_eq!(metrics.master_appends, 1);
        assert_eq!(metrics.regions_cache_patched, 1);

        // Wrong arity is rejected without mutating anything.
        assert!(client.master_append(vec![vec![Value::str("k1")]]).is_err());
        assert_eq!(service.metrics().master_appends, 1);
    }

    #[test]
    fn master_append_patches_on_demand_cached_search_without_precompute() {
        let (master, rules) = kv_setup();
        let service = CleaningService::new(
            master,
            rules,
            ServiceConfig {
                workers: 1,
                precompute_regions: false,
                ..ServiceConfig::default()
            },
        );
        let mut client = LocalClient::in_process(&service);
        // No startup search; the first regions call caches on demand.
        let (cached, _) = client.regions(None).unwrap();
        assert!(!cached);
        client
            .master_append(vec![vec![Value::str("k300"), Value::str("v300")]])
            .unwrap();
        // The on-demand search was patched, not discarded: the next call
        // hits the new-generation entry.
        let metrics = service.metrics();
        assert_eq!(metrics.regions_cache_patched, 1);
        let (cached, _) = client.regions(None).unwrap();
        assert!(cached, "patched search serves the new generation");
    }

    #[test]
    fn master_append_is_journaled_and_survives_crash() {
        let dir = data_dir("master-append");
        {
            let service = kv_service_journaled(&dir, 64);
            let mut client = LocalClient::in_process(&service);
            client
                .master_append(vec![vec![Value::str("k200"), Value::str("v200")]])
                .unwrap();
            // The append ack is a sync point: it survives kill -9 with
            // no commit after it.
            service.simulate_crash().unwrap();
        }
        {
            let service = kv_service_journaled(&dir, 64);
            let mut client = LocalClient::in_process(&service);
            let outcome = client
                .clean(
                    vec![row("k200", "?", "n")],
                    vec!["key".into(), "note".into()],
                )
                .unwrap();
            assert!(outcome[0].complete, "journaled append replayed");
            assert_eq!(outcome[0].tuple[1], Value::str("v200"));
            // Snapshot: the appended rows ride in it past journal
            // truncation.
            assert!(service.snapshot_now().unwrap());
            client
                .master_append(vec![vec![Value::str("k201"), Value::str("v201")]])
                .unwrap();
            service.simulate_crash().unwrap();
        }
        let service = kv_service_journaled(&dir, 64);
        let mut client = LocalClient::in_process(&service);
        for (key, val) in [("k200", "v200"), ("k201", "v201")] {
            let outcome = client
                .clean(vec![row(key, "?", "n")], vec!["key".into(), "note".into()])
                .unwrap();
            assert!(outcome[0].complete, "{key} recovered");
            assert_eq!(outcome[0].tuple[1], Value::str(val));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
