//! # cerfix-server — a concurrent multi-session cleaning service
//!
//! The CerFix demo runs at the *point of data entry*: one master
//! database and one rule set serve many clerks entering tuples at once.
//! This crate is that deployment shape for the reproduction — a
//! long-lived service over the core [`DataMonitor`](cerfix::DataMonitor)
//! instead of a single-caller library object:
//!
//! * [`CleaningService`] — shared `Arc<MasterData>` + `Arc<RuleSet>`
//!   behind a session manager (create / attach / validate / fix /
//!   commit / abort by session id, with idle eviction), a worker pool
//!   for batch cleans, and a per-ruleset cache of region searches and
//!   consistency verdicts.
//! * [`Server`] — a line-delimited-JSON-over-TCP front end
//!   (`std::net`, no async runtime, no serialization dependency — see
//!   [`wire`]).
//! * [`Client`] / [`LocalClient`] — the same typed client over a socket
//!   or wired directly into an in-process service.
//!
//! The protocol reference lives in the repository README. Start a
//! server from the CLI with:
//!
//! ```text
//! cerfix serve --master M.csv --rules R.dsl --addr 127.0.0.1:7117 --workers 8
//! ```
//!
//! ## In-process example
//!
//! ```
//! use cerfix_server::{CleaningService, LocalClient, ServiceConfig};
//! use cerfix::MasterData;
//! use cerfix_relation::{RelationBuilder, Schema, Value};
//! use cerfix_rules::{parse_rules, RuleDecl, RuleSet};
//! use std::sync::Arc;
//!
//! let input = Schema::of_strings("customer",
//!     ["FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item"]).unwrap();
//! let ms = Schema::of_strings("master",
//!     ["FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender"]).unwrap();
//! let master = MasterData::new(RelationBuilder::new(ms.clone())
//!     .row_strs(["Robert", "Brady", "131", "6884563", "079172485",
//!                "501 Elm St", "Edi", "EH8 4AH", "11/11/55", "M"])
//!     .build().unwrap());
//! let mut rules = RuleSet::new(input.clone(), ms.clone());
//! for decl in parse_rules("er phi1: match zip=zip fix AC:=AC when ()",
//!                         &input, &ms).unwrap() {
//!     if let RuleDecl::Er(r) = decl { rules.add(r).unwrap(); }
//! }
//!
//! let service = CleaningService::new(
//!     Arc::new(master), Arc::new(rules), ServiceConfig::default());
//! let mut client = LocalClient::in_process(&service);
//! let view = client.create_session(
//!     ["Bob", "Brady", "020", "079172485", "2", "501 Elm St", "Edi", "EH8 4AH", "CD"]
//!         .iter().map(Value::str).collect()).unwrap();
//! let after = client
//!     .validate(view.session, vec![("zip".into(), Value::str("EH8 4AH"))])
//!     .unwrap();
//! // φ1 copied the certain fix AC := 131 from master data.
//! assert_eq!(after.tuple[2], Value::str("131"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod client;
mod metrics;
mod net;
pub mod protocol;
mod service;
mod session;
pub mod wire;

pub use cache::{ruleset_fingerprint, AnalysisCache};
pub use client::{
    CleanOutcomeView, Client, ClientError, CommitView, LocalClient, LocalTransport, SessionView,
    TcpTransport, Transport,
};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use net::{Server, ServerHandle};
pub use protocol::{Request, PROTOCOL_VERSION};
pub use service::{CleaningService, ServiceConfig};
pub use session::{SessionError, SessionManager};

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix::MasterData;
    use cerfix_relation::{RelationBuilder, Schema, Value};
    use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
    use std::sync::Arc;
    use std::time::Duration;

    /// key → val lookup service over 50 master rows.
    fn kv_service(workers: usize) -> CleaningService {
        let input = Schema::of_strings("in", ["key", "val", "note"]).unwrap();
        let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
        let mut builder = RelationBuilder::new(ms.clone());
        for i in 0..50 {
            builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
        }
        let master = MasterData::new(builder.build().unwrap());
        let mut rules = RuleSet::new(input.clone(), ms.clone());
        rules
            .add(
                EditingRule::new(
                    "kv",
                    &input,
                    &ms,
                    vec![(0, 0)],
                    vec![(1, 1)],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
        CleaningService::new(
            Arc::new(master),
            Arc::new(rules),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    fn row(key: &str, val: &str, note: &str) -> Vec<Value> {
        vec![Value::str(key), Value::str(val), Value::str(note)]
    }

    #[test]
    fn session_lifecycle_in_process() {
        let service = kv_service(2);
        let mut client = LocalClient::in_process(&service);

        let hello = client.hello().unwrap();
        assert_eq!(
            hello.get("service").and_then(wire::Json::as_str),
            Some("cerfix-server")
        );

        let view = client.create_session(row("k3", "WRONG", "n")).unwrap();
        assert_eq!(view.status, "awaiting_user");
        assert_eq!(view.rounds, 0);
        assert_eq!(service.live_sessions(), 1);

        // Validating key fires the rule: val gets the certain fix v3.
        let after = client
            .validate(view.session, vec![("key".into(), Value::str("k3"))])
            .unwrap();
        assert_eq!(after.tuple[1], Value::str("v3"));
        assert_eq!(after.fixes.len(), 1);
        assert_eq!(after.fixes[0].0, "val");

        // note is rule-free: must be user-validated.
        let done = client
            .validate(view.session, vec![("note".into(), Value::str("n"))])
            .unwrap();
        assert!(done.is_complete());

        let commit = client.commit(view.session).unwrap();
        assert!(commit.complete);
        assert_eq!(commit.tuple, row("k3", "v3", "n"));
        assert_eq!(commit.user_validated, 2);
        assert_eq!(commit.auto_validated, 1);
        assert_eq!(service.live_sessions(), 0);

        // Committed sessions are gone.
        assert!(matches!(
            client.get_session(view.session),
            Err(ClientError::Server(_))
        ));
    }

    #[test]
    fn batch_clean_in_order() {
        let service = kv_service(4);
        let mut client = LocalClient::in_process(&service);
        let tuples: Vec<Vec<Value>> = (0..20)
            .map(|i| row(&format!("k{i}"), "WRONG", "x"))
            .collect();
        let outcomes = client
            .clean(tuples, vec!["key".into(), "note".into()])
            .unwrap();
        assert_eq!(outcomes.len(), 20);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.index as usize, i, "stream order stable");
            assert!(outcome.complete);
            assert_eq!(outcome.cells_fixed, 1);
            assert_eq!(outcome.tuple[1], Value::str(format!("v{i}")));
        }
        assert_eq!(service.metrics().tuples_cleaned, 20);
    }

    #[test]
    fn cache_and_check() {
        let service = kv_service(1);
        let mut client = LocalClient::in_process(&service);
        // Startup pre-computation already populated the default-k entry.
        let (cached, _regions) = client.regions(None).unwrap();
        assert!(cached, "pre-computed at startup");
        let (cached_again, _) = client.regions(None).unwrap();
        assert!(cached_again);
        // A different k misses once, then hits.
        let (miss, _) = client.regions(Some(3)).unwrap();
        assert!(!miss);
        let (hit, _) = client.regions(Some(3)).unwrap();
        assert!(hit);
        let (check_miss, consistent) = client.check(Some("strict")).unwrap();
        assert!(!check_miss);
        assert!(consistent);
        let (check_hit, _) = client.check(Some("strict")).unwrap();
        assert!(check_hit);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let service = kv_service(1);
        let mut client = LocalClient::in_process(&service);
        // Wrong arity.
        assert!(matches!(
            client.create_session(vec![Value::str("only-one")]),
            Err(ClientError::Server(_))
        ));
        // Unknown session.
        assert!(matches!(
            client.get_session(999),
            Err(ClientError::Server(_))
        ));
        // Unknown attribute.
        let view = client.create_session(row("k1", "x", "y")).unwrap();
        assert!(matches!(
            client.validate(view.session, vec![("nope".into(), Value::str("v"))]),
            Err(ClientError::Server(_))
        ));
        // Null validation value is rejected by the monitor.
        assert!(matches!(
            client.validate(view.session, vec![("key".into(), Value::Null)]),
            Err(ClientError::Server(_))
        ));
        // Malformed raw line.
        let response = service.handle_line("this is not json");
        assert!(response.contains("\"ok\":false"));
        assert!(service.metrics().errors >= 4);
    }

    #[test]
    fn tcp_round_trip() {
        let service = kv_service(2);
        let handle = Server::spawn("127.0.0.1:0", service).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let view = client.create_session(row("k7", "WRONG", "n")).unwrap();
        let after = client
            .validate(view.session, vec![("key".into(), Value::str("k7"))])
            .unwrap();
        assert_eq!(after.tuple[1], Value::str("v7"));
        // A second connection attaches to the same session.
        let mut other = Client::connect(handle.addr()).unwrap();
        let attached = other.get_session(view.session).unwrap();
        assert_eq!(attached.tuple[1], Value::str("v7"));
        other.abort(view.session).unwrap();
        assert!(matches!(
            client.get_session(view.session),
            Err(ClientError::Server(_))
        ));
        handle.shutdown().unwrap();
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let input = Schema::of_strings("in", ["a"]).unwrap();
        let ms = Schema::of_strings("m", ["a"]).unwrap();
        let master = MasterData::new(RelationBuilder::new(ms.clone()).build().unwrap());
        let rules = RuleSet::new(input, ms);
        let service = CleaningService::new(
            Arc::new(master),
            Arc::new(rules),
            ServiceConfig {
                workers: 1,
                session_ttl: Duration::from_millis(10),
                ..ServiceConfig::default()
            },
        );
        let mut client = LocalClient::in_process(&service);
        client.create_session(vec![Value::str("x")]).unwrap();
        assert_eq!(service.live_sessions(), 1);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(service.sweep_idle_sessions(), 1);
        assert_eq!(service.live_sessions(), 0);
        assert_eq!(service.metrics().sessions_evicted, 1);
    }
}
