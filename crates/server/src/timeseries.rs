//! In-process metric time series: periodic [`MetricsSnapshot`]s
//! retained in a bounded ring so *rates* — req/s, fsync/s, lag trend —
//! are computable server-side without external scrape infrastructure.
//!
//! The housekeeper thread records one sample per sweep (~1 s); the
//! `metrics.history` op reads the window back over the wire, and
//! `cerfix top --watch` diffs consecutive samples into per-op rate and
//! p99 columns. `cluster.status` uses the same window for its per-node
//! req/s figure.
//!
//! Samples are full snapshots behind a mutex — this is a once-a-second
//! background path plus occasional telemetry reads, never the request
//! hot path.

use crate::metrics::MetricsSnapshot;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::SystemTime;

/// Samples retained: ten minutes at the housekeeper's one-per-second
/// cadence.
const DEFAULT_SAMPLES: usize = 600;

/// One timestamped counter snapshot.
#[derive(Debug, Clone)]
pub(crate) struct Sample {
    /// Capture time, milliseconds since the unix epoch.
    pub unix_ms: u64,
    /// The counters at that instant.
    pub snapshot: MetricsSnapshot,
}

/// Bounded ring of timestamped snapshots, oldest evicted first.
pub(crate) struct TimeSeries {
    cap: usize,
    ring: Mutex<VecDeque<Sample>>,
}

impl TimeSeries {
    /// A ring retaining the default ten-minute window.
    pub(crate) fn new() -> TimeSeries {
        TimeSeries::with_capacity(DEFAULT_SAMPLES)
    }

    /// A ring retaining up to `cap` samples.
    pub(crate) fn with_capacity(cap: usize) -> TimeSeries {
        TimeSeries {
            cap: cap.max(2),
            ring: Mutex::new(VecDeque::with_capacity(cap.clamp(2, DEFAULT_SAMPLES))),
        }
    }

    /// Append one sample stamped now, evicting the oldest at capacity.
    pub(crate) fn record(&self, snapshot: MetricsSnapshot) {
        self.record_at(now_ms(), snapshot);
    }

    fn record_at(&self, unix_ms: u64, snapshot: MetricsSnapshot) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(Sample { unix_ms, snapshot });
    }

    /// The most recent `limit` samples in chronological order (newest
    /// last — the natural shape for rate math).
    pub(crate) fn history(&self, limit: usize) -> Vec<Sample> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Samples currently retained.
    pub(crate) fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Requests per second over the two most recent samples; falls back
    /// to the lifetime average from `current` when the window is too
    /// short for a differential rate (fresh boot, sampling disabled).
    pub(crate) fn request_rate(&self, current: &MetricsSnapshot) -> f64 {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= 2 {
            let newest = &ring[ring.len() - 1];
            let prior = &ring[ring.len() - 2];
            let dt_ms = newest.unix_ms.saturating_sub(prior.unix_ms);
            if dt_ms > 0 {
                let dr = newest
                    .snapshot
                    .requests
                    .saturating_sub(prior.snapshot.requests);
                return dr as f64 * 1000.0 / dt_ms as f64;
            }
        }
        current.requests as f64 / current.uptime_secs.max(1) as f64
    }
}

/// Milliseconds since the unix epoch (0 if the clock is before it).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis().min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(requests: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            requests,
            uptime_secs: 10,
            ..MetricsSnapshot::default()
        }
    }

    #[test]
    fn ring_evicts_oldest_and_history_is_chronological() {
        let ts = TimeSeries::with_capacity(3);
        for i in 0..5u64 {
            ts.record_at(1000 * i, snap(i * 100));
        }
        assert_eq!(ts.len(), 3);
        let all = ts.history(10);
        let stamps: Vec<u64> = all.iter().map(|s| s.unix_ms).collect();
        assert_eq!(stamps, vec![2000, 3000, 4000]);
        // A limit trims from the old end, keeping the newest.
        let two = ts.history(2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[1].unix_ms, 4000);
        assert_eq!(two[1].snapshot.requests, 400);
    }

    #[test]
    fn request_rate_diffs_the_newest_pair() {
        let ts = TimeSeries::with_capacity(8);
        ts.record_at(1_000, snap(100));
        ts.record_at(3_000, snap(700));
        // 600 requests over 2 seconds.
        let rate = ts.request_rate(&snap(700));
        assert!((rate - 300.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn request_rate_falls_back_to_lifetime_average() {
        let ts = TimeSeries::with_capacity(8);
        let rate = ts.request_rate(&snap(50));
        assert!((rate - 5.0).abs() < 1e-9, "50 requests / 10 s uptime");
        // One sample is still not a differential window.
        ts.record_at(1_000, snap(50));
        assert!((ts.request_rate(&snap(50)) - 5.0).abs() < 1e-9);
    }
}
