//! Dependency-free JSON: the service's wire format.
//!
//! One JSON value per protocol line (line-delimited JSON). The build
//! environment is offline, so instead of serde+serde_json this is a
//! small hand-rolled codec: a [`Json`] tree, a recursive-descent parser
//! and a compact renderer. Numbers are kept as `f64` — integers are
//! exact up to 2^53, far beyond any session id or attribute count the
//! service hands out.

use cerfix_relation::Value;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// Wire-format failure: malformed JSON or a type mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl Json {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object constructor preserving field order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convert a relational [`Value`] for the wire.
    pub fn from_value(value: &Value) -> Json {
        match value {
            Value::Null => Json::Null,
            Value::Str(s) => Json::Str(s.to_string()),
            Value::Int(i) => Json::Num(*i as f64),
            Value::Float(f) => Json::Num(*f),
            Value::Bool(b) => Json::Bool(*b),
        }
    }

    /// Convert a wire value into a relational [`Value`]. Integral
    /// numbers become `Int`, everything else maps structurally.
    pub fn to_value(&self) -> Result<Value, WireError> {
        Ok(match self {
            Json::Null => Value::Null,
            Json::Bool(b) => Value::Bool(*b),
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Value::Int(*n as i64),
            Json::Num(n) => Value::Float(*n),
            Json::Str(s) => Value::str(s),
            other => return Err(WireError(format!("cannot use {other:?} as a cell value"))),
        })
    }

    /// Parse one JSON value from `text` (must consume the whole string
    /// up to trailing whitespace). Nesting is capped at [`MAX_DEPTH`]
    /// so hostile input cannot overflow the parser's stack.
    pub fn parse(text: &str) -> Result<Json, WireError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(WireError(format!("trailing garbage at byte {pos}")));
        }
        Ok(value)
    }

    /// Compact single-line rendering (safe for line-delimited framing:
    /// strings escape control characters including newlines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_into(self, &mut out);
        out
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), WireError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(WireError(format!("expected `{token}` at byte {}", *pos)))
    }
}

/// Maximum container nesting [`Json::parse`] accepts. Recursion depth
/// bounds stack use; anything legitimately deeper than this is not a
/// protocol message.
pub const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError(format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(WireError("unexpected end of input".into())),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(WireError(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(WireError(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&other) => Err(WireError(format!(
            "unexpected byte {:?} at {}",
            other as char, *pos
        ))),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = bytes.get(*pos) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| WireError("invalid utf8 in number".into()))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| WireError(format!("invalid number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(WireError(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(WireError("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            *pos += 1;
                            expect(bytes, pos, "\\u")
                                .map_err(|_| WireError("lone high surrogate".into()))?;
                            *pos -= 1; // parse_hex4 expects pos at the `u`
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(WireError("invalid low surrogate".into()));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| WireError(format!("invalid codepoint {code:#x}")))?,
                        );
                    }
                    _ => return Err(WireError("invalid escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| WireError("invalid utf8 in string".into()))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parse `uXXXX` with `pos` at the `u`; leaves `pos` at the final hex
/// digit (the caller advances past it).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, WireError> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(WireError("truncated \\u escape".into()));
    }
    let hex = std::str::from_utf8(&bytes[start..end])
        .map_err(|_| WireError("invalid \\u escape".into()))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| WireError("invalid \\u escape".into()))?;
    *pos = end - 1;
    Ok(code)
}

fn render_into(json: &Json, out: &mut String) {
    match json {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                out.push_str(&format!("{}", *n as i64));
            } else if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                // JSON has no Inf/NaN; null is the least-bad rendering.
                out.push_str("null");
            }
        }
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render_into(value, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "-17", "3.5", "\"hi\"", "[]", "{}",
        ] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text =
            r#"{"op":"clean","tuples":[["a",1,null,true],["b\n\"x\"",2.5,{},[]]],"trust":["zip"]}"#;
        let parsed = Json::parse(text).unwrap();
        let rendered = parsed.render();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
        assert!(!rendered.contains('\n'), "line-delimited framing safe");
    }

    #[test]
    fn string_escapes() {
        let parsed = Json::parse(r#""a\u0041\n\t\\ \u00e9 \ud83e\udd80""#).unwrap();
        assert_eq!(parsed, Json::Str("aA\n\t\\ é 🦀".to_string()));
        let rendered = parsed.render();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn object_accessors() {
        let json = Json::parse(r#"{"a":1,"b":"x","c":[true],"d":null}"#).unwrap();
        assert_eq!(json.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            json.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(json.get("missing"), None);
    }

    #[test]
    fn value_conversions() {
        let cases = [
            (Json::Null, Value::Null),
            (Json::Bool(true), Value::Bool(true)),
            (Json::Num(42.0), Value::Int(42)),
            (Json::Num(2.5), Value::Float(2.5)),
            (Json::str("x"), Value::str("x")),
        ];
        for (json, value) in cases {
            assert_eq!(json.to_value().unwrap(), value);
            // from_value inverts (Int renders as integral Num).
            assert_eq!(Json::from_value(&value).to_value().unwrap(), value);
        }
        assert!(Json::Arr(vec![]).to_value().is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "\"",
            "{\"a\"}",
            "nul",
            "1 2",
            "{\"a\":}",
            "\"\\u12\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_rejected_not_overflowed() {
        // A hostile 200k-bracket line must come back as an error, not
        // blow the connection thread's stack.
        let hostile = "[".repeat(200_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.0.contains("nesting"), "{err}");
        // Same guard on objects.
        let objects = "{\"a\":".repeat(200_000);
        assert!(Json::parse(&objects).is_err());
        // Depth just under the cap still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }
}
