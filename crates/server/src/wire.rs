//! Dependency-free JSON: the service's wire format.
//!
//! One JSON value per protocol line (line-delimited JSON). The build
//! environment is offline, so instead of serde+serde_json this is a
//! small hand-rolled codec: a [`Json`] tree, a recursive-descent parser
//! and a compact renderer. Numbers are kept as `f64` — integers are
//! exact up to 2^53, far beyond any session id or attribute count the
//! service hands out.

use cerfix_relation::Value;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// Wire-format failure: malformed JSON or a type mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl Json {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object constructor preserving field order.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convert a relational [`Value`] for the wire.
    pub fn from_value(value: &Value) -> Json {
        match value {
            Value::Null => Json::Null,
            Value::Str(s) => Json::Str(s.to_string()),
            Value::Int(i) => Json::Num(*i as f64),
            Value::Float(f) => Json::Num(*f),
            Value::Bool(b) => Json::Bool(*b),
        }
    }

    /// Convert a wire value into a relational [`Value`]. Integral
    /// numbers become `Int`, everything else maps structurally.
    pub fn to_value(&self) -> Result<Value, WireError> {
        Ok(match self {
            Json::Null => Value::Null,
            Json::Bool(b) => Value::Bool(*b),
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Value::Int(*n as i64),
            Json::Num(n) => Value::Float(*n),
            Json::Str(s) => Value::str(s),
            other => return Err(WireError(format!("cannot use {other:?} as a cell value"))),
        })
    }

    /// Parse one JSON value from `text` (must consume the whole string
    /// up to trailing whitespace). Nesting is capped at [`MAX_DEPTH`]
    /// so hostile input cannot overflow the parser's stack.
    pub fn parse(text: &str) -> Result<Json, WireError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(WireError(format!("trailing garbage at byte {pos}")));
        }
        Ok(value)
    }

    /// Compact single-line rendering (safe for line-delimited framing:
    /// strings escape control characters including newlines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_into(self, &mut out);
        out
    }

    /// Render into a caller-supplied buffer (appended; not cleared) —
    /// the allocation-free shape of [`render`](Self::render) for callers
    /// that reuse a per-connection buffer.
    pub fn render_to(&self, out: &mut String) {
        render_into(self, out);
    }
}

/// Render a response object into `out`, echoing the client-supplied
/// request `id` (its raw JSON span, byte-for-byte) as the first field.
/// With `id` = `None` this is exactly [`Json::render_to`]. Non-object
/// responses never occur on the wire; they render unchanged.
pub fn render_response_into(json: &Json, id: Option<&str>, out: &mut String) {
    match (json, id) {
        (Json::Obj(fields), Some(raw)) => {
            out.push_str("{\"id\":");
            out.push_str(raw);
            for (key, value) in fields {
                out.push(',');
                render_string(key, out);
                out.push(':');
                render_into(value, out);
            }
            out.push('}');
        }
        _ => render_into(json, out),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), WireError> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(WireError(format!("expected `{token}` at byte {}", *pos)))
    }
}

/// Maximum container nesting [`Json::parse`] accepts. Recursion depth
/// bounds stack use; anything legitimately deeper than this is not a
/// protocol message.
pub const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError(format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(WireError("unexpected end of input".into())),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(WireError(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(WireError(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&other) => Err(WireError(format!(
            "unexpected byte {:?} at {}",
            other as char, *pos
        ))),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, WireError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = bytes.get(*pos) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| WireError("invalid utf8 in number".into()))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| WireError(format!("invalid number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(WireError(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(WireError("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            *pos += 1;
                            expect(bytes, pos, "\\u")
                                .map_err(|_| WireError("lone high surrogate".into()))?;
                            *pos -= 1; // parse_hex4 expects pos at the `u`
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(WireError("invalid low surrogate".into()));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| WireError(format!("invalid codepoint {code:#x}")))?,
                        );
                    }
                    _ => return Err(WireError("invalid escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| WireError("invalid utf8 in string".into()))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parse `uXXXX` with `pos` at the `u`; leaves `pos` at the final hex
/// digit (the caller advances past it).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, WireError> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(WireError("truncated \\u escape".into()));
    }
    let hex = std::str::from_utf8(&bytes[start..end])
        .map_err(|_| WireError("invalid \\u escape".into()))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| WireError("invalid \\u escape".into()))?;
    *pos = end - 1;
    Ok(code)
}

fn render_into(json: &Json, out: &mut String) {
    match json {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => render_num(*n, out),
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render_into(value, out);
            }
            out.push('}');
        }
    }
}

/// Render a JSON number without intermediate allocation. Integral
/// finite values in the exact range render as integers.
pub(crate) fn render_num(n: f64, out: &mut String) {
    use std::fmt::Write;
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; null is the least-bad rendering.
        out.push_str("null");
    }
}

pub(crate) fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub mod scan {
    //! Zero-allocation slice scanner for the hot request shapes.
    //!
    //! The tree parser ([`Json::parse`](super::Json::parse)) builds an
    //! owned value per line — correct, but every string, array and
    //! object costs a heap allocation. The scanner instead walks the
    //! line in place and hands out **borrowed** slices: string content
    //! comes back as `&str` spans of the input (with an `escaped` flag;
    //! unescaping is deferred to [`RawStr::unescape_into`], which writes
    //! into a caller-supplied, reusable buffer), and containers come
    //! back as raw spans to re-scan on demand. The fast request paths in
    //! [`protocol`](crate::protocol) and the service are built on this;
    //! anything the scanner finds irregular falls back to the tree
    //! parser so error messages stay identical.

    /// A scanned string: the content between the quotes, escapes intact.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RawStr<'a> {
        content: &'a str,
        escaped: bool,
    }

    impl<'a> RawStr<'a> {
        /// The string as a borrowed slice, when it contains no escapes
        /// (the overwhelmingly common case on this protocol).
        pub fn as_plain(&self) -> Option<&'a str> {
            (!self.escaped).then_some(self.content)
        }

        /// Unescape into `buf` (cleared first) and return the result —
        /// borrowed from the input when no escapes are present, from
        /// `buf` otherwise. `None` on an invalid escape sequence.
        pub fn unescape_into<'b>(&self, buf: &'b mut String) -> Option<&'b str>
        where
            'a: 'b,
        {
            if !self.escaped {
                return Some(self.content);
            }
            buf.clear();
            let bytes = self.content.as_bytes();
            let mut pos = 0usize;
            while pos < bytes.len() {
                if bytes[pos] != b'\\' {
                    // Copy the run up to the next escape in one go.
                    let start = pos;
                    while pos < bytes.len() && bytes[pos] != b'\\' {
                        pos += 1;
                    }
                    buf.push_str(&self.content[start..pos]);
                    continue;
                }
                pos += 1;
                match bytes.get(pos)? {
                    b'"' => buf.push('"'),
                    b'\\' => buf.push('\\'),
                    b'/' => buf.push('/'),
                    b'b' => buf.push('\u{8}'),
                    b'f' => buf.push('\u{c}'),
                    b'n' => buf.push('\n'),
                    b'r' => buf.push('\r'),
                    b't' => buf.push('\t'),
                    b'u' => {
                        let hi = hex4(bytes, pos + 1)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the \uXXXX low half.
                            if bytes.get(pos + 5) != Some(&b'\\')
                                || bytes.get(pos + 6) != Some(&b'u')
                            {
                                return None;
                            }
                            let lo = hex4(bytes, pos + 7)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return None;
                            }
                            pos += 10;
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            pos += 4;
                            hi
                        };
                        buf.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
                pos += 1;
            }
            Some(buf.as_str())
        }
    }

    fn hex4(bytes: &[u8], start: usize) -> Option<u32> {
        let hex = bytes.get(start..start + 4)?;
        u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()
    }

    /// One scanned value: scalars carry their payload, containers carry
    /// their raw span (including brackets) for on-demand re-scanning.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum RawValue<'a> {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number.
        Num(f64),
        /// A string (content between the quotes, escapes intact).
        Str(RawStr<'a>),
        /// An array: the raw `[...]` span.
        Arr(&'a str),
        /// An object: the raw `{...}` span.
        Obj(&'a str),
    }

    impl<'a> RawValue<'a> {
        /// The numeric payload as u64, if this is a non-negative
        /// integer (mirrors [`Json::as_u64`](super::Json::as_u64)).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                RawValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    /// Byte cursor shared by the field and element iterators.
    struct Cursor<'a> {
        text: &'a str,
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        fn bytes(&self) -> &'a [u8] {
            self.text.as_bytes()
        }

        fn skip_ws(&mut self) {
            while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes().get(self.pos) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes().get(self.pos).copied()
        }

        /// Scan a string starting at the opening quote; leaves `pos`
        /// past the closing quote.
        fn string(&mut self) -> Option<RawStr<'a>> {
            let bytes = self.bytes();
            if bytes.get(self.pos) != Some(&b'"') {
                return None;
            }
            let start = self.pos + 1;
            let mut pos = start;
            let mut escaped = false;
            loop {
                match bytes.get(pos)? {
                    b'"' => break,
                    b'\\' => {
                        escaped = true;
                        pos += 2;
                    }
                    _ => pos += 1,
                }
            }
            self.pos = pos + 1;
            // `start..pos` always lands on char boundaries: it is
            // delimited by ASCII quotes/backslashes.
            Some(RawStr {
                content: self.text.get(start..pos)?,
                escaped,
            })
        }

        fn number(&mut self) -> Option<f64> {
            let bytes = self.bytes();
            let start = self.pos;
            let mut pos = start;
            if bytes.get(pos) == Some(&b'-') {
                pos += 1;
            }
            while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = bytes.get(pos) {
                pos += 1;
            }
            self.pos = pos;
            self.text.get(start..pos)?.parse().ok()
        }

        /// Skip one container starting at its opening bracket,
        /// returning the raw span (brackets included). Iterative —
        /// hostile nesting cannot overflow the stack here (depth is
        /// enforced by the tree parser if the span is ever parsed).
        fn container(&mut self) -> Option<&'a str> {
            let bytes = self.bytes();
            let start = self.pos;
            let mut depth = 0usize;
            let mut pos = start;
            loop {
                match bytes.get(pos)? {
                    b'{' | b'[' => {
                        depth += 1;
                        pos += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        pos += 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    b'"' => {
                        pos += 1;
                        loop {
                            match bytes.get(pos)? {
                                b'"' => break,
                                b'\\' => pos += 2,
                                _ => pos += 1,
                            }
                        }
                        pos += 1;
                    }
                    _ => pos += 1,
                }
            }
            self.pos = pos;
            self.text.get(start..pos)
        }

        fn value(&mut self) -> Option<RawValue<'a>> {
            self.skip_ws();
            match self.peek()? {
                b'n' => self.literal("null", RawValue::Null),
                b't' => self.literal("true", RawValue::Bool(true)),
                b'f' => self.literal("false", RawValue::Bool(false)),
                b'"' => self.string().map(RawValue::Str),
                b'-' | b'0'..=b'9' => self.number().map(RawValue::Num),
                b'[' => self.container().map(RawValue::Arr),
                b'{' => self.container().map(RawValue::Obj),
                _ => None,
            }
        }

        fn literal(&mut self, token: &str, value: RawValue<'a>) -> Option<RawValue<'a>> {
            if self.text[self.pos..].starts_with(token) {
                self.pos += token.len();
                Some(value)
            } else {
                None
            }
        }
    }

    /// Field iterator over one JSON object. Any scan failure (malformed
    /// input) surfaces as `None` from [`ObjectScanner::next_field`] with
    /// [`ObjectScanner::ok`] false — callers treat that as "fall back
    /// to the tree parser".
    pub struct ObjectScanner<'a> {
        cursor: Cursor<'a>,
        first: bool,
        done: bool,
        failed: bool,
    }

    impl<'a> ObjectScanner<'a> {
        /// Scan `text` as a single object (leading/trailing whitespace
        /// tolerated). `None` if it does not start with `{`.
        pub fn new(text: &'a str) -> Option<ObjectScanner<'a>> {
            let mut cursor = Cursor { text, pos: 0 };
            cursor.skip_ws();
            if cursor.peek() != Some(b'{') {
                return None;
            }
            cursor.pos += 1;
            Some(ObjectScanner {
                cursor,
                first: true,
                done: false,
                failed: false,
            })
        }

        /// The next `(key, value, raw value span)` triple, or `None` at
        /// the end of the object (check [`ok`](Self::ok) to distinguish
        /// the clean end from malformed input). The raw span is the
        /// value's exact bytes in the input — what an `id` echo writes
        /// back verbatim.
        #[allow(clippy::should_implement_trait)]
        pub fn next_field(&mut self) -> Option<(RawStr<'a>, RawValue<'a>, &'a str)> {
            if self.done || self.failed {
                return None;
            }
            self.cursor.skip_ws();
            if self.first && self.cursor.peek() == Some(b'}') {
                self.cursor.pos += 1;
                return self.finish();
            }
            if !self.first {
                match self.cursor.peek() {
                    Some(b',') => self.cursor.pos += 1,
                    Some(b'}') => {
                        self.cursor.pos += 1;
                        return self.finish();
                    }
                    _ => return self.fail(),
                }
                self.cursor.skip_ws();
            }
            self.first = false;
            let Some(key) = self.cursor.string() else {
                return self.fail();
            };
            self.cursor.skip_ws();
            if self.cursor.peek() != Some(b':') {
                return self.fail();
            }
            self.cursor.pos += 1;
            self.cursor.skip_ws();
            let start = self.cursor.pos;
            let Some(value) = self.cursor.value() else {
                return self.fail();
            };
            let span = &self.cursor.text[start..self.cursor.pos];
            Some((key, value, span))
        }

        fn finish(&mut self) -> Option<(RawStr<'a>, RawValue<'a>, &'a str)> {
            self.cursor.skip_ws();
            if self.cursor.pos != self.cursor.text.len() {
                self.failed = true; // trailing garbage → tree parser
            }
            self.done = true;
            None
        }

        fn fail(&mut self) -> Option<(RawStr<'a>, RawValue<'a>, &'a str)> {
            self.failed = true;
            None
        }

        /// True iff scanning ended at a well-formed `}` with nothing
        /// but whitespace after it.
        pub fn ok(&self) -> bool {
            self.done && !self.failed
        }
    }

    /// Element iterator over one JSON array span (as returned in
    /// [`RawValue::Arr`]).
    pub struct ArrayScanner<'a> {
        cursor: Cursor<'a>,
        first: bool,
        done: bool,
        failed: bool,
    }

    impl<'a> ArrayScanner<'a> {
        /// Scan `text` as a single array. `None` if it does not start
        /// with `[`.
        pub fn new(text: &'a str) -> Option<ArrayScanner<'a>> {
            let mut cursor = Cursor { text, pos: 0 };
            cursor.skip_ws();
            if cursor.peek() != Some(b'[') {
                return None;
            }
            cursor.pos += 1;
            Some(ArrayScanner {
                cursor,
                first: true,
                done: false,
                failed: false,
            })
        }

        /// The next element, or `None` at the end (check
        /// [`ok`](Self::ok)).
        #[allow(clippy::should_implement_trait)]
        pub fn next_value(&mut self) -> Option<RawValue<'a>> {
            if self.done || self.failed {
                return None;
            }
            self.cursor.skip_ws();
            if self.first && self.cursor.peek() == Some(b']') {
                self.cursor.pos += 1;
                self.done = true;
                return None;
            }
            if !self.first {
                match self.cursor.peek() {
                    Some(b',') => self.cursor.pos += 1,
                    Some(b']') => {
                        self.cursor.pos += 1;
                        self.done = true;
                        return None;
                    }
                    _ => {
                        self.failed = true;
                        return None;
                    }
                }
            }
            self.first = false;
            match self.cursor.value() {
                Some(value) => Some(value),
                None => {
                    self.failed = true;
                    None
                }
            }
        }

        /// True iff scanning ended at a well-formed `]`.
        pub fn ok(&self) -> bool {
            self.done && !self.failed
        }
    }
}

/// Direct JSON writer: builds a response straight into a caller-supplied
/// `String`, no intermediate [`Json`] tree. Produces byte-identical
/// output to rendering the equivalent tree (guarded by tests), so the
/// fast service paths and the tree fallback are indistinguishable on the
/// wire. Comma state is a bitmask over nesting depth — the writer itself
/// never allocates beyond what it appends to `out`.
pub struct JsonWriter<'a> {
    out: &'a mut String,
    /// Bit d set ⇔ a value was already written at depth d (so the next
    /// key/element needs a comma). Depth is capped well below 64 by the
    /// response shapes.
    comma: u64,
    depth: u32,
}

impl<'a> JsonWriter<'a> {
    /// Write into `out` (appended; not cleared).
    pub fn new(out: &'a mut String) -> JsonWriter<'a> {
        JsonWriter {
            out,
            comma: 0,
            depth: 0,
        }
    }

    fn sep(&mut self) {
        if self.comma & (1 << self.depth) != 0 {
            self.out.push(',');
        }
        self.comma |= 1 << self.depth;
    }

    /// Open an object (as a bare value or array element).
    pub fn begin_obj(&mut self) {
        self.sep();
        self.out.push('{');
        self.depth += 1;
        self.comma &= !(1 << self.depth);
    }

    /// Open a response object, echoing the raw request `id` span first.
    pub fn begin_response(&mut self, id: Option<&str>) {
        self.begin_obj();
        if let Some(raw) = id {
            self.key("id");
            self.raw(raw);
        }
    }

    /// Close the current object.
    pub fn end_obj(&mut self) {
        self.depth -= 1;
        self.out.push('}');
    }

    /// Open an array (as a bare value or element).
    pub fn begin_arr(&mut self) {
        self.sep();
        self.out.push('[');
        self.depth += 1;
        self.comma &= !(1 << self.depth);
    }

    /// Close the current array.
    pub fn end_arr(&mut self) {
        self.depth -= 1;
        self.out.push(']');
    }

    /// Write an object key (the next write is its value).
    pub fn key(&mut self, name: &str) {
        self.sep();
        render_string(name, self.out);
        self.out.push(':');
        // The key's value must not emit a comma.
        self.comma &= !(1 << self.depth);
    }

    /// A string value.
    pub fn str_val(&mut self, s: &str) {
        self.sep();
        render_string(s, self.out);
    }

    /// A numeric value (same formatting as [`Json::Num`]).
    pub fn num(&mut self, n: f64) {
        self.sep();
        render_num(n, self.out);
    }

    /// A boolean value.
    pub fn bool_val(&mut self, b: bool) {
        self.sep();
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// A raw, pre-rendered JSON span (written verbatim).
    pub fn raw(&mut self, raw: &str) {
        self.sep();
        self.out.push_str(raw);
    }

    /// A relational [`Value`], rendered exactly as
    /// `Json::from_value(v).render()` would.
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => {
                self.sep();
                self.out.push_str("null");
            }
            Value::Str(s) => self.str_val(s),
            Value::Int(i) => self.num(*i as f64),
            Value::Float(f) => self.num(*f),
            Value::Bool(b) => self.bool_val(*b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "-17", "3.5", "\"hi\"", "[]", "{}",
        ] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text =
            r#"{"op":"clean","tuples":[["a",1,null,true],["b\n\"x\"",2.5,{},[]]],"trust":["zip"]}"#;
        let parsed = Json::parse(text).unwrap();
        let rendered = parsed.render();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
        assert!(!rendered.contains('\n'), "line-delimited framing safe");
    }

    #[test]
    fn string_escapes() {
        let parsed = Json::parse(r#""a\u0041\n\t\\ \u00e9 \ud83e\udd80""#).unwrap();
        assert_eq!(parsed, Json::Str("aA\n\t\\ é 🦀".to_string()));
        let rendered = parsed.render();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn object_accessors() {
        let json = Json::parse(r#"{"a":1,"b":"x","c":[true],"d":null}"#).unwrap();
        assert_eq!(json.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            json.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(json.get("missing"), None);
    }

    #[test]
    fn value_conversions() {
        let cases = [
            (Json::Null, Value::Null),
            (Json::Bool(true), Value::Bool(true)),
            (Json::Num(42.0), Value::Int(42)),
            (Json::Num(2.5), Value::Float(2.5)),
            (Json::str("x"), Value::str("x")),
        ];
        for (json, value) in cases {
            assert_eq!(json.to_value().unwrap(), value);
            // from_value inverts (Int renders as integral Num).
            assert_eq!(Json::from_value(&value).to_value().unwrap(), value);
        }
        assert!(Json::Arr(vec![]).to_value().is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            "\"",
            "{\"a\"}",
            "nul",
            "1 2",
            "{\"a\":}",
            "\"\\u12\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn scanner_walks_objects_without_allocating_plain_strings() {
        let line = r#"{"op":"session.get","session":7,"id":42,"extra":[1,{"a":2}],"s":"h\ni"}"#;
        let mut scanner = scan::ObjectScanner::new(line).unwrap();
        let mut seen = Vec::new();
        let mut buf = String::new();
        while let Some((key, value, span)) = scanner.next_field() {
            let key = key.as_plain().unwrap().to_string();
            match value {
                scan::RawValue::Str(s) => {
                    seen.push((key, format!("str:{}", s.unescape_into(&mut buf).unwrap())));
                }
                scan::RawValue::Num(n) => seen.push((key, format!("num:{n} span:{span}"))),
                scan::RawValue::Arr(raw) => seen.push((key, format!("arr:{raw}"))),
                other => seen.push((key, format!("{other:?}"))),
            }
        }
        assert!(scanner.ok());
        assert_eq!(
            seen,
            vec![
                ("op".into(), "str:session.get".into()),
                ("session".into(), "num:7 span:7".into()),
                ("id".into(), "num:42 span:42".into()),
                ("extra".into(), "arr:[1,{\"a\":2}]".into()),
                ("s".into(), "str:h\ni".into()),
            ]
        );
    }

    #[test]
    fn scanner_matches_tree_parser_verdicts() {
        // Lines the tree parser accepts must scan cleanly; lines it
        // rejects must scan as failed (→ the fallback owns the error).
        for line in [
            r#"{"a":1}"#,
            r#"{}"#,
            r#"{"a":"x","b":[true,null],"c":{"d":1.5}}"#,
            r#"  {"a" : 1 }  "#,
        ] {
            let mut scanner = scan::ObjectScanner::new(line).unwrap();
            while scanner.next_field().is_some() {}
            assert!(scanner.ok(), "{line}");
        }
        for line in [r#"{"a":}"#, r#"{"a":1,}"#, r#"{"a" 1}"#, r#"{"a":1}x"#] {
            let mut scanner = scan::ObjectScanner::new(line).unwrap();
            while scanner.next_field().is_some() {}
            assert!(!scanner.ok(), "{line} must fail the scan");
        }
        assert!(scan::ObjectScanner::new("[1]").is_none());
    }

    #[test]
    fn array_scanner_iterates_scalars() {
        let mut scanner = scan::ArrayScanner::new(r#"["a", 2, null, true]"#).unwrap();
        let mut n = 0;
        while scanner.next_value().is_some() {
            n += 1;
        }
        assert!(scanner.ok());
        assert_eq!(n, 4);
        let mut bad = scan::ArrayScanner::new("[1,]").unwrap();
        while bad.next_value().is_some() {}
        assert!(!bad.ok());
    }

    #[test]
    fn unescape_handles_escapes_and_surrogates() {
        let line = r#"{"k":"aA\n\t\\ é 🦀"}"#;
        let mut scanner = scan::ObjectScanner::new(line).unwrap();
        let (_, value, _) = scanner.next_field().unwrap();
        let scan::RawValue::Str(s) = value else {
            panic!("string expected")
        };
        let mut buf = String::new();
        assert_eq!(s.unescape_into(&mut buf), Some("aA\n\t\\ é 🦀"));
    }

    #[test]
    fn json_writer_matches_tree_render() {
        // The exact response shape the fast paths write by hand.
        let tree = Json::obj([
            ("ok", Json::Bool(true)),
            ("session", Json::Num(7.0)),
            ("tuple", Json::Arr(vec![Json::str("a\nb"), Json::Num(2.5)])),
            (
                "fixes",
                Json::Arr(vec![Json::obj([
                    ("attr", Json::str("zip")),
                    ("old", Json::Null),
                ])]),
            ),
        ]);
        let mut direct = String::new();
        let mut w = JsonWriter::new(&mut direct);
        w.begin_obj();
        w.key("ok");
        w.bool_val(true);
        w.key("session");
        w.num(7.0);
        w.key("tuple");
        w.begin_arr();
        w.str_val("a\nb");
        w.num(2.5);
        w.end_arr();
        w.key("fixes");
        w.begin_arr();
        w.begin_obj();
        w.key("attr");
        w.str_val("zip");
        w.key("old");
        w.value(&Value::Null);
        w.end_obj();
        w.end_arr();
        w.end_obj();
        assert_eq!(direct, tree.render());
    }

    #[test]
    fn response_id_echo_is_verbatim_and_first() {
        let response = Json::obj([("ok", Json::Bool(true)), ("n", Json::Num(3.0))]);
        for id in ["17", "\"req-9\"", "1.50", "null"] {
            let mut out = String::new();
            render_response_into(&response, Some(id), &mut out);
            assert_eq!(out, format!("{{\"id\":{id},\"ok\":true,\"n\":3}}"));
        }
        let mut out = String::new();
        render_response_into(&response, None, &mut out);
        assert_eq!(out, response.render());
        // Writer-side echo agrees.
        let mut direct = String::new();
        let mut w = JsonWriter::new(&mut direct);
        w.begin_response(Some("17"));
        w.key("ok");
        w.bool_val(true);
        w.key("n");
        w.num(3.0);
        w.end_obj();
        let mut expected = String::new();
        render_response_into(&response, Some("17"), &mut expected);
        assert_eq!(direct, expected);
    }

    #[test]
    fn deep_nesting_rejected_not_overflowed() {
        // A hostile 200k-bracket line must come back as an error, not
        // blow the connection thread's stack.
        let hostile = "[".repeat(200_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.0.contains("nesting"), "{err}");
        // Same guard on objects.
        let objects = "{\"a\":".repeat(200_000);
        assert!(Json::parse(&objects).is_err());
        // Depth just under the cap still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }
}
