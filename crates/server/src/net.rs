//! TCP front ends: line-delimited JSON over `std::net`.
//!
//! Two interchangeable front ends serve the same [`CleaningService`]
//! behind one [`Server`] API:
//!
//! * [`Frontend::Epoll`] (Linux) — a readiness loop on raw `epoll`
//!   (see [`reactor`](crate::reactor)): one reactor thread multiplexes
//!   every connection with nonblocking sockets, per-connection
//!   read/write buffers with backpressure, and CPU-heavy ops dispatched
//!   to the service worker pool. Responses are written back in request
//!   order per connection, so clients may pipeline freely.
//! * [`Frontend::Threads`] — portable thread-per-connection fallback:
//!   blocking reads, one OS thread per client.
//!
//! Both complete a shutdown in milliseconds: the service's shutdown
//! hooks wake the epoll loop through its wakeup fd, and unblock the
//! threaded front end by half-closing every connection (read side) and
//! poking the blocked `accept` with a loopback connect — no poll
//! timeouts anywhere. Housekeeping (idle-session sweeps, snapshot
//! policy) runs on a dedicated timer thread shared by both front ends.

use crate::protocol::RequestScratch;
use crate::service::CleaningService;
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// How often the housekeeper sweeps idle sessions / checks the
/// snapshot policy.
const SWEEP_EVERY: Duration = Duration::from_secs(1);
/// Hard cap on one request line; a batch `clean` of thousands of tuples
/// fits comfortably, a newline-less byte stream does not. Only the
/// *partial* line is bounded — a burst of complete pipelined lines
/// larger than this is fine (they drain as they arrive).
pub(crate) const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;
/// Reply sent before hanging up on an over-long line.
pub(crate) const OVERSIZE_REPLY: &str =
    "{\"ok\":false,\"error\":\"request line exceeds 8 MiB; closing\"}\n";
/// Reply to a line that is not valid UTF-8 (the connection survives).
pub(crate) const NON_UTF8_REPLY: &str =
    "{\"ok\":false,\"error\":\"request line is not valid UTF-8\"}\n";

/// Handle one raw request line, appending its newline-terminated
/// response to `out`. Returns false for blank lines (no response).
///
/// This is THE per-line semantics of the protocol — UTF-8 check, blank
/// skip, trim, dispatch — shared by the threaded connection loop, the
/// reactor's inline path and its worker-pool batch jobs, so all
/// execution paths are wire-identical by construction (and the
/// chunking proptest holds them to it).
pub(crate) fn respond_line(
    service: &CleaningService,
    line_bytes: &[u8],
    out: &mut String,
    scratch: &mut RequestScratch,
    received: Instant,
) -> bool {
    let Ok(line) = std::str::from_utf8(line_bytes) else {
        out.push_str(NON_UTF8_REPLY);
        return true;
    };
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return false;
    }
    service.handle_line_at(trimmed, out, scratch, received);
    out.push('\n');
    true
}

/// Which I/O architecture a [`Server`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// One OS thread per connection, blocking reads (portable).
    Threads,
    /// Readiness loop over raw `epoll` (Linux). On other platforms this
    /// silently falls back to [`Frontend::Threads`].
    Epoll,
}

impl Frontend {
    /// The best front end for this platform: epoll on Linux, threads
    /// elsewhere.
    pub fn auto() -> Frontend {
        if cfg!(target_os = "linux") {
            Frontend::Epoll
        } else {
            Frontend::Threads
        }
    }

    /// Parse a `--frontend` value (`epoll` / `threads` / `auto`).
    pub fn parse(name: &str) -> Option<Frontend> {
        match name {
            "epoll" => Some(Frontend::Epoll),
            "threads" => Some(Frontend::Threads),
            "auto" => Some(Frontend::auto()),
            _ => None,
        }
    }

    /// The name `parse` accepts for this front end.
    pub fn name(&self) -> &'static str {
        match self {
            Frontend::Threads => "threads",
            Frontend::Epoll => "epoll",
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    service: CleaningService,
    listener: TcpListener,
    frontend: Frontend,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7117`, or port 0 for ephemeral) with
    /// the platform-default front end.
    pub fn bind(addr: impl ToSocketAddrs, service: CleaningService) -> std::io::Result<Server> {
        Server::bind_with(addr, service, Frontend::auto())
    }

    /// Bind with an explicit front end.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: CleaningService,
        frontend: Frontend,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            service,
            listener,
            frontend,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The front end this server will run.
    pub fn frontend(&self) -> Frontend {
        self.frontend
    }

    /// Serve until a `shutdown` request arrives. Blocks the calling
    /// thread.
    pub fn run(self) -> std::io::Result<()> {
        let housekeeper = Housekeeper::start(self.service.clone());
        let result = match self.frontend {
            Frontend::Threads => run_threads(self.listener, &self.service),
            #[cfg(target_os = "linux")]
            Frontend::Epoll => crate::reactor::run_epoll(self.listener, &self.service),
            #[cfg(not(target_os = "linux"))]
            Frontend::Epoll => run_threads(self.listener, &self.service),
        };
        housekeeper.stop();
        // A graceful shutdown leaves a fresh snapshot so the next boot
        // replays an empty journal (best effort).
        let _ = self.service.snapshot_now();
        result
    }

    /// Bind-and-run on a background thread; returns a handle with the
    /// bound address. The standard shape for tests and embedders.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        service: CleaningService,
    ) -> std::io::Result<ServerHandle> {
        Server::spawn_with(addr, service, Frontend::auto())
    }

    /// [`spawn`](Self::spawn) with an explicit front end.
    pub fn spawn_with(
        addr: impl ToSocketAddrs,
        service: CleaningService,
        frontend: Frontend,
    ) -> std::io::Result<ServerHandle> {
        let server = Server::bind_with(addr, service.clone(), frontend)?;
        let addr = server.local_addr()?;
        let thread = thread::Builder::new()
            .name("cerfix-server-accept".into())
            .spawn(move || server.run())
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            service,
            thread: Some(thread),
        })
    }
}

/// Periodic service housekeeping on its own timer thread (idle-session
/// eviction, snapshot policy) — so neither front end needs a poll
/// timeout in its accept path. Stops within one condvar notification.
struct Housekeeper {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Housekeeper {
    fn start(service: CleaningService) -> Housekeeper {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("cerfix-housekeeper".into())
            .spawn(move || {
                let (flag, wake) = &*shared;
                let mut stopped = flag.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if *stopped {
                        return;
                    }
                    let (guard, _) = wake
                        .wait_timeout(stopped, SWEEP_EVERY)
                        .unwrap_or_else(PoisonError::into_inner);
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    service.sweep_idle_sessions();
                    // Periodic durability housekeeping: install a
                    // snapshot (and truncate the journal) when the
                    // policy says so.
                    if let Err(e) = service.maybe_snapshot() {
                        service.diag().error(
                            crate::diag::Subsystem::Journal,
                            format_args!("snapshot failed: {e}"),
                        );
                    }
                    // One metrics sample per sweep feeds the
                    // `metrics.history` window, and a health probe per
                    // sweep logs ready/not-ready transitions even while
                    // nobody is watching.
                    service.sample_timeseries();
                    service.probe_health();
                    // Storage-fault sweep: free-space watermark in and
                    // out of degraded mode, poison/spill-error logging.
                    service.probe_storage();
                }
            })
            .expect("spawn housekeeper thread");
        Housekeeper {
            stop,
            thread: Some(thread),
        }
    }

    fn stop(mut self) {
        let (flag, wake) = &*self.stop;
        *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
        wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Live connection streams of the threaded front end, so a shutdown can
/// half-close every read side immediately (the "self-pipe" equivalent
/// for blocking reads: a blocked `read` returns 0 while any response
/// still in flight writes out normally).
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn new() -> ConnRegistry {
        ConnRegistry {
            streams: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.streams
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(id, clone);
        }
        id
    }

    fn deregister(&self, id: u64) {
        self.streams
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }

    fn shutdown_all(&self) {
        let streams = self.streams.lock().unwrap_or_else(PoisonError::into_inner);
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// Thread-per-connection accept loop: blocking `accept`, one thread per
/// client. Shutdown wakes the accept with a loopback connect and
/// half-closes every live connection.
fn run_threads(listener: TcpListener, service: &CleaningService) -> std::io::Result<()> {
    listener.set_nonblocking(false)?;
    let mut local = listener.local_addr()?;
    // A wildcard bind (0.0.0.0 / ::) is not connectable on every
    // platform; the wake connect goes to loopback on the bound port.
    if local.ip().is_unspecified() {
        let loopback: std::net::IpAddr = match local {
            SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
            SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
        };
        local.set_ip(loopback);
    }
    let registry = Arc::new(ConnRegistry::new());
    let live = Arc::new(AtomicBool::new(true));
    let hook_registry = Arc::clone(&registry);
    let hook = service.add_shutdown_hook(move || {
        hook_registry.shutdown_all();
        // A blocked accept has no fd to poke portably; a throwaway
        // loopback connect returns it immediately.
        let _ = TcpStream::connect(local);
    });
    let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
    let result = loop {
        if service.shutdown_requested() {
            break Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if service.shutdown_requested() {
                    break Ok(()); // the hook's wake connect, most likely
                }
                // Connection-level admission: a draining server or one
                // at its connection quota refuses at accept time with
                // one typed error line — cheaper than a thread + buffers
                // for a connection that would only be told "no" later.
                if let Err(message) = service.admit_connection() {
                    use std::io::Write;
                    let mut stream = stream;
                    let _ = stream.write_all(
                        format!("{{\"ok\":false,\"error\":{:?}}}\n", message).as_bytes(),
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                let id = registry.register(&stream);
                let service = service.clone();
                let live = Arc::clone(&live);
                let registry = Arc::clone(&registry);
                connections.retain(|handle| !handle.is_finished());
                connections.push(thread::spawn(move || {
                    serve_connection(stream, &service, &live);
                    registry.deregister(id);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => break Err(e),
        }
    };
    // Stop serving new requests on existing connections, then let their
    // threads wind down (reads are already unblocked by the hook; cover
    // the non-`shutdown`-op exit path too).
    live.store(false, Ordering::Release);
    registry.shutdown_all();
    for handle in connections {
        let _ = handle.join();
    }
    service.remove_shutdown_hook(hook);
    result
}

/// Growable read buffer with in-place line splitting: lines are handed
/// out as borrowed slices and consumed by offset — no per-line `Vec`
/// drain/collect — and the newline scan never revisits bytes. Shared by
/// the threaded connection loop and the epoll reactor.
pub(crate) struct LineBuffer {
    buf: Vec<u8>,
    /// Bytes before `start` are consumed.
    start: usize,
    /// No b'\n' exists in `start..scanned` (resume point for the scan).
    scanned: usize,
}

impl LineBuffer {
    pub(crate) fn new() -> LineBuffer {
        LineBuffer {
            buf: Vec::new(),
            start: 0,
            scanned: 0,
        }
    }

    /// Append freshly-read bytes (both connection loops read into a
    /// long-lived scratch chunk and append — no per-read zeroing).
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete line (without its `\n`), consuming it.
    pub(crate) fn next_line(&mut self) -> Option<&[u8]> {
        let from = self.scanned.max(self.start);
        match self.buf[from..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let end = from + rel;
                let line = &self.buf[self.start..end];
                self.start = end + 1;
                self.scanned = self.start;
                Some(line)
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// Bytes of the current partial line (no newline yet) — what the
    /// 8 MiB bound applies to.
    pub(crate) fn partial_len(&self) -> usize {
        self.buf.len() - self.start
    }

    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        self.buf.copy_within(self.start.., 0);
        self.buf.truncate(self.buf.len() - self.start);
        self.scanned -= self.start;
        self.start = 0;
    }
}

fn serve_connection(mut stream: TcpStream, service: &CleaningService, live: &AtomicBool) {
    use std::io::Write;
    let metrics = service.metrics_raw();
    metrics.connection_opened();
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        metrics.connection_closed();
        return;
    };
    let mut buf = LineBuffer::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut out = String::new();
    let mut scratch = RequestScratch::default();
    // Blocking reads, no timeout: shutdown half-closes the read side
    // through the registry, so a parked read returns 0 immediately.
    loop {
        if !live.load(Ordering::Acquire) || service.shutdown_requested() {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // client closed (or shutdown half-close)
            Ok(n) => {
                buf.extend(&chunk[..n]);
                metrics.add_bytes_in(n as u64);
                // Every line in this chunk shares one arrival stamp —
                // queue wait and deadlines are measured from the read,
                // not from when the dispatch loop got around to the line.
                let received = Instant::now();
                while let Some(line_bytes) = buf.next_line() {
                    out.clear();
                    if !respond_line(service, line_bytes, &mut out, &mut scratch, received) {
                        continue; // blank line
                    }
                    // One write per response: first responses of a
                    // pipelined burst go out while later requests are
                    // still being served.
                    if writer.write_all(out.as_bytes()).is_err() {
                        metrics.connection_closed();
                        return;
                    }
                    metrics.add_bytes_out(out.len() as u64);
                }
                // Complete lines drained above; only an unbounded
                // *partial* line is hostile.
                if buf.partial_len() > MAX_LINE_BYTES {
                    let _ = writer.write_all(OVERSIZE_REPLY.as_bytes());
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    metrics.connection_closed();
}

/// A running server on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    service: CleaningService,
    thread: Option<thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served service (shared counters, sessions, cache).
    pub fn service(&self) -> &CleaningService {
        &self.service
    }

    /// Request shutdown and join the accept thread. Completes in
    /// milliseconds: the shutdown hooks wake both front ends out of
    /// band (no poll timeouts to ride out).
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.service.handle(&crate::protocol::Request::Shutdown);
        match self.thread.take() {
            Some(handle) => handle.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.service.handle(&crate::protocol::Request::Shutdown);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_buffer_splits_in_place() {
        let mut buf = LineBuffer::new();
        buf.extend(b"one\ntwo\nthr");
        assert_eq!(buf.next_line(), Some(&b"one"[..]));
        assert_eq!(buf.next_line(), Some(&b"two"[..]));
        assert_eq!(buf.next_line(), None);
        assert_eq!(buf.partial_len(), 3);
        buf.extend(b"ee\n");
        assert_eq!(buf.next_line(), Some(&b"three"[..]));
        assert_eq!(buf.next_line(), None);
        assert_eq!(buf.partial_len(), 0);
    }

    #[test]
    fn line_buffer_byte_at_a_time() {
        // Slow-loris shape: bytes arrive one at a time; lines surface
        // exactly at their newline, regardless of chunking.
        let mut buf = LineBuffer::new();
        let mut lines: Vec<Vec<u8>> = Vec::new();
        for &b in b"hello\nworld\n" {
            buf.extend(&[b]);
            while let Some(line) = buf.next_line() {
                lines.push(line.to_vec());
            }
        }
        assert_eq!(lines, vec![b"hello".to_vec(), b"world".to_vec()]);
    }

    #[test]
    fn frontend_parse_and_auto() {
        assert_eq!(Frontend::parse("threads"), Some(Frontend::Threads));
        assert_eq!(Frontend::parse("epoll"), Some(Frontend::Epoll));
        assert_eq!(Frontend::parse("auto"), Some(Frontend::auto()));
        assert_eq!(Frontend::parse("uring"), None);
        if cfg!(target_os = "linux") {
            assert_eq!(Frontend::auto(), Frontend::Epoll);
        }
    }
}
