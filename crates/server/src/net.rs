//! TCP front end: line-delimited JSON over `std::net`.
//!
//! One OS thread per connection (blocking reads); CPU-heavy batch work
//! is already fanned across the service's worker pool, so connection
//! threads mostly park in `read_line`. The accept loop polls with a
//! short sleep so a `shutdown` protocol request (or
//! [`ServerHandle::shutdown`]) can stop the server without an
//! out-of-band signal, and runs the idle-session sweeper between polls.

use crate::service::CleaningService;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const ACCEPT_POLL: Duration = Duration::from_millis(25);
const SWEEP_EVERY: Duration = Duration::from_secs(1);
/// Hard cap on one request line; a batch `clean` of thousands of tuples
/// fits comfortably, a newline-less byte stream does not.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// A bound, not-yet-running server.
pub struct Server {
    service: CleaningService,
    listener: TcpListener,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7117`, or port 0 for ephemeral).
    pub fn bind(addr: impl ToSocketAddrs, service: CleaningService) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { service, listener })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `shutdown` request arrives. Blocks the calling
    /// thread; each accepted connection gets its own thread.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut last_sweep = Instant::now();
        let live = Arc::new(AtomicBool::new(true));
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.service.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = self.service.clone();
                    let live = Arc::clone(&live);
                    connections.push(thread::spawn(move || {
                        serve_connection(stream, service, &live)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
            if last_sweep.elapsed() >= SWEEP_EVERY {
                self.service.sweep_idle_sessions();
                // Periodic durability housekeeping: install a snapshot
                // (and truncate the journal) when the policy says so.
                if let Err(e) = self.service.maybe_snapshot() {
                    eprintln!("cerfix-server: snapshot failed: {e}");
                }
                last_sweep = Instant::now();
                connections.retain(|handle| !handle.is_finished());
            }
        }
        // Stop serving new requests on existing connections, then let
        // their threads wind down.
        live.store(false, Ordering::Release);
        for handle in connections {
            let _ = handle.join();
        }
        // A graceful shutdown leaves a fresh snapshot so the next boot
        // replays an empty journal (best effort).
        let _ = self.service.snapshot_now();
        Ok(())
    }

    /// Bind-and-run on a background thread; returns a handle with the
    /// bound address. The standard shape for tests and embedders.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        service: CleaningService,
    ) -> std::io::Result<ServerHandle> {
        let server = Server::bind(addr, service.clone())?;
        let addr = server.local_addr()?;
        let thread = thread::Builder::new()
            .name("cerfix-server-accept".into())
            .spawn(move || server.run())
            .expect("spawn accept thread");
        Ok(ServerHandle {
            addr,
            service,
            thread: Some(thread),
        })
    }
}

fn serve_connection(mut stream: TcpStream, service: CleaningService, live: &AtomicBool) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    // Bounded read timeout so connection threads notice server shutdown
    // instead of blocking forever. Lines are accumulated manually —
    // `BufReader::read_line` discards partial bytes on a timeout error,
    // which would corrupt the stream.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    while live.load(Ordering::Acquire) {
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                if pending.len() > MAX_LINE_BYTES {
                    // A client streaming bytes with no newline must not
                    // grow the buffer without bound; tell it and hang up.
                    let _ = writer.write_all(
                        b"{\"ok\":false,\"error\":\"request line exceeds 8 MiB; closing\"}\n",
                    );
                    return;
                }
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
                    let Ok(line) = std::str::from_utf8(&line_bytes) else {
                        let _ = writer.write_all(
                            b"{\"ok\":false,\"error\":\"request line is not valid UTF-8\"}\n",
                        );
                        continue;
                    };
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let response = service.handle_line(trimmed);
                    if writer
                        .write_all(response.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

/// A running server on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    service: CleaningService,
    thread: Option<thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served service (shared counters, sessions, cache).
    pub fn service(&self) -> &CleaningService {
        &self.service
    }

    /// Request shutdown and join the accept thread.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.service.handle(&crate::protocol::Request::Shutdown);
        match self.thread.take() {
            Some(handle) => handle.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.service.handle(&crate::protocol::Request::Shutdown);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}
