//! Protocol clients: TCP and in-process.
//!
//! [`Client`] is generic over a [`Transport`] — either a real
//! [`TcpTransport`] socket or the [`LocalTransport`] that calls straight
//! into a [`CleaningService`] *through the same wire encode/decode
//! path*, so in-process tests exercise the full protocol without
//! sockets. Typed views ([`SessionView`], [`CommitView`], …) pick the
//! documented response fields apart once, instead of every caller
//! spelunking through JSON.

use crate::protocol::Request;
use crate::service::CleaningService;
use crate::wire::{Json, WireError};
use cerfix_relation::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Redirect-follow cap per request: a `not_primary` chain longer than
/// this means the cluster cannot agree who leads — give the caller the
/// error instead of ping-ponging.
const MAX_REDIRECTS: u32 = 4;

/// Reconnect/retry behavior for [`TcpTransport`].
///
/// A dropped connection used to be a hard error; with a policy the
/// transport redials the original address with capped, jittered
/// exponential backoff and (for [`Client::request`]) retries the
/// request. Retrying re-sends the line on a fresh connection, so a
/// non-idempotent request that was *executed* before the connection
/// died can run twice — callers for whom that matters should use
/// [`RetryPolicy::none`]. Pipelined sends ([`Client::pipeline`]) never
/// retry; they only benefit from the automatic redial on next use.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (`0` = fail fast).
    pub retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Per-request socket timeout (both read and write). A request
    /// exceeding it fails with a timeout error and the connection is
    /// redialed before any retry (a half-read response line cannot be
    /// resynchronized). `None` blocks indefinitely.
    pub request_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 2,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
            request_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// Fail-fast: no retries, no timeout (the pre-v5 client behavior).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry `attempt` (1-based): exponential from
    /// `base_delay`, capped at `max_delay`, with ±25% jitter so a herd
    /// of reconnecting clients does not stampede in lockstep.
    pub(crate) fn backoff(&self, attempt: u32, seed: &mut u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self
            .base_delay
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.max_delay);
        jittered(raw, seed)
    }
}

/// `delay` ±25%, driven by a caller-held xorshift state (no external
/// RNG dependency; replication shares this).
pub(crate) fn jittered(delay: Duration, seed: &mut u64) -> Duration {
    let nanos = delay.as_nanos() as u64;
    if nanos == 0 {
        return delay;
    }
    // 75%..125% of the nominal delay.
    let spread = nanos / 2;
    let offset = next_rand(seed) % (spread + 1);
    Duration::from_nanos(nanos - spread / 2 + offset)
}

/// Seed jitter from the wall clock's sub-second noise (good enough for
/// backoff de-correlation; never zero).
pub(crate) fn jitter_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5DEECE66D);
    (nanos << 1) | 1
}

/// Token-bucket retry budget: the governor that keeps client retries
/// from amplifying an overload.
///
/// Every `overloaded` / `draining` retry and every `not_primary`
/// redirect spends one token; tokens refill at `refill_per_sec` up to
/// `capacity`. A healthy client with occasional hiccups never notices
/// the budget; a client facing a persistently overloaded server runs
/// dry and starts surfacing the typed errors to its caller instead of
/// hammering the server — turning N retrying clients from a thundering
/// herd into a bounded, self-limiting trickle.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    tokens: f64,
    capacity: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl Default for RetryBudget {
    /// A small burst allowance (4 tokens) refilling at 1 token/sec —
    /// enough to follow a failover redirect chain, too slow to sustain
    /// a retry storm.
    fn default() -> RetryBudget {
        RetryBudget::new(4, 1.0)
    }
}

impl RetryBudget {
    /// A budget holding at most `capacity` tokens (starts full),
    /// refilling continuously at `refill_per_sec`.
    pub fn new(capacity: u32, refill_per_sec: f64) -> RetryBudget {
        RetryBudget {
            tokens: capacity as f64,
            capacity: capacity as f64,
            refill_per_sec: refill_per_sec.max(0.0),
            last: Instant::now(),
        }
    }

    /// Spend one token if available. `false` means the budget is
    /// exhausted — do not retry.
    pub fn try_spend(&mut self) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The new-primary address inside a `not_primary` error, when the
/// follower knows one ("… primary is 127.0.0.1:7117"). Addresses are
/// host:port; a follower that lost its primary says "unknown", which
/// is not followable.
fn redirect_target(message: &str) -> Option<&str> {
    if !message.starts_with("not_primary") {
        return None;
    }
    let addr = message.rsplit("primary is ").next()?.trim();
    if addr.contains(':') && !addr.contains(' ') {
        Some(addr)
    } else {
        None
    }
}

/// xorshift64*: tiny, stateless-dependency PRNG for jitter only.
pub(crate) fn next_rand(seed: &mut u64) -> u64 {
    let mut x = *seed;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *seed = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// Malformed response.
    Wire(WireError),
    /// The server answered `{"ok":false,...}`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// One request line in, one response line out — plus split send/receive
/// for pipelining (the server guarantees responses in request order per
/// connection).
pub trait Transport {
    /// Send `line` (no trailing newline) and return the response line.
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError>;

    /// Queue `line` without waiting for its response.
    fn send(&mut self, line: &str) -> Result<(), ClientError>;

    /// Receive the next response line (for a previously sent request).
    fn recv(&mut self) -> Result<String, ClientError>;

    /// Re-point the transport at a different server (a `not_primary`
    /// redirect). `false` means this transport cannot move (the
    /// in-process transport, for one) and the redirect error should
    /// surface to the caller.
    fn repoint(&mut self, addr: &str) -> bool {
        let _ = addr;
        false
    }

    /// Spend one token from the transport's retry budget. `false`
    /// means the budget is dry — surface the error instead of
    /// retrying. Transports without a budget never authorize a retry,
    /// so budget-governed redirect/retry loops are opt-in by transport.
    fn spend_retry(&mut self) -> bool {
        false
    }
}

/// Blocking TCP transport with redial: any I/O failure marks the
/// connection broken, and the next send transparently reconnects to
/// the original address. Round trips additionally retry per the
/// [`RetryPolicy`]; split send/receive (pipelining) never retry.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Redial target (what `connect` was given).
    addr: String,
    policy: RetryPolicy,
    /// Set on any I/O error; cleared by a successful redial. A broken
    /// connection may hold a half-written request or half-read
    /// response, so it is never reused.
    broken: bool,
    seed: u64,
    /// Governs `not_primary` redirects and `overloaded`/`draining`
    /// retries so they cannot amplify an overload.
    budget: RetryBudget,
}

impl TcpTransport {
    fn dial(
        addr: &str,
        policy: &RetryPolicy,
    ) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(policy.request_timeout)?;
        stream.set_write_timeout(policy.request_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok((reader, stream))
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if !self.broken {
            return Ok(());
        }
        let (reader, writer) = TcpTransport::dial(&self.addr, &self.policy)?;
        self.reader = reader;
        self.writer = writer;
        self.broken = false;
        Ok(())
    }

    fn send_raw(&mut self, line: &str) -> Result<(), ClientError> {
        self.ensure_connected()?;
        let result = (|| {
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.writer.flush()
        })();
        result.map_err(|e| {
            self.broken = true;
            ClientError::Io(e)
        })
    }

    fn recv_raw(&mut self) -> Result<String, ClientError> {
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => {
                self.broken = true;
                Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            Ok(_) => Ok(response),
            Err(e) => {
                self.broken = true;
                Err(ClientError::Io(e))
            }
        }
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.send_raw(line).and_then(|()| self.recv_raw()) {
                Ok(response) => return Ok(response),
                // Only transport failures retry — a server-side error
                // response is an answer, not a delivery failure.
                Err(ClientError::Io(e)) if attempt < self.policy.retries => {
                    attempt += 1;
                    let _ = e;
                    std::thread::sleep(self.policy.backoff(attempt, &mut self.seed));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.send_raw(line)
    }

    fn recv(&mut self) -> Result<String, ClientError> {
        self.recv_raw()
    }

    fn repoint(&mut self, addr: &str) -> bool {
        // Marking the connection broken makes the next send redial the
        // new address; the old socket drops with the replaced reader /
        // writer at that point.
        self.addr = addr.to_string();
        self.broken = true;
        true
    }

    fn spend_retry(&mut self) -> bool {
        self.budget.try_spend()
    }
}

/// In-process transport: dispatches into the service directly, still
/// going through wire parsing/rendering on both sides. Pipelined sends
/// execute immediately; responses queue until received.
pub struct LocalTransport {
    service: CleaningService,
    pending: std::collections::VecDeque<String>,
}

impl Transport for LocalTransport {
    fn round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        Ok(self.service.handle_line(line))
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        let response = self.service.handle_line(line);
        self.pending.push_back(response);
        Ok(())
    }

    fn recv(&mut self) -> Result<String, ClientError> {
        self.pending.pop_front().ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "recv without a pending pipelined request",
            ))
        })
    }
}

/// A protocol client over any transport.
pub struct Client<T: Transport = TcpTransport> {
    transport: T,
}

/// A [`Client`] wired directly to an in-process service.
pub type LocalClient = Client<LocalTransport>;

impl Client<TcpTransport> {
    /// Connect to a running server with the default [`RetryPolicy`]
    /// (a couple of redial-and-retry attempts with jittered backoff).
    pub fn connect(
        addr: impl ToSocketAddrs + ToString,
    ) -> Result<Client<TcpTransport>, ClientError> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// Connect with an explicit reconnect/timeout policy (the
    /// replication tail runs with short per-request timeouts; tests
    /// that assert on hard disconnects use [`RetryPolicy::none`]).
    pub fn connect_with(
        addr: impl ToSocketAddrs + ToString,
        policy: RetryPolicy,
    ) -> Result<Client<TcpTransport>, ClientError> {
        let addr = addr.to_string();
        let (reader, writer) = TcpTransport::dial(&addr, &policy)?;
        Ok(Client {
            transport: TcpTransport {
                reader,
                writer,
                addr,
                policy,
                broken: false,
                seed: jitter_seed(),
                budget: RetryBudget::default(),
            },
        })
    }

    /// Replace the redirect/retry [`RetryBudget`] (default: 4 tokens,
    /// 1/sec refill). A zero-capacity budget disables redirect
    /// following entirely.
    pub fn with_retry_budget(mut self, budget: RetryBudget) -> Client<TcpTransport> {
        self.transport.budget = budget;
        self
    }

    /// The address this client is currently pointed at (changes when a
    /// `not_primary` redirect re-points it).
    pub fn current_addr(&self) -> &str {
        &self.transport.addr
    }
}

impl Client<LocalTransport> {
    /// A client calling straight into `service` (tests, embedding).
    pub fn in_process(service: &CleaningService) -> LocalClient {
        Client {
            transport: LocalTransport {
                service: service.clone(),
                pending: std::collections::VecDeque::new(),
            },
        }
    }
}

fn get_u64(json: &Json, key: &str) -> Result<u64, ClientError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Wire(WireError(format!("response missing `{key}`"))))
}

fn get_strings(json: &Json, key: &str) -> Vec<String> {
    json.get(key)
        .and_then(Json::as_arr)
        .map(|items| {
            items
                .iter()
                .filter_map(|i| i.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

fn get_tuple(json: &Json, key: &str) -> Result<Vec<Value>, ClientError> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Wire(WireError(format!("response missing `{key}`"))))?
        .iter()
        .map(|item| item.to_value().map_err(ClientError::Wire))
        .collect()
}

/// Snapshot of a live session, as returned by create/get/validate/fix.
#[derive(Debug, Clone)]
pub struct SessionView {
    /// Server-assigned id.
    pub session: u64,
    /// `awaiting_user`, `complete` or `stuck`.
    pub status: String,
    /// Suggested attributes to validate next (empty unless awaiting).
    pub suggestion: Vec<String>,
    /// Current cell values.
    pub tuple: Vec<Value>,
    /// Interaction rounds so far.
    pub rounds: u64,
    /// Validated attribute names.
    pub validated: Vec<String>,
    /// Rule fixes from the latest validate/fix call (attr, old, new).
    pub fixes: Vec<(String, Value, Value)>,
}

impl SessionView {
    fn from_json(json: &Json) -> Result<SessionView, ClientError> {
        Ok(SessionView {
            session: get_u64(json, "session")?,
            status: json
                .get("status")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            suggestion: get_strings(json, "suggestion"),
            tuple: get_tuple(json, "tuple")?,
            rounds: get_u64(json, "rounds")?,
            validated: get_strings(json, "validated"),
            fixes: json
                .get("fixes")
                .and_then(Json::as_arr)
                .map(|fixes| {
                    fixes
                        .iter()
                        .filter_map(|fix| {
                            Some((
                                fix.get("attr")?.as_str()?.to_string(),
                                fix.get("old")?.to_value().ok()?,
                                fix.get("new")?.to_value().ok()?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// True iff the session reached a certain fix.
    pub fn is_complete(&self) -> bool {
        self.status == "complete"
    }
}

/// Final state returned by `session.commit`.
#[derive(Debug, Clone)]
pub struct CommitView {
    /// True iff every attribute was validated (a certain fix).
    pub complete: bool,
    /// The final tuple.
    pub tuple: Vec<Value>,
    /// Interaction rounds used.
    pub rounds: u64,
    /// Attributes validated by the user.
    pub user_validated: u64,
    /// Attributes validated by rules.
    pub auto_validated: u64,
}

/// One page from `audit.read`.
#[derive(Debug, Clone)]
pub struct AuditPage {
    /// Global index the page started at.
    pub start: u64,
    /// Index to pass as `start` for the next page.
    pub next: u64,
    /// Records in the whole provenance stream.
    pub total: u64,
    /// Of those, records no longer resident in the server's memory
    /// window (served from the disk spill).
    pub spilled: u64,
    /// The records on this page.
    pub records: Vec<AuditRecordView>,
}

/// One cell-level provenance record, as rendered on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecordView {
    /// Global append index.
    pub index: u64,
    /// Tuple (session or batch-reserved) id the event applies to.
    pub tuple: u64,
    /// Attribute name (or stringified id for out-of-schema ids).
    pub attr: String,
    /// Interaction round.
    pub round: u64,
    /// `user_validated`, `rule_fixed` or `rule_confirmed`.
    pub kind: String,
    /// Rule responsible, when known.
    pub rule: Option<u64>,
    /// Master row the fix came from (`rule_fixed` only).
    pub master_row: Option<u64>,
    /// Cell value before the event (absent for `rule_confirmed`).
    pub old: Option<Value>,
    /// Cell value after the event (absent for `rule_confirmed`).
    pub new: Option<Value>,
}

impl AuditRecordView {
    fn from_json(json: &Json) -> Option<AuditRecordView> {
        Some(AuditRecordView {
            index: json.get("index")?.as_u64()?,
            tuple: json.get("tuple")?.as_u64()?,
            attr: match json.get("attr")? {
                Json::Str(s) => s.clone(),
                other => other.as_f64().map(|n| n.to_string())?,
            },
            round: json.get("round")?.as_u64()?,
            kind: json.get("kind")?.as_str()?.to_string(),
            rule: json.get("rule").and_then(Json::as_u64),
            master_row: json.get("master_row").and_then(Json::as_u64),
            old: json.get("old").and_then(|v| v.to_value().ok()),
            new: json.get("new").and_then(|v| v.to_value().ok()),
        })
    }
}

/// One outcome from a batch `clean`.
#[derive(Debug, Clone)]
pub struct CleanOutcomeView {
    /// Position in the request batch.
    pub index: u64,
    /// True iff the tuple reached a certain fix.
    pub complete: bool,
    /// Cells changed by rules.
    pub cells_fixed: u64,
    /// The cleaned tuple.
    pub tuple: Vec<Value>,
}

impl<T: Transport> Client<T> {
    /// Send a typed request, returning the raw (ok) response object.
    ///
    /// Self-healing: a `not_primary` redirect re-points the transport
    /// at the advertised primary and re-sends; a retryable
    /// `overloaded` / `draining` rejection backs off and re-sends.
    /// Both paths spend the transport's [`RetryBudget`] first, so a
    /// fleet of clients facing a persistent overload self-limits
    /// instead of amplifying it. Transports without a budget (the
    /// in-process one) surface the errors unchanged.
    pub fn request(&mut self, request: &Request) -> Result<Json, ClientError> {
        let line = request.to_json().render();
        let mut attempt = 0u32;
        loop {
            let response_line = self.transport.round_trip(&line)?;
            let error = match Self::check_ok(&response_line) {
                Err(ClientError::Server(message)) if attempt < MAX_REDIRECTS => message,
                other => return other,
            };
            if let Some(addr) = redirect_target(&error) {
                if !(self.transport.spend_retry() && self.transport.repoint(addr)) {
                    return Err(ClientError::Server(error));
                }
            } else if error.starts_with("overloaded:") || error.starts_with("draining:") {
                if !self.transport.spend_retry() {
                    return Err(ClientError::Server(error));
                }
                // Linear backoff is enough here: the budget, not the
                // delay curve, is what bounds total retry pressure.
                std::thread::sleep(Duration::from_millis(20 * (attempt as u64 + 1)));
            } else {
                return Err(ClientError::Server(error));
            }
            attempt += 1;
        }
    }

    fn check_ok(response_line: &str) -> Result<Json, ClientError> {
        let response = Json::parse(response_line.trim())?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            _ => Err(ClientError::Server(
                response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("malformed server response")
                    .to_string(),
            )),
        }
    }

    /// Pipeline a batch: write every request before reading any
    /// response. Responses come back in request order (the server's
    /// per-connection ordering guarantee); each is checked for `ok` like
    /// [`request`](Self::request).
    ///
    /// Every response is read off the transport before any error is
    /// returned — a failing request mid-batch must not leave later
    /// responses buffered (they would desynchronize the next call).
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Json>, ClientError> {
        let mut first_error = None;
        let mut sent = 0usize;
        for request in requests {
            let line = request.to_json().render();
            if let Err(e) = self.transport.send(&line) {
                // Responses to already-sent requests still get drained
                // below — leaving them buffered would pair them with
                // the wrong future requests.
                first_error = Some(e);
                break;
            }
            sent += 1;
        }
        let mut responses = Vec::with_capacity(sent);
        for _ in 0..sent {
            match self.transport.recv().and_then(|line| Self::check_ok(&line)) {
                Ok(response) => responses.push(response),
                Err(e) if first_error.is_none() => first_error = Some(e),
                Err(_) => {}
            }
        }
        match first_error {
            None => Ok(responses),
            Some(e) => Err(e),
        }
    }

    /// `hello` — service identification (raw JSON).
    pub fn hello(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Hello)
    }

    /// Open a session for `tuple`.
    pub fn create_session(&mut self, tuple: Vec<Value>) -> Result<SessionView, ClientError> {
        let response = self.request(&Request::SessionCreate { tuple })?;
        SessionView::from_json(&response)
    }

    /// Re-read (attach to) an existing session.
    pub fn get_session(&mut self, session: u64) -> Result<SessionView, ClientError> {
        let response = self.request(&Request::SessionGet { session })?;
        SessionView::from_json(&response)
    }

    /// Validate `(attribute, value)` pairs and run the correcting
    /// process.
    pub fn validate(
        &mut self,
        session: u64,
        validations: Vec<(String, Value)>,
    ) -> Result<SessionView, ClientError> {
        let response = self.request(&Request::SessionValidate {
            session,
            validations,
        })?;
        SessionView::from_json(&response)
    }

    /// Run the correcting process without new assertions.
    pub fn fix(&mut self, session: u64) -> Result<SessionView, ClientError> {
        let response = self.request(&Request::SessionFix { session })?;
        SessionView::from_json(&response)
    }

    /// Close the session, returning its final state.
    pub fn commit(&mut self, session: u64) -> Result<CommitView, ClientError> {
        let response = self.request(&Request::SessionCommit { session })?;
        Ok(CommitView {
            complete: response
                .get("complete")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            tuple: get_tuple(&response, "tuple")?,
            rounds: get_u64(&response, "rounds")?,
            user_validated: get_u64(&response, "user_validated")?,
            auto_validated: get_u64(&response, "auto_validated")?,
        })
    }

    /// Discard a session.
    pub fn abort(&mut self, session: u64) -> Result<(), ClientError> {
        self.request(&Request::SessionAbort { session }).map(|_| ())
    }

    /// Batch-clean `tuples`, trusting the named columns.
    pub fn clean(
        &mut self,
        tuples: Vec<Vec<Value>>,
        trust: Vec<String>,
    ) -> Result<Vec<CleanOutcomeView>, ClientError> {
        let response = self.request(&Request::Clean { tuples, trust })?;
        response
            .get("outcomes")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Wire(WireError("response missing `outcomes`".into())))?
            .iter()
            .map(|outcome| {
                Ok(CleanOutcomeView {
                    index: get_u64(outcome, "index")?,
                    complete: outcome
                        .get("complete")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    cells_fixed: get_u64(outcome, "cells_fixed")?,
                    tuple: get_tuple(outcome, "tuple")?,
                })
            })
            .collect()
    }

    /// Top-k certain regions; `(cached, attribute-name lists)`.
    pub fn regions(
        &mut self,
        top_k: Option<usize>,
    ) -> Result<(bool, Vec<Vec<String>>), ClientError> {
        let response = self.request(&Request::Regions { top_k })?;
        let cached = response
            .get("cached")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let regions = response
            .get("regions")
            .and_then(Json::as_arr)
            .map(|items| items.iter().map(|r| get_strings(r, "attrs")).collect())
            .unwrap_or_default();
        Ok((cached, regions))
    }

    /// Consistency verdict; `(cached, consistent)`.
    pub fn check(&mut self, mode: Option<&str>) -> Result<(bool, bool), ClientError> {
        let response = self.request(&Request::Check {
            mode: mode.map(str::to_string),
        })?;
        Ok((
            response
                .get("cached")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            response
                .get("consistent")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        ))
    }

    /// Ranged read of audit provenance records. Returns the typed page;
    /// advance `start` to the page's `next` to stream the full history.
    pub fn audit_read(&mut self, start: u64, count: Option<u64>) -> Result<AuditPage, ClientError> {
        let response = self.request(&Request::AuditRead { start, count })?;
        Ok(AuditPage {
            start: get_u64(&response, "start")?,
            next: get_u64(&response, "next")?,
            total: get_u64(&response, "total")?,
            spilled: get_u64(&response, "spilled")?,
            records: response
                .get("records")
                .and_then(Json::as_arr)
                .map(|records| {
                    records
                        .iter()
                        .filter_map(AuditRecordView::from_json)
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// Stream the *entire* audit history (pages of `page_size`).
    pub fn audit_read_all(&mut self, page_size: u64) -> Result<Vec<AuditRecordView>, ClientError> {
        let mut out = Vec::new();
        let mut start = 0;
        loop {
            let page = self.audit_read(start, Some(page_size))?;
            let done = page.next >= page.total || page.records.is_empty();
            start = page.next;
            out.extend(page.records);
            if done {
                return Ok(out);
            }
        }
    }

    /// Hot-swap the server's rule set from DSL text; returns the new
    /// rule count and fingerprint.
    pub fn reload_rules(&mut self, dsl: &str) -> Result<(u64, String), ClientError> {
        let response = self.request(&Request::RulesReload {
            rules: dsl.to_string(),
        })?;
        Ok((
            get_u64(&response, "rules")?,
            response
                .get("ruleset")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        ))
    }

    /// Append rows to the master repository; `(appended, master_rows,
    /// regions_recertified)`. Cached regions are patched by delta
    /// re-certification on the server.
    pub fn master_append(
        &mut self,
        tuples: Vec<Vec<Value>>,
    ) -> Result<(u64, u64, u64), ClientError> {
        let response = self.request(&Request::MasterAppend { tuples })?;
        Ok((
            get_u64(&response, "appended")?,
            get_u64(&response, "master_rows")?,
            get_u64(&response, "regions_recertified")?,
        ))
    }

    /// Service counters (raw JSON).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Metrics)
    }

    /// Ask the server to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        let policy = RetryPolicy {
            retries: 8,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
            request_timeout: None,
        };
        let mut seed = jitter_seed();
        for attempt in 1..=10u32 {
            let nominal = Duration::from_millis(20)
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(Duration::from_millis(500));
            let delay = policy.backoff(attempt, &mut seed);
            // ±25% jitter around the capped exponential.
            assert!(delay >= nominal.mul_f64(0.74), "{attempt}: {delay:?}");
            assert!(delay <= nominal.mul_f64(1.26), "{attempt}: {delay:?}");
        }
    }

    #[test]
    fn retry_budget_spends_and_refills() {
        // No refill: exactly `capacity` spends succeed.
        let mut dry = RetryBudget::new(3, 0.0);
        assert!(dry.try_spend());
        assert!(dry.try_spend());
        assert!(dry.try_spend());
        assert!(!dry.try_spend(), "capacity exhausted");
        assert!(!dry.try_spend(), "stays exhausted without refill");
        // Zero capacity never authorizes a retry.
        assert!(!RetryBudget::new(0, 1000.0).try_spend());
        // Refill restores tokens over time, capped at capacity.
        let mut refilling = RetryBudget::new(1, 200.0);
        assert!(refilling.try_spend());
        assert!(!refilling.try_spend());
        std::thread::sleep(Duration::from_millis(30));
        assert!(refilling.try_spend(), "refilled after ~6 token-periods");
    }

    #[test]
    fn redirect_target_parses_not_primary_errors() {
        assert_eq!(
            redirect_target(
                "not_primary: this node is a read-only follower; primary is 127.0.0.1:7117"
            ),
            Some("127.0.0.1:7117")
        );
        // A follower that lost its primary is not followable.
        assert_eq!(
            redirect_target("not_primary: this node is a read-only follower; primary is unknown"),
            None
        );
        // Other errors never parse as redirects.
        assert_eq!(redirect_target("overloaded: shedding heavy reads"), None);
        assert_eq!(redirect_target("unknown session 9"), None);
        assert_eq!(redirect_target("not_primary"), None);
    }

    #[test]
    fn jitter_varies_and_seed_is_odd() {
        assert_eq!(jitter_seed() & 1, 1);
        let mut seed = 42u64;
        let a = next_rand(&mut seed);
        let b = next_rand(&mut seed);
        assert_ne!(a, b);
        let base = Duration::from_millis(100);
        let samples: Vec<Duration> = (0..16).map(|_| jittered(base, &mut seed)).collect();
        assert!(samples.iter().any(|s| *s != base));
        assert!(samples
            .iter()
            .all(|s| *s >= base.mul_f64(0.74) && *s <= base.mul_f64(1.26)));
    }
}
